//! Offline vendored stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel` is used by this workspace (the load generator's
//! worker-to-collector stats channel), so this shim maps `bounded` /
//! `unbounded` onto `std::sync::mpsc` channels with crossbeam's
//! cloneable-sender API.

#![deny(unsafe_code)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a channel; cloneable.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, if a value is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Draining iterator over a [`Receiver`].
    #[derive(Debug)]
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Create a channel with unbounded capacity.
    ///
    /// Backed by a generously sized sync channel; the workspace only moves
    /// a handful of aggregate stats structs through it.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(1 << 16)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_collects_all() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).ok())
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().ok();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
