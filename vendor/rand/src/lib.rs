//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the `rand` API surface
//! it actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen`] for floats.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the same algorithm
//! family real `rand 0.8` uses for `SmallRng` on 64-bit targets — so the
//! statistical properties the simulations rely on (uniformity, long period)
//! hold, while streams stay fully deterministic for a given seed.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the only primitive is `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build an RNG seeded from a best-effort entropy source.
    ///
    /// Offline shim: derived from the monotonic address-space layout of a
    /// fresh allocation would be non-deterministic; instead a fixed seed is
    /// used so behaviour is reproducible everywhere.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Sample one value using `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Multiply-shift reduction of a uniform `u64` onto `[0, span)` (Lemire).
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as real rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" RNG; in this shim it shares the `SmallRng` core.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0u32..=5);
            assert!(y <= 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
