//! Offline vendored stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on plain data types — nothing is ever actually serialized
//! through serde (the wire protocol in `ecc-net` hand-rolls its frames).
//! With crates.io unreachable in the build container, this crate supplies
//! the two derive macros as no-ops so the annotations stay in place and
//! real serde can be swapped back in without touching call sites.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive. Registers the `serde`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive. Registers the `serde`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
