//! The [`Strategy`] trait and combinators: ranges, tuples, `Just`,
//! `prop_map`, boxing, and weighted unions.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        // Unreachable given the weight invariant; sample the last arm.
        self.arms[self.arms.len() - 1].1.sample(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_seed(9);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::from_seed(5);
        let u = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let hits = (0..1000).filter(|_| u.sample(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true, got {hits}");
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = TestRng::from_seed(2);
        let (a, b) = (any::<u8>(), 5u64..6).sample(&mut rng);
        let _: u8 = a;
        assert_eq!(b, 5);
    }
}
