//! Offline vendored stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the slice of the proptest 1.x API the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config]`, `name in strategy`
//! and `name: Type` bindings), [`strategy::Strategy`] with `prop_map` /
//! `boxed`, range and tuple strategies, `any::<T>()`, weighted
//! [`prop_oneof!`], `proptest::collection::{vec, btree_set}`,
//! `prop::sample::Index`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** Failing inputs are reported as-is. Because every
//!   case's RNG is seeded deterministically from the test's module path and
//!   case index, failures reproduce exactly on re-run.
//! * `prop_assert*` panics (instead of routing a `TestCaseError`), which is
//!   strictly more permissive for call sites inside plain closures.
//! * Case count comes from `ProptestConfig::with_cases`, defaulting to 256,
//!   overridable via the `PROPTEST_CASES` environment variable.

#![deny(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of proptest's `prelude::prop` re-export module.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each case samples the declared strategies and runs
/// the body; the whole test fails on the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.effective_cases() {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                // One closure per case so `prop_assume!` can early-return.
                #[allow(clippy::redundant_closure_call)]
                (|| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                })();
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Choose among strategies, optionally `weight => strategy` weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
