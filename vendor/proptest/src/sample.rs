//! `prop::sample`: index selection into runtime-sized collections.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An arbitrary index, resolved against a concrete length at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Project onto `[0, size)`.
    ///
    /// # Panics
    /// Panics if `size` is zero, matching real proptest.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
