//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain generation strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes (no NaN/inf so
        // comparisons in tests stay total).
        let unit = rng.next_unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32) - 30;
        unit * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! arbitrary_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
