//! Deterministic per-case RNG and run configuration.

/// Configuration for a `proptest!` block (API-compatible subset of
/// proptest's `test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Cases to actually run: the configured count, unless overridden by
    /// the `PROPTEST_CASES` environment variable (as in real proptest).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

/// Deterministic RNG driving strategy sampling: xoshiro256++ seeded from a
/// hash of the test's module path and the case index, so every failure is
/// reproducible without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test identified by `test_path`.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// RNG from a raw 64-bit seed (SplitMix64-expanded).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn per_case_rngs_are_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::for_case("mod::test", 4);
        let c: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
