//! Collection strategies: `vec` and `btree_set` with size ranges.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo) as u64 + 1;
        self.lo + rng.below(span) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so narrow
        // element domains still terminate (real proptest treats the size
        // as a target, not a guarantee).
        let mut attempts = 0usize;
        while out.len() < n && attempts < n.saturating_mul(8) + 16 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}

/// Generate ordered sets whose elements come from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_hits_target_when_domain_allows() {
        let mut rng = TestRng::from_seed(12);
        let s = btree_set(any::<u16>(), 10..11);
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 10);
    }
}
