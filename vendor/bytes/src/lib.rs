//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes 1.x` API used by `ecc-net`'s wire
//! protocol: cheaply cloneable [`Bytes`] (an `Arc<[u8]>` window), a growable
//! [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the frame codec relies on.

#![deny(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Backed by a refcounted owner object (any `AsRef<[u8]>`), so a `Bytes`
/// can wrap a `Vec<u8>` *or* an application-defined buffer handle (see
/// [`Bytes::from_owner`]) without copying the payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<dyn AsRef<[u8]> + Send + Sync>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Wrap an arbitrary owner whose `AsRef<[u8]>` view is the payload —
    /// no copy; the owner is dropped when the last clone goes away.
    /// Mirrors `bytes 1.9`'s `Bytes::from_owner`. The owner's `as_ref`
    /// must be stable (same pointer and length on every call) for the
    /// lifetime of the `Bytes`.
    pub fn from_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let data: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(owner);
        let end = (*data).as_ref().len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// Copy `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, as in the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self {
            data: Arc::new([0u8; 0]),
            start: 0,
            end: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &(*self.data).as_ref()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_owner(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_ref(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for &[u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.as_ref()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte buffer, mirroring `bytes::Buf`.
///
/// The `get_*` accessors panic when not enough bytes remain — exactly like
/// the real crate — so callers must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_into(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_into(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_into(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Consume `len` bytes into a fresh [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Fill `dst` exactly from the front of the buffer.
    #[doc(hidden)]
    fn copy_into(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(b"ok");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.copy_to_bytes(2), Bytes::from_static(b"ok"));
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn slices_share_storage_and_compare() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.slice(0..0).len(), 0);
        assert!(b.slice(..2) == [1u8, 2][..]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics_like_real_bytes() {
        let mut b = Bytes::from_static(&[1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn from_owner_shares_without_copying() {
        struct Owner(Vec<u8>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        let owner = Owner(vec![9, 8, 7]);
        let ptr = owner.0.as_ptr();
        let b = Bytes::from_owner(owner);
        assert_eq!(b, [9, 8, 7]);
        // The view aliases the owner's buffer: no payload copy happened.
        assert!(std::ptr::eq(ptr, b.as_ref().as_ptr()));
        let c = b.clone();
        assert!(std::ptr::eq(ptr, c.as_ref().as_ptr()));
    }

    #[test]
    fn from_vec_does_not_copy_the_buffer() {
        let v = vec![1u8, 2, 3, 4];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert!(std::ptr::eq(ptr, b.as_ref().as_ptr()));
    }
}
