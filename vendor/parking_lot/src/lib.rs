//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, recovering the data from a
//! poisoned mutex instead of propagating a `PoisonError` (parking_lot
//! has no poisoning at all, so this matches its observable semantics).

#![deny(unsafe_code)]

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion primitive; `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock` (poison-free).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
