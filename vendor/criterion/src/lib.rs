//! Offline vendored stand-in for `criterion`.
//!
//! Provides just enough of the criterion 0.5 API for the workspace's
//! `benches/micro.rs` to compile and produce useful ns/iter numbers:
//! groups, parameterized benchmark IDs, `iter`/`iter_batched`, throughput
//! annotations and the `criterion_group!`/`criterion_main!` macros.
//! No statistics engine, no HTML reports — a calibrated timing loop that
//! prints one line per benchmark.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup allocations; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh input for every routine call.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last run.
    ns_per_iter: f64,
}

/// Target wall-clock budget per benchmark; tiny because the shim only needs
/// order-of-magnitude numbers, not criterion-grade confidence intervals.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Time `routine` in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1ms?
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || n >= (1 << 24) {
                let per = dt.as_nanos() as f64 / n as f64;
                let total = (MEASURE_BUDGET.as_nanos() as f64 / per.max(0.5)) as u64;
                let iters = total.clamp(n, 1 << 26);
                let t1 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
                return;
            }
            n *= 4;
        }
    }

    /// Time `routine` over inputs built by `setup` (setup excluded from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = Duration::ZERO;
        let mut iters: u64 = 0;
        while spent < MEASURE_BUDGET && iters < 10_000 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
        }
        self.ns_per_iter = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark that takes an input parameter by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        self.report(&name.to_string(), &bencher);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let ns = bencher.ns_per_iter;
        match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let rate = n as f64 / (ns * 1e-9);
                println!("{}/{id}: {ns:.1} ns/iter ({rate:.0} elem/s)", self.name);
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                let rate = n as f64 / (ns * 1e-9) / (1 << 20) as f64;
                println!("{}/{id}: {ns:.1} ns/iter ({rate:.1} MiB/s)", self.name);
            }
            _ => println!("{}/{id}: {ns:.1} ns/iter", self.name),
        }
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.benchmark_group(label.clone()).bench_function(label, f);
        self
    }

    /// Accept and ignore criterion CLI arguments (e.g. from `cargo bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
