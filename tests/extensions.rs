//! Integration tests for the §VI/§IV-D extensions, driven end-to-end with
//! the real shoreline service.

use elastic_cloud_cache::cloudsim::StorageTier;
use elastic_cloud_cache::prelude::*;

fn base_cfg() -> CacheConfig {
    let mut cfg = CacheConfig::paper_default();
    cfg.node_capacity_bytes = 64 * 1024;
    cfg
}

#[test]
fn overflow_tier_avoids_rederiving_evicted_shorelines() {
    let service = ShorelineService::paper_default(31);
    let mut cfg = base_cfg();
    cfg.window = Some(WindowConfig {
        slices: 2,
        alpha: 0.99,
        threshold: None,
    });
    cfg.overflow_tier = Some(StorageTier::ebs_2010());
    let mut cache = ElasticCache::new(cfg);

    // Derive 30 shorelines, then let them all expire to the tier.
    let keys: Vec<u64> = (0..30u64).map(|i| i * 1111 % (1 << 16)).collect();
    let mut originals = Vec::new();
    for &k in &keys {
        let r = cache.query(k, service.exec_time_for(k), || {
            Record::from_vec(service.execute_key(k).shoreline.to_bytes())
        });
        originals.push(r);
    }
    for _ in 0..3 {
        cache.end_time_step();
    }
    assert_eq!(cache.total_records(), 0, "everything should have expired");
    assert_eq!(cache.metrics().tier_writes, 30);

    // Re-query: served from the tier byte-for-byte, no service execution.
    for (i, &k) in keys.iter().enumerate() {
        let r = cache.query(k, service.exec_time_for(k), || {
            unreachable!("tier must serve evicted key {k}")
        });
        assert_eq!(r, originals[i], "tier corrupted key {k}");
    }
    assert_eq!(cache.metrics().tier_hits, 30);
    // A tier round-trip is milliseconds, not 23 s: the post-eviction pass
    // must be vastly faster than the derivation pass.
    let m = cache.metrics();
    assert!(
        m.service_us > 100 * (m.observed_us - m.service_us),
        "tier path suspiciously slow: {m:?}"
    );
    cache.validate();
}

#[test]
fn replicated_cache_survives_failure_with_shoreline_payloads() {
    let service = ShorelineService::paper_default(77);
    let mut cfg = base_cfg();
    cfg.node_capacity_bytes = 32 * 1024;
    cfg.replicate = true;
    let mut cache = ElasticCache::new(cfg);

    let keys: Vec<u64> = (0..60u64).map(|i| i * 997 % (1 << 16)).collect();
    for &k in &keys {
        cache.query(k, service.exec_time_for(k), || {
            Record::from_vec(service.execute_key(k).shoreline.to_bytes())
        });
    }
    // Refresh so every record has had a chance to replicate post-growth.
    for &k in &keys {
        let rec = Record::from_vec(service.execute_key(k).shoreline.to_bytes());
        cache.insert(k, rec).unwrap();
    }
    assert!(cache.node_count() >= 2);

    let victim = cache.nodes().next().map(|(id, _)| id).unwrap();
    let report = cache.fail_node(victim);
    assert!(
        report.records_recovered > report.records_lost,
        "replication should recover the majority: {report:?}"
    );
    cache.validate();
    // Every key still resolves to a correct shoreline (recovered or
    // re-derived), matching the deterministic service output.
    for &k in &keys {
        let r = cache.query(k, service.exec_time_for(k), || {
            Record::from_vec(service.execute_key(k).shoreline.to_bytes())
        });
        let expect = service.execute_key(k).shoreline.to_bytes();
        assert_eq!(r.as_slice(), &expect[..], "wrong payload for key {k}");
    }
    cache.validate();
}

#[test]
fn warm_pool_and_adaptive_window_compose() {
    let service = ShorelineService::paper_default(13);
    let mut cfg = base_cfg();
    cfg.warm_pool = 1;
    cfg.window = Some(WindowConfig::paper(10));
    cfg.adaptive_window = Some(elastic_cloud_cache::core::AdaptiveWindowConfig {
        min_slices: 4,
        max_slices: 50,
        grow_ratio: 2.0,
        shrink_ratio: 0.5,
        step_frac: 0.5,
        ema_weight: 0.3,
    });
    let mut cache = ElasticCache::new(cfg);
    cache.clock().advance_secs(200.0); // let the standby boot

    // Quiet, surge, quiet — the full disaster arc with both features on.
    let step = |cache: &mut ElasticCache, n: u64, stride: u64| {
        for i in 0..n {
            let k = (i * stride + 7) % (1 << 16);
            cache.query(k, service.exec_time_for(k), || {
                Record::from_vec(service.execute_key(k).shoreline.to_bytes())
            });
        }
        cache.end_time_step();
    };
    for _ in 0..5 {
        step(&mut cache, 5, 331);
    }
    let quiet_m = cache.window().unwrap().slices();
    for _ in 0..5 {
        step(&mut cache, 120, 173);
    }
    let surge_m = cache.window().unwrap().slices();
    assert!(surge_m > quiet_m, "adaptive window: {quiet_m} -> {surge_m}");
    // Growth happened without a single boot on the critical path.
    assert!(cache.node_count() >= 2);
    assert_eq!(
        cache.metrics().alloc_us,
        0,
        "warm pool must absorb allocations"
    );
    for _ in 0..40 {
        cache.end_time_step();
    }
    assert!(cache.window().unwrap().slices() < surge_m);
    cache.validate();
}
