//! The live TCP deployment and the simulated cache implement the same
//! protocol: driven with the same operations, they must agree on cache
//! contents, placement behaviour and growth.

use elastic_cloud_cache::net::coordinator::LiveCoordinator;
use elastic_cloud_cache::prelude::*;

/// Deterministic pseudo-random key sequence.
fn key_seq(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % (1 << 16)
        })
        .collect()
}

#[test]
fn live_and_simulated_caches_agree_on_contents() {
    let capacity = 16 * 1024u64; // 16 records of 1 KiB
    let mut live = LiveCoordinator::start(1 << 16, capacity).unwrap();

    let mut cfg = CacheConfig::small_test();
    cfg.ring_range = 1 << 16;
    cfg.node_capacity_bytes = capacity;
    cfg.btree_order = 64;
    let mut sim = ElasticCache::new(cfg);

    let keys = key_seq(120, 99);
    for &key in &keys {
        let value = vec![(key % 251) as u8; 1024];
        // Only insert once per distinct key (like a miss-driven fill).
        if live.get(key).unwrap().is_none() {
            live.put(key, value.clone()).unwrap();
        }
        if sim.lookup(key).is_none() {
            sim.insert(key, Record::from_vec(value)).unwrap();
        }
    }

    // Identical resident sets with identical payloads.
    let (live_bytes, live_records) = live.totals().unwrap();
    assert_eq!(live_records as usize, sim.total_records());
    assert_eq!(live_bytes, sim.total_bytes());
    for &key in &keys {
        let l = live.get(key).unwrap();
        let s = sim.lookup(key).map(|r| r.as_slice().to_vec());
        assert_eq!(l, s, "disagreement on key {key}");
    }

    // Both grew beyond one node (same capacity pressure).
    assert!(live.node_count() >= 3);
    assert!(sim.node_count() >= 3);
    sim.validate();
    live.shutdown().unwrap();
}

#[test]
fn live_cluster_survives_a_grow_evict_contract_cycle() {
    let mut live = LiveCoordinator::start(1 << 16, 8 * 1024).unwrap();
    live.enable_window(2, 0.99, 0.99);

    // Grow.
    let keys = key_seq(64, 3);
    for &key in &keys {
        if live.get(key).unwrap().is_none() {
            live.put(key, vec![7u8; 1024]).unwrap();
        }
    }
    let peak = live.node_count();
    assert!(peak >= 4, "expected growth, got {peak}");

    // Keep half the keys warm across slice boundaries.
    let (warm, cold): (Vec<u64>, Vec<u64>) = keys.iter().partition(|&&k| k % 2 == 0);
    for _ in 0..4 {
        for &k in &warm {
            assert!(live.get(k).unwrap().is_some(), "warm key {k} lost");
        }
        live.end_time_step().unwrap();
    }
    // Cold keys expired; warm keys survive.
    for &k in &cold {
        assert!(live.get(k).unwrap().is_none(), "cold key {k} survived");
    }
    for &k in &warm {
        assert!(live.get(k).unwrap().is_some(), "warm key {k} evicted");
    }
    let (_, records) = live.totals().unwrap();
    assert_eq!(records as usize, warm.len());
    live.shutdown().unwrap();
}
