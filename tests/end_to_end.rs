//! End-to-end integration: the full paper pipeline — spatiotemporal query
//! → linearized key → elastic cache → shoreline service on miss — across
//! all workspace crates.

use elastic_cloud_cache::prelude::*;

fn paper_like_cfg() -> CacheConfig {
    let mut cfg = CacheConfig::paper_default();
    cfg.node_capacity_bytes = 64 * 1024; // small nodes so elasticity engages
    cfg
}

#[test]
fn geographic_queries_roundtrip_through_the_cache() {
    let service = ShorelineService::paper_default(5);
    let mut cache = ElasticCache::new(paper_like_cfg());

    let spots = [
        (45.52, -122.68),
        (29.76, -95.37),
        (18.54, -72.34),
        (59.91, 10.75),
        (-33.86, 151.21),
    ];
    // First pass: all miss; second pass: all hit with identical payloads.
    let mut first = Vec::new();
    for &(lat, lon) in &spots {
        let key = service.linearizer().key(lat, lon, 0);
        let rec = cache.query(key, service.exec_time_for(key), || {
            Record::from_vec(service.execute_key(key).shoreline.to_bytes())
        });
        first.push(rec);
    }
    assert_eq!(cache.metrics().misses, spots.len() as u64);
    for (i, &(lat, lon)) in spots.iter().enumerate() {
        let key = service.linearizer().key(lat, lon, 0);
        let rec = cache.query(key, service.exec_time_for(key), || {
            unreachable!("second pass must hit")
        });
        assert_eq!(rec, first[i]);
        // The payload parses back to a real shoreline.
        let shoreline =
            elastic_cloud_cache::shoreline::extract::Shoreline::from_bytes(rec.as_slice())
                .expect("valid shoreline encoding");
        assert!(shoreline.point_count() >= 2);
    }
    cache.validate();
}

#[test]
fn full_workload_run_is_deterministic_and_consistent() {
    let run = || {
        let service = ShorelineService::paper_default(7);
        let mut cfg = paper_like_cfg();
        cfg.ring_range = 1 << 16;
        cfg.window = Some(WindowConfig::paper(20));
        let mut cache = ElasticCache::new(cfg);
        let stream = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(1 << 14),
            99,
        );
        let mut cur = 0u64;
        for (step, key) in stream.take_steps(60) {
            while cur < step {
                cache.end_time_step();
                cur += 1;
            }
            cache.query(key, service.exec_time_for(key), || {
                Record::from_vec(service.execute_key(key).shoreline.to_bytes())
            });
        }
        cache.validate();
        (
            *cache.metrics(),
            cache.node_count(),
            cache.total_records(),
            cache.clock().now_us(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    let (metrics, nodes, records, _) = a;
    assert!(metrics.hits > 0, "workload must produce reuse");
    assert!(nodes >= 2, "workload must force growth");
    assert!(records > 0);
    assert_eq!(metrics.hits + metrics.misses, metrics.queries);
}

#[test]
fn elastic_beats_static_on_the_paper_workload() {
    // The paper's core claim, end to end: under a growing working set, GBA
    // achieves a strictly better hit rate than a small fixed fleet, at a
    // fraction of the always-on node-hours.
    let service = ShorelineService::paper_default(11);
    let mut cfg = paper_like_cfg();
    cfg.ring_range = 1 << 16;
    let n_queries = 6000u64;
    let keys = KeyDist::uniform(1 << 12);

    let mut elastic = ElasticCache::new(cfg.clone());
    let mut fixed = StaticCache::new(&cfg, 2);
    let stream = QueryStream::new(RateSchedule::constant(1), keys, 4242);
    for (_, key) in stream.take_queries(n_queries) {
        let uncached = service.exec_time_for(key);
        elastic.query(key, uncached, || {
            Record::from_vec(service.execute_key(key).shoreline.to_bytes())
        });
        fixed.query(key, uncached, || {
            Record::from_vec(service.execute_key(key).shoreline.to_bytes())
        });
    }
    assert!(
        elastic.metrics().hit_rate() > fixed.metrics().hit_rate(),
        "elastic {:.3} must beat static-2 {:.3}",
        elastic.metrics().hit_rate(),
        fixed.metrics().hit_rate()
    );
    assert!(elastic.metrics().speedup() > fixed.metrics().speedup());
    assert!(elastic.node_count() > 2, "elastic fleet should have grown");
}

#[test]
fn hilbert_and_morton_linearizations_agree_on_cache_semantics() {
    // The cache is agnostic to the curve; both linearizations must produce
    // working key spaces (every cell reachable, no collisions).
    for curve in [Curve::Morton, Curve::Hilbert] {
        let lin = Linearizer::new(
            GeoGrid::global(6),
            TimeGrid::disabled(),
            curve,
            Scheme::TimeMajor,
        );
        let mut cfg = CacheConfig::small_test();
        cfg.ring_range = lin.key_space();
        cfg.node_capacity_bytes = 1 << 20;
        let mut cache = ElasticCache::new(cfg);
        let mut inserted = 0u64;
        for ix in (0..64).step_by(7) {
            for iy in (0..64).step_by(7) {
                let key = lin.key_for_cell(ix, iy, 0);
                cache
                    .insert(key, Record::from_vec(vec![ix as u8, iy as u8]))
                    .unwrap();
                inserted += 1;
            }
        }
        assert_eq!(cache.total_records() as u64, inserted, "{curve:?}");
        for ix in (0..64).step_by(7) {
            for iy in (0..64).step_by(7) {
                let key = lin.key_for_cell(ix, iy, 0);
                let rec = cache.lookup(key).expect("present");
                assert_eq!(rec.as_slice(), &[ix as u8, iy as u8], "{curve:?}");
            }
        }
    }
}

#[test]
fn billing_tracks_elasticity_through_a_burst() {
    let mut cfg = paper_like_cfg();
    cfg.window = Some(WindowConfig {
        slices: 2,
        alpha: 0.99,
        threshold: None,
    });
    cfg.contraction_epsilon = 1;
    let mut cache = ElasticCache::new(cfg);
    // Burst: fill several nodes.
    for k in 0..300u64 {
        cache.query(k * 37 % (1 << 16), 1_000_000, || Record::filler(1000));
    }
    let peak = cache.node_count();
    assert!(peak >= 3);
    // Quiet period: contraction reclaims nodes.
    for _ in 0..12 {
        cache.end_time_step();
    }
    let after = cache.node_count();
    assert!(after < peak, "no contraction: {peak} -> {after}");
    let billing = cache.cloud().billing();
    assert_eq!(billing.launched, cache.cloud().total_launched());
    assert_eq!(billing.active, after);
    assert!(billing.launched > after, "some instances were terminated");
    assert!(billing.dollars() > 0.0);
    cache.validate();
}
