//! Golden corpus for the concurrency passes.
//!
//! Every `bad_*.rs` fixture under `tests/fixtures/` seeds a specific
//! concurrency bug and must be flagged (zero false negatives); every
//! `good_*.rs` fixture exercises the blessed idioms and must come back
//! clean. The full finding set is pinned against `expected.json` so a
//! pass that silently loosens shows up as a golden diff.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::{Path, PathBuf};

use xtask::concurrency::{analyze_source, ConcPolicy};
use xtask::Rule;

/// Fixtures are analyzed with every file-wide pass enabled — they stand
/// in for the strictest real file (a hot-path file in
/// `crates/core`/`crates/net`). The reactor pass is file-targeted in the
/// real tree (only `crates/net/src/reactor.rs`), so here it applies only
/// to fixtures named for it — see [`policy_for_fixture`].
const ALL_PASSES: ConcPolicy = ConcPolicy {
    lock_order: true,
    atomics: true,
    guard_io: true,
    reactor_io: false,
    span_discipline: true,
    hot_alloc: false,
};

/// Reactor-named fixtures additionally ban blocking primitives outright,
/// and hot-alloc-named fixtures ban global-allocator calls, mirroring how
/// `conc_policy_for` singles out the file-targeted passes.
fn policy_for_fixture(name: &str) -> ConcPolicy {
    ConcPolicy {
        reactor_io: name.contains("reactor"),
        hot_alloc: name.contains("hot_alloc"),
        ..ALL_PASSES
    }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_sources() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 fixture name")
            .to_string();
        let src = fs::read_to_string(&path).expect("read fixture");
        out.push((name, src));
    }
    out.sort();
    assert!(out.len() >= 5, "fixture corpus went missing");
    out
}

#[test]
fn corpus_matches_golden_findings() {
    let mut rows = Vec::new();
    for (name, src) in fixture_sources() {
        let rel = format!("fixtures/{name}");
        for f in analyze_source(&rel, &src, policy_for_fixture(&name)) {
            rows.push(format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
                f.file,
                f.line,
                f.rule.slug()
            ));
        }
    }
    let got = format!("[\n  {}\n]", rows.join(",\n  "));
    let expected = fs::read_to_string(fixtures_dir().join("expected.json")).expect("expected.json");
    assert_eq!(
        got.trim(),
        expected.trim(),
        "concurrency findings drifted from the golden corpus; \
         if the change is intentional, update tests/fixtures/expected.json"
    );
}

#[test]
fn every_bad_fixture_is_flagged_and_every_good_fixture_is_clean() {
    for (name, src) in fixture_sources() {
        let rel = format!("fixtures/{name}");
        let findings = analyze_source(&rel, &src, policy_for_fixture(&name));
        if name.starts_with("bad_") {
            assert!(
                !findings.is_empty(),
                "{name}: seeded bug not flagged (false negative)"
            );
        } else {
            assert!(
                findings.is_empty(),
                "{name}: clean fixture produced findings: {findings:?}"
            );
        }
    }
}

/// The static half of the seeded lock-order regression pair. The runtime
/// half — the same Stripe(1)-then-Structural shape hitting the debug-build
/// auditor — is pinned in `ecc_core::lockorder`'s tests.
#[test]
fn seeded_lock_inversion_is_pinned() {
    let src = fs::read_to_string(fixtures_dir().join("bad_lock_inversion.rs")).expect("fixture");
    let findings = analyze_source("fixtures/bad_lock_inversion.rs", &src, ALL_PASSES);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::LockOrder && f.line == 7),
        "structural-under-stripe inversion must be caught at the \
         acquisition site; got {findings:?}"
    );
}
