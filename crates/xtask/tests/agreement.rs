//! Pins the token-level lexer against the legacy character-state
//! stripper: on every source file in the workspace the two must produce
//! byte-identical output, and the lexer must be lossless (token texts
//! concatenate back to the input). An adversarial corpus covers the
//! constructs that historically diverged — raw strings at any hash
//! depth, nested block comments, byte literals, string continuations,
//! raw identifiers, and unterminated tokens at EOF.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::{Path, PathBuf};

use xtask::lexer;
use xtask::strip_comments_and_strings;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

fn first_divergence(a: &str, b: &str) -> String {
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}:\n  lexer:    {la:?}\n  stripper: {lb:?}", n + 1);
        }
    }
    format!(
        "line counts differ: lexer {} vs stripper {}",
        a.lines().count(),
        b.lines().count()
    )
}

#[test]
fn lexer_and_stripper_agree_on_every_workspace_file() {
    let crates = workspace_root().join("crates");
    let mut files = Vec::new();
    rust_sources(&crates, &mut files);
    files.sort();
    assert!(
        files.len() >= 30,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    for path in &files {
        let src = fs::read_to_string(path).expect("read source");
        let via_lexer = lexer::strip_via_lexer(&src);
        let via_stripper = strip_comments_and_strings(&src);
        assert_eq!(
            via_lexer,
            via_stripper,
            "{}: lexer and legacy stripper diverge at {}",
            path.display(),
            first_divergence(&via_lexer, &via_stripper)
        );
    }
}

#[test]
fn lexer_is_lossless_on_every_workspace_file() {
    let crates = workspace_root().join("crates");
    let mut files = Vec::new();
    rust_sources(&crates, &mut files);
    for path in &files {
        let src = fs::read_to_string(path).expect("read source");
        let rebuilt: String = lexer::lex(&src).iter().map(|t| t.text).collect();
        assert_eq!(
            rebuilt,
            src,
            "{}: token concatenation does not reproduce the source",
            path.display()
        );
    }
}

#[test]
fn agreement_on_adversarial_corpus() {
    const CASES: &[&str] = &[
        // Raw strings at increasing hash depth, with embedded quotes.
        r####"let a = r"no hashes"; let b = r#"one " hash"#; let c = r###"deep "## quote"###;"####,
        // Byte strings and byte raw strings.
        "let a = b\"bytes \\\" esc\"; let b = br#\"raw bytes\"#;",
        // Nested block comments with code-looking innards.
        "/* outer /* inner \"str\" */ still comment */ let x = 1;",
        // A block comment spanning lines around a raw string.
        "/* line one\n r\"not a string\" \n*/ let y = 2;\n",
        // String continuation: backslash-newline inside a literal.
        "let s = \"start \\\n    end\";\nlet t = 1;\n",
        // Lifetimes vs char literals, including labels and b-chars.
        "fn f<'a>(x: &'a u32) { 'outer: loop { break 'outer; } let c = 'q'; let b = b'\\n'; }",
        // Raw identifiers and idents ending in r/b before quotes.
        "let r#type = 1; let bar = \"s\"; let nob = b\"t\";",
        // Numeric literals with letter radixes next to quotes.
        "let n = 0b1010; let m = 0xfe; let s = \"after\";",
        // Line comment containing an unbalanced quote.
        "let x = 1; // it's fine \" really\nlet y = 2;",
        // Unterminated string at EOF.
        "let s = \"never closed",
        // Unterminated raw string at EOF.
        "let s = r#\"never closed",
        // Unterminated block comment at EOF.
        "let x = 1; /* trailing",
        // Empty string and adjacent quotes.
        "let e = \"\"; let f = \"\\\"\";",
    ];
    for (i, case) in CASES.iter().enumerate() {
        let via_lexer = lexer::strip_via_lexer(case);
        let via_stripper = strip_comments_and_strings(case);
        assert_eq!(
            via_lexer, via_stripper,
            "adversarial case {i} diverges: {case:?}"
        );
        let rebuilt: String = lexer::lex(case).iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, *case, "adversarial case {i} is not lossless");
    }
}
