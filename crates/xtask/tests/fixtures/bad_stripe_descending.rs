// Fixture: stripe locks acquired in descending index order — both the
// literal-index form and a `.rev()` iteration over the stripe array.
pub fn merge_pair(&self) {
    let hi = self.stripes[3].write();
    let lo = self.stripes[1].write();
    drop(lo);
    drop(hi);
}

pub fn sweep_backwards(&self) {
    for stripe in self.stripes.iter().rev() {
        let tree = stripe.read();
        tree.validate();
    }
}
