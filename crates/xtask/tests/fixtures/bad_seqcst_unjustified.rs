// Fixture: an unjustified SeqCst, which also mixes with a Relaxed load
// of the same atomic field elsewhere in the file.
pub fn set_ready(&self) {
    self.ready.store(true, Ordering::SeqCst);
}

pub fn spin(&self) -> bool {
    self.ready.load(Ordering::Relaxed)
}
