//! Seeded span-discipline bugs: span guards that die on the line that
//! made them, so the trace records zero-duration spans for real work.
//! (Fixture — analyzed textually by the corpus test, never compiled.)

fn migrate(&mut self) -> Result<(), NetError> {
    // Statement position: the RAII guard drops at the semicolon, before
    // the chunk it claims to cover is even swept.
    self.obs.span_follow("migrate_chunk");
    let records = self.client(src)?.sweep(lo, hi)?;
    self.put_all(dst, records)
}

fn split(&mut self) -> Result<(), NetError> {
    // `let _ =` is the same bug spelled explicitly.
    let _ = self.obs.span_root("elastic_split");
    self.do_split()
}

fn serve(&self, trace: u64, parent: u64) {
    // Correct idiom for contrast: underscore-prefixed names own the
    // guard until end of scope.
    let _srv = self.obs.span_start("srv", trace, parent);
    self.execute();
}
