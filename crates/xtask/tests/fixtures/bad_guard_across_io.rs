// Fixture: a lock guard held live across frame I/O on a hot-path file —
// the blocking-under-lock pattern that stalls every thread behind it.
pub fn flush_locked(&self, stream: &mut TcpStream) {
    let state = self.inner.lock();
    write_frame(stream, &state.buf);
}
