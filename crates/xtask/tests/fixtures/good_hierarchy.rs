// Fixture: the blessed idioms — structural before stripe, ascending
// stripe iteration, guard dropped before I/O, justified SeqCst, and
// per-field consistent orderings. Must produce zero findings.
pub fn get(&self, key: u64) -> Option<Record> {
    let _structural = self.structural.read();
    let stripe = self.stripes[stripe_of(key)].read();
    stripe.get(&key).cloned()
}

pub fn sweep(&self) {
    let _structural = self.structural.write();
    for (i, stripe) in self.stripes.iter().enumerate() {
        let tree = stripe.read();
        tree.validate();
    }
}

pub fn respond(&self, stream: &mut TcpStream) {
    let state = self.inner.lock();
    let body = state.render();
    drop(state);
    write_frame(stream, &body);
}

pub fn publish(&self) {
    // seqcst: epoch handoff must stay totally ordered with the drain flag.
    self.epoch.store(1, Ordering::SeqCst);
    self.hits.fetch_add(1, Ordering::Relaxed);
}
