// Fixture: the seeded ISSUE-6 lock-order bug — a stripe guard is live
// when `structural` is acquired. The runtime half of this regression
// pair is `ecc_core::lockorder::tests::inversion_yields_a_typed_violation`,
// which pins the identical shape (Stripe(1) held, then Structural).
pub fn evict_scan(&self) {
    let stripe = self.stripes[1].read();
    let _structural = self.structural.write();
    drop(stripe);
}
