//! Blessed zero-allocation idioms: fixed-capacity inline storage
//! (`InlineVec::new` shares a suffix with `Vec::new` and must not trip
//! the probe), slab-slot allocation, cold-path pre-sizing via
//! `Vec::with_capacity`, an explicit waiver on one-time startup code,
//! and the test-module exemption.

fn put(&mut self, key: u64, payload: &[u8]) {
    let mut keys: InlineVec<u64, 32> = InlineVec::new();
    keys.push(key);
    let rec = self.arena.try_alloc(payload);
    self.insert(key, rec);
}

fn startup(&mut self) {
    self.conns = Vec::new(); // xtask: allow(no-global-alloc-in-hot-path) — one-time startup
    self.wbuf = Vec::with_capacity(4096);
}

#[cfg(test)]
mod tests {
    fn t() {
        let v = vec![0u8; 64];
        let w = v.to_vec();
        let _b = Box::new(w);
        let _z: Vec<u8> = Vec::new();
    }
}
