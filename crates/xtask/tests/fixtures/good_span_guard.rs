//! Blessed span-guard idioms: every constructor's guard is either
//! let-bound across the work it measures or handed to the caller in
//! tail position. Must produce zero findings.
//! (Fixture — analyzed textually by the corpus test, never compiled.)

fn traced_get(&self, trace: u64, parent: u64) -> Option<Record> {
    let _srv = self.obs.span_start("srv", trace, parent);
    let queue = self.obs.span_start_at("srv_queue", trace, parent, self.t_wake);
    drop(queue);
    self.execute()
}

fn fan_out(&self) -> Option<(u64, u64)> {
    // Guard bound, context extracted, guard kept live by the binding.
    let fanout = self.obs.span_follow("coord_fanout");
    fanout.as_ref().map(|s| (s.trace_id(), s.id()))
}

fn root(&self) -> SpanGuard {
    // Tail position: the caller owns the guard.
    self.obs.span_root("elastic_merge")
}
