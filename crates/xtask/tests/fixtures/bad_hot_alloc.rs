//! Seeded bug: global-allocator calls on the zero-allocation hot path.
//! Every line of `grow` reintroduces a per-op malloc the slab engine
//! exists to remove, and each must be flagged at its own line.

fn grow(&mut self, key: u64, payload: &[u8]) {
    let mut scratch = Vec::new();
    let staged = vec![0u8; payload.len()];
    let boxed = Box::new(staged);
    let copy = payload.to_vec();
    scratch.push(key);
    self.insert(key, copy, boxed);
}
