// Fixture: blocking primitives inside a reactor event loop — each call
// parks the reactor thread, stalling every connection it owns.
pub fn drain_blocking(&mut self, stream: &mut TcpStream) {
    let mut hdr = [0u8; 4];
    stream.read_exact(&mut hdr).unwrap();
    let frame = read_frame(stream).unwrap();
    stream.write_all(&frame).unwrap();
    let job = self.jobs.recv().unwrap();
}
