//! Concurrency-soundness passes built on the token-level lexer.
//!
//! PR 5 gave `ShardedNode` a documented lock hierarchy (`structural`
//! before any stripe lock; stripe locks in ascending index order) and a
//! lock-free accounting scheme — but nothing *enforced* the discipline.
//! These passes check it at lint time, before the event-driven reactor
//! multiplies the thread count:
//!
//! * **lock-order** / **stripe-order** — within any function of
//!   `crates/core` / `crates/net`, `structural` must never be acquired
//!   while a stripe guard is live, and stripe locks must be taken in
//!   ascending index order (descending iterations over the stripe array
//!   are flagged at the acquisition site).
//! * **seqcst-justify** — every `Ordering::SeqCst` must carry a
//!   `// seqcst:` justification comment on its own or the preceding
//!   line; everything else should be `Acquire`/`Release`/`AcqRel`.
//! * **mixed-ordering** — one atomic field accessed with `Relaxed` in
//!   one place and a synchronizing ordering elsewhere is a latent race:
//!   either the field publishes data (every access synchronizes) or it
//!   is a statistic (every access relaxed).
//! * **guard-across-io** — on hot-path files, no lock guard may be live
//!   across frame or socket I/O (`read_frame*` / `write_frame*` /
//!   `.send(` / `.flush(` …): a guard held across a blocking syscall is
//!   the pitfall that will kill the reactor (pelikan transcript, PR 5).
//! * **no-blocking-io-in-reactor** — reactor event-loop files must never
//!   call a blocking primitive at all: `read_exact` / `read_to_end` /
//!   `write_all` loop until satisfied, the blocking frame helpers
//!   (`read_frame*` / `write_frame*`) sit on top of them, channel
//!   `.recv()` parks the thread, and a mutex `.lock()` can block behind
//!   an arbitrary holder. A reactor thread owns a whole slice of
//!   connections; any of these stalls all of them. Reactors use
//!   nonblocking reads/writes that surface `WouldBlock`, `try_recv`, and
//!   lock-free handoff instead.
//! * **no-global-alloc-in-hot-path** — the slab-arena storage engine
//!   (PR 10) got steady-state GET/PUT to zero allocator calls: B+Tree
//!   nodes use fixed-capacity inline arrays and record payloads live in
//!   size-class slab slots. Files on that path must not call the global
//!   allocator at all: `Vec::new` / `vec!` / `Box::new` / `.to_vec` are
//!   banned outside test modules (matching at identifier boundaries, so
//!   `InlineVec::new` stays legal). Cold paths — connection setup,
//!   reactor startup — carry an explicit per-line waiver instead.
//! * **span-discipline** — a span-guard constructor (`.span_start(` /
//!   `.span_start_at(` / `.span_follow(` / `.span_root(`) in statement
//!   position, or bound with `let _ =`, drops its RAII guard on the spot:
//!   the span ends the instant it starts and the trace silently records
//!   zero duration. Guards must be let-bound (`let _g = …` — an
//!   underscore-*prefixed* name still owns the value — or a named
//!   binding), so the span covers the work it claims to measure.
//!
//! The passes are heuristic but sound for the repo's idiom: guards are
//! bound with single-line `let g = <lock>.read()/.write()/.lock();`
//! statements and die at the end of their block (or at `drop(g)`). A
//! finding can be waived per line with `// xtask: allow(<rule>)`.

use crate::lexer::{self, Token, TokenKind};
use crate::{line_infos, Finding, Rule};

/// Which concurrency passes apply to one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcPolicy {
    /// Enforce the structural-before-stripe lock hierarchy.
    pub lock_order: bool,
    /// Enforce the SeqCst-justification and mixed-ordering rules.
    pub atomics: bool,
    /// Forbid guards held across frame/socket I/O.
    pub guard_io: bool,
    /// Forbid blocking I/O primitives outright (reactor event loops).
    pub reactor_io: bool,
    /// Require span guards to be let-bound (RAII discipline).
    pub span_discipline: bool,
    /// Forbid global-allocator calls outright (slab-era hot-path files).
    pub hot_alloc: bool,
}

/// Crates whose lock acquisitions must follow the ShardedNode hierarchy.
const LOCK_ORDER_CRATES: &[&str] = &["core", "net"];

/// Crates audited for atomic-ordering discipline (the data path plus the
/// observability layer and the virtual clock).
const ATOMIC_CRATES: &[&str] = &["core", "net", "obs", "cloudsim"];

/// Files where a guard across blocking I/O is a hot-path bug.
const GUARD_IO_FILES: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/net/src/reactor.rs",
    "crates/net/src/coordinator.rs",
    "crates/net/src/client.rs",
    "crates/core/src/shard.rs",
];

/// Reactor event-loop files: blocking primitives are forbidden outright,
/// not merely under a guard.
const REACTOR_FILES: &[&str] = &["crates/net/src/reactor.rs"];

/// Crates that open trace spans and must keep the RAII guards live.
const SPAN_CRATES: &[&str] = &["core", "net", "obs", "simtest"];

/// Files on the zero-allocation steady-state path: inline B+Tree node
/// storage, the slab arena itself, and the reactor event loop. A stray
/// `Vec::new` here silently reintroduces the per-op mallocs the slab
/// engine exists to remove.
const HOT_ALLOC_FILES: &[&str] = &[
    "crates/bptree/src/tree.rs",
    "crates/bptree/src/inline.rs",
    "crates/core/src/slab.rs",
    "crates/net/src/reactor.rs",
];

/// Global-allocator entry points banned on the hot-alloc files, with the
/// zero-alloc replacement each should use. Token matching honours
/// identifier boundaries, so `InlineVec::new` never trips the `Vec::new`
/// probe; `Vec::with_capacity` (cold-path pre-sizing) stays legal.
const HOT_ALLOC_PATTERNS: &[(&str, &str)] = &[
    (
        "Vec::new(",
        "growable heap vector — use a fixed-capacity `InlineVec` or a \
         pre-sized buffer created off the hot path",
    ),
    (
        "vec!",
        "heap vector literal — use a stack array or an `InlineVec`",
    ),
    (
        "Box::new(",
        "heap box — hot-path values live inline in nodes or in slab slots",
    ),
    (
        ".to_vec(",
        "payload memcpy into a fresh heap vector — clone the refcounted \
         handle (`SlabRef` / `Bytes`) instead",
    ),
];

/// Span-guard constructors (method-call position, so definitions and
/// free functions don't match).
const SPAN_METHODS: &[&str] = &[
    ".span_start(",
    ".span_start_at(",
    ".span_follow(",
    ".span_root(",
];

/// Blocking primitives forbidden in reactor files, with the reason each
/// one stalls the event loop. `.recv()` (empty argument list) matches the
/// channel's parking receive but not `try_recv()`; `.lock()` matches both
/// `std` and `parking_lot` mutexes — either kind blocks behind an
/// arbitrary holder.
const REACTOR_BLOCKING: &[(&str, &str)] = &[
    (".read_exact(", "loops until the peer sends enough bytes"),
    (".read_to_end(", "blocks until the peer closes the stream"),
    (".write_all(", "loops until the kernel buffer drains"),
    (
        "read_frame",
        "is a blocking frame helper built on read_exact",
    ),
    (
        "write_frame",
        "is a blocking frame helper built on write_all",
    ),
    (".recv()", "parks the thread until a message arrives"),
    (".lock()", "blocks behind whichever thread holds the mutex"),
];

/// Frame/socket I/O markers for the guard-across-io pass.
const IO_PATTERNS: &[&str] = &[
    "read_frame",
    "write_frame",
    ".send(",
    ".recv(",
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".flush(",
    "TcpStream::connect",
];

/// Atomic accessor methods whose argument lists carry `Ordering` values.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The five atomic orderings (anything else after `Ordering::` — e.g.
/// `std::cmp::Ordering::Less` — is ignored).
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Decide the concurrency policy for a workspace-relative path. Returns
/// `None` for files outside `crates/*/src` and for binary entry points.
pub fn conc_policy_for(rel_path: &str) -> Option<ConcPolicy> {
    let rel = rel_path.replace('\\', "/");
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if parts.next() != Some("src") {
        return None;
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
    if is_bin {
        return None;
    }
    Some(ConcPolicy {
        lock_order: LOCK_ORDER_CRATES.contains(&krate),
        atomics: ATOMIC_CRATES.contains(&krate),
        guard_io: GUARD_IO_FILES.contains(&rel.as_str()),
        reactor_io: REACTOR_FILES.contains(&rel.as_str()),
        span_discipline: SPAN_CRATES.contains(&krate),
        hot_alloc: HOT_ALLOC_FILES.contains(&rel.as_str()),
    })
}

/// Run every applicable concurrency pass over one file.
pub fn analyze_source(rel_path: &str, src: &str, policy: ConcPolicy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = lexer::strip_via_lexer(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let infos = line_infos(&stripped_lines);
    let in_test: Vec<bool> = infos.iter().map(|i| i.in_test).collect();
    let depths: Vec<i64> = infos.iter().map(|i| i.depth).collect();

    if policy.lock_order || policy.guard_io {
        lock_passes(
            rel_path,
            &raw_lines,
            &stripped_lines,
            &in_test,
            &depths,
            policy,
            &mut findings,
        );
    }
    if policy.atomics {
        atomic_pass(rel_path, src, &raw_lines, &in_test, &mut findings);
    }
    if policy.reactor_io {
        reactor_io_pass(
            rel_path,
            &raw_lines,
            &stripped_lines,
            &in_test,
            &mut findings,
        );
    }
    if policy.span_discipline {
        span_pass(
            rel_path,
            &raw_lines,
            &stripped_lines,
            &in_test,
            &mut findings,
        );
    }
    if policy.hot_alloc {
        hot_alloc_pass(
            rel_path,
            &raw_lines,
            &stripped_lines,
            &in_test,
            &mut findings,
        );
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Flag span-guard constructors whose guard dies on the line it was made:
/// a bare statement call (`obs.span_follow("x");`) or an explicit discard
/// (`let _ = obs.span_root("x");`). Either way the span ends immediately
/// and the trace records zero duration for work that then runs untimed.
///
/// Tail-expression calls (no trailing `;`) hand the guard to the caller
/// and are fine; so is any named binding, including underscore-prefixed
/// names (`let _g = …` owns the guard until end of scope).
fn span_pass(
    rel_path: &str,
    raw_lines: &[&str],
    stripped_lines: &[&str],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for (idx, line) in stripped_lines.iter().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");
        if raw_line.contains(&format!("xtask: allow({})", Rule::SpanDiscipline.slug())) {
            continue;
        }
        let Some(pat) = SPAN_METHODS.iter().find(|p| line.contains(*p)) else {
            continue;
        };
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("let ") {
            let name = rest.split('=').next().unwrap_or("").trim();
            let name = name.strip_prefix("mut ").unwrap_or(name).trim();
            if name == "_" {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::SpanDiscipline,
                    message: format!(
                        "`let _ =` discards the guard from `{pat}…)` immediately — the span \
                         records zero duration; bind it to an underscore-prefixed name \
                         (`let _span = …`) so it lives until end of scope"
                    ),
                });
            }
            continue;
        }
        // A statement that *starts* with the receiver of the span call and
        // ends at a semicolon never stores the guard anywhere. A line that
        // opens with `.` is a rustfmt continuation of a wrapped expression
        // (the receiver — and usually a `let` — sits on an earlier line),
        // so only a same-line receiver counts.
        let call_pos = match t.find(pat) {
            Some(p) => p,
            None => continue,
        };
        let bare_receiver = call_pos > 0
            && t[..call_pos]
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '.' || c == ':');
        if bare_receiver && t.ends_with(';') {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::SpanDiscipline,
                message: format!(
                    "`{pat}…)` in statement position drops its RAII guard at the semicolon — \
                     the span ends the instant it starts; let-bind the guard \
                     (`let _span = …`) across the work it should measure"
                ),
            });
        }
    }
}

/// Flag every blocking primitive in a reactor file, regardless of guard
/// state: the event loop owns many connections, so one parked thread
/// stalls them all.
fn reactor_io_pass(
    rel_path: &str,
    raw_lines: &[&str],
    stripped_lines: &[&str],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for (idx, line) in stripped_lines.iter().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");
        if raw_line.contains(&format!(
            "xtask: allow({})",
            Rule::BlockingIoInReactor.slug()
        )) {
            continue;
        }
        for (pat, why) in REACTOR_BLOCKING {
            if line.contains(pat) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::BlockingIoInReactor,
                    message: format!(
                        "`{pat}` in a reactor event loop — it {why}, stalling every \
                         connection this reactor owns; use nonblocking I/O that surfaces \
                         `WouldBlock` (FrameAssembler::fill_from, buffered writes, try_recv)"
                    ),
                });
            }
        }
    }
}

/// True when `needle` occurs in `line` as a token: when the needle opens
/// with an identifier character, the character before the match must not
/// be one (so `InlineVec::new` never matches a `Vec::new` probe). Needles
/// opening with punctuation (`.to_vec(`) match as plain substrings.
fn contains_token(line: &str, needle: &str) -> bool {
    let ident_start = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(off) = line[start..].find(needle) {
        let pos = start + off;
        let boundary = !ident_start
            || pos == 0
            || !line[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = pos + needle.len();
    }
    false
}

/// Flag every global-allocator call in a hot-alloc file. The slab engine
/// exists to make steady-state GET/PUT allocation-free (inline node
/// arrays, size-class slab slots); one stray `Vec::new` on this path
/// quietly reintroduces the per-op mallocs the refactor removed — and the
/// zero-alloc bench gate only catches the workloads it happens to run.
fn hot_alloc_pass(
    rel_path: &str,
    raw_lines: &[&str],
    stripped_lines: &[&str],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for (idx, line) in stripped_lines.iter().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");
        if raw_line.contains(&format!(
            "xtask: allow({})",
            Rule::NoGlobalAllocHotPath.slug()
        )) {
            continue;
        }
        for (pat, why) in HOT_ALLOC_PATTERNS {
            if contains_token(line, pat) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::NoGlobalAllocHotPath,
                    message: format!(
                        "`{pat}` on the zero-allocation hot path — {why}; cold-path setup \
                         code may waive per line with a stated reason"
                    ),
                });
            }
        }
    }
}

/// Lock class of one acquisition site, as far as the text tells us.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockSite {
    /// The node-wide `structural` order point.
    Structural,
    /// A stripe lock; `Some(i)` when the index is a literal.
    Stripe(Option<usize>),
    /// Some other lock (`Mutex::lock` on an unknown receiver).
    Other,
}

/// A live guard binding.
#[derive(Debug)]
struct Guard {
    name: String,
    class: LockSite,
    index: Option<usize>,
    depth: i64,
}

/// A loop variable iterating over the stripe array.
#[derive(Debug)]
struct StripeIter {
    name: String,
    descending: bool,
    depth: i64,
}

#[allow(clippy::too_many_arguments)]
fn lock_passes(
    rel_path: &str,
    raw_lines: &[&str],
    stripped_lines: &[&str],
    in_test: &[bool],
    depths: &[i64],
    policy: ConcPolicy,
    findings: &mut Vec<Finding>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut iters: Vec<StripeIter> = Vec::new();

    for (idx, line) in stripped_lines.iter().enumerate() {
        let depth = depths.get(idx).copied().unwrap_or(0);
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");
        let line_no = idx + 1;

        // A guard (or registered stripe iterator) dies when control leaves
        // the block it was bound in.
        guards.retain(|g| depth >= g.depth);
        iters.retain(|it| depth >= it.depth);

        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }

        // Explicit early release.
        if let Some(pos) = line.find("drop(") {
            let arg: String = line[pos + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            guards.retain(|g| g.name != arg);
        }

        // Register stripe-iterating loop variables.
        if let Some((vars, expr)) = parse_for_loop(line) {
            if expr.contains("stripes") {
                let descending = expr.contains(".rev()");
                for v in vars {
                    iters.push(StripeIter {
                        name: v,
                        descending,
                        depth: depth + 1,
                    });
                }
            }
        }

        let allowed = |rule: Rule| raw_line.contains(&format!("xtask: allow({})", rule.slug()));

        // Guard-across-I/O: any live guard plus frame/socket I/O on the
        // same line is a blocking call under a lock.
        if policy.guard_io && !guards.is_empty() && !allowed(Rule::GuardAcrossIo) {
            if let Some(pat) = IO_PATTERNS.iter().find(|p| line.contains(*p)) {
                let held = guard_names(&guards);
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::GuardAcrossIo,
                    message: format!(
                        "`{pat}` I/O while lock guard(s) [{held}] are live — drop the guard \
                         before blocking (a lock held across a syscall stalls every thread \
                         behind it)"
                    ),
                });
            }
        }

        // Acquisition sites on this line.
        for acq in find_acquisitions(line) {
            let class = classify(&acq.receiver, &iters);
            let (class, descending) = class;

            if policy.lock_order && !allowed(Rule::StripeOrder) && descending {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::StripeOrder,
                    message: format!(
                        "stripe lock acquired via `{}` inside a descending iteration over \
                         the stripe array — stripe locks must be taken in ascending index \
                         order",
                        acq.receiver
                    ),
                });
            }

            if policy.lock_order && class != LockSite::Other {
                check_order(rel_path, line_no, raw_line, class, &guards, findings);
            }

            // Terminal `let g = <lock>.read();` binds a live guard.
            if acq.binds {
                if let Some(name) = binding_name(line) {
                    let index = match class {
                        LockSite::Stripe(i) => i,
                        _ => None,
                    };
                    guards.push(Guard {
                        name,
                        class,
                        index,
                        depth,
                    });
                }
            }
        }
    }
}

/// Comma-joined guard names for diagnostics.
fn guard_names(guards: &[Guard]) -> String {
    guards
        .iter()
        .map(|g| g.name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Enforce the hierarchy at one acquisition site.
fn check_order(
    rel_path: &str,
    line_no: usize,
    raw_line: &str,
    class: LockSite,
    guards: &[Guard],
    findings: &mut Vec<Finding>,
) {
    let allowed = |rule: Rule| raw_line.contains(&format!("xtask: allow({})", rule.slug()));
    match class {
        LockSite::Structural => {
            if !allowed(Rule::LockOrder)
                && guards
                    .iter()
                    .any(|g| matches!(g.class, LockSite::Structural | LockSite::Stripe(_)))
            {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::LockOrder,
                    message: format!(
                        "`structural` acquired while guard(s) [{}] are live — the hierarchy \
                         is structural → stripe, never the reverse (deadlock with any \
                         writer waiting behind the held guard)",
                        guard_names(guards)
                    ),
                });
            }
        }
        LockSite::Stripe(new_idx) => {
            if allowed(Rule::StripeOrder) {
                return;
            }
            for g in guards {
                if let LockSite::Stripe(_) = g.class {
                    let out_of_order = match (g.index, new_idx) {
                        (Some(held), Some(new)) => new <= held,
                        // A second stripe lock with statically unordered
                        // indices cannot be proven ascending.
                        _ => true,
                    };
                    if out_of_order {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: line_no,
                            rule: Rule::StripeOrder,
                            message: format!(
                                "stripe lock acquired while stripe guard `{}` is live and \
                                 the index order cannot be proven ascending — acquire \
                                 stripes in ascending index order only",
                                g.name
                            ),
                        });
                        break;
                    }
                }
            }
        }
        LockSite::Other => {}
    }
}

/// One `.read()` / `.write()` / `.lock()` call site on a line.
struct Acquisition {
    receiver: String,
    /// True when the call terminates a `let` statement (`… .read();`),
    /// i.e. the guard outlives the expression.
    binds: bool,
}

/// Find lock-acquisition call sites (`.read()` / `.write()` / `.lock()`
/// with an empty argument list, which distinguishes them from socket
/// `.read(buf)` / `.write(buf)`).
fn find_acquisitions(line: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for method in [".read()", ".write()", ".lock()"] {
        let mut start = 0;
        while let Some(off) = line[start..].find(method) {
            let pos = start + off;
            let receiver = receiver_before(line, pos);
            if !receiver.is_empty() {
                let rest = line[pos + method.len()..].trim_start();
                let binds = line.trim_start().starts_with("let ") && rest.starts_with(';');
                out.push(Acquisition { receiver, binds });
            }
            start = pos + method.len();
        }
    }
    out
}

/// Walk backwards from the `.` of a method call to extract the receiver
/// expression (identifiers, paths, and bracketed index/call groups).
fn receiver_before(line: &str, dot_pos: usize) -> String {
    let b = line.as_bytes();
    let mut j = dot_pos;
    while j > 0 {
        let c = b[j - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':' {
            j -= 1;
            continue;
        }
        if c == ']' || c == ')' {
            let (open, close) = if c == ']' { (b'[', b']') } else { (b'(', b')') };
            let mut depth = 1i32;
            j -= 1;
            while j > 0 && depth > 0 {
                let ch = b[j - 1];
                if ch == close {
                    depth += 1;
                } else if ch == open {
                    depth -= 1;
                }
                j -= 1;
            }
            continue;
        }
        break;
    }
    line[j..dot_pos].to_string()
}

/// Classify a receiver; the bool is "acquired inside a descending stripe
/// iteration".
fn classify(receiver: &str, iters: &[StripeIter]) -> (LockSite, bool) {
    if receiver.contains("structural") {
        return (LockSite::Structural, false);
    }
    if receiver.contains("stripes") {
        return (LockSite::Stripe(literal_index(receiver)), false);
    }
    // A bare identifier bound by `for <var> in …stripes…`.
    let base = receiver.split(['.', ':']).next().unwrap_or("");
    if let Some(it) = iters.iter().find(|it| it.name == base) {
        return (LockSite::Stripe(None), it.descending);
    }
    (LockSite::Other, false)
}

/// Extract a literal index from `…stripes[<n>]…`, if present.
fn literal_index(receiver: &str) -> Option<usize> {
    let pos = receiver.find("stripes[")?;
    let inner = &receiver[pos + "stripes[".len()..];
    let end = inner.find(']')?;
    inner[..end].trim().parse().ok()
}

/// Parse `for <vars> in <expr>` into the loop variables and the iterated
/// expression.
fn parse_for_loop(line: &str) -> Option<(Vec<String>, String)> {
    let t = line.trim_start();
    let rest = t.strip_prefix("for ")?;
    let in_pos = rest.find(" in ")?;
    let vars: Vec<String> = rest[..in_pos]
        .trim_matches(|c| c == '(' || c == ')' || c == ' ')
        .split(',')
        .map(|v| v.trim().trim_start_matches("mut ").to_string())
        .filter(|v| !v.is_empty() && v != "_")
        .collect();
    let expr = rest[in_pos + 4..].to_string();
    Some((vars, expr))
}

/// Extract `<name>` from a `let [mut] <name> = …;` line.
fn binding_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let eq = rest.find('=')?;
    let name = rest[..eq].trim().trim_start_matches("mut ").trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some(name.to_string())
}

/// Token-level atomic-ordering audit: SeqCst justification and per-field
/// mixed-ordering detection.
fn atomic_pass(
    rel_path: &str,
    src: &str,
    raw_lines: &[&str],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    // Significant tokens only, with their line numbers.
    let toks: Vec<Token<'_>> = lexer::lex(src)
        .into_iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment { .. }
            )
        })
        .collect();

    // Innermost pending atomic call: (field, paren depth at which its
    // argument list closes).
    let mut call_stack: Vec<(String, i32)> = Vec::new();
    let mut paren_depth: i32 = 0;
    // field -> (orderings seen, first line seen)
    let mut fields: std::collections::BTreeMap<String, (Vec<&'static str>, usize)> =
        std::collections::BTreeMap::new();

    let is_test_line = |line: u32| in_test.get(line as usize - 1).copied().unwrap_or(false);
    let line_allows = |line: u32, rule: Rule| {
        raw_lines
            .get(line as usize - 1)
            .is_some_and(|l| l.contains(&format!("xtask: allow({})", rule.slug())))
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokenKind::Punct => match t.text {
                "(" => paren_depth += 1,
                ")" => {
                    paren_depth -= 1;
                    while call_stack
                        .last()
                        .is_some_and(|&(_, close_at)| paren_depth < close_at)
                    {
                        call_stack.pop();
                    }
                }
                _ => {}
            },
            TokenKind::Ident => {
                // `Ordering :: <X>` — attribute to the innermost call.
                if t.text == "Ordering"
                    && toks.get(i + 1).is_some_and(|p| p.text == ":")
                    && toks.get(i + 2).is_some_and(|p| p.text == ":")
                {
                    if let Some(ord) = toks.get(i + 3) {
                        if let Some(&known) = ORDERINGS.iter().find(|&&o| o == ord.text) {
                            if !is_test_line(ord.line) {
                                if known == "SeqCst"
                                    && !seqcst_justified(raw_lines, ord.line)
                                    && !line_allows(ord.line, Rule::SeqCstJustify)
                                {
                                    findings.push(Finding {
                                        file: rel_path.to_string(),
                                        line: ord.line as usize,
                                        rule: Rule::SeqCstJustify,
                                        message: "`Ordering::SeqCst` without a `// seqcst:` \
                                                  justification — downgrade to Acquire/Release/\
                                                  AcqRel or document why a total order is needed"
                                            .into(),
                                    });
                                }
                                if let Some((field, _)) = call_stack.last() {
                                    let entry = fields
                                        .entry(field.clone())
                                        .or_insert_with(|| (Vec::new(), ord.line as usize));
                                    if !entry.0.contains(&known) {
                                        entry.0.push(known);
                                    }
                                }
                            }
                        }
                        i += 4;
                        continue;
                    }
                }
                // `<recv> . <atomic_method> (` opens an atomic call.
                if ATOMIC_METHODS.contains(&t.text)
                    && toks.get(i + 1).is_some_and(|p| p.text == "(")
                    && i >= 2
                    && toks[i - 1].text == "."
                {
                    if let Some(field) = field_of(&toks, i - 1) {
                        // The argument list closes when depth returns to
                        // the current depth (the `(` is consumed next).
                        call_stack.push((field, paren_depth + 1));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    for (field, (orderings, first_line)) in &fields {
        let relaxed = orderings.contains(&"Relaxed");
        let syncing = orderings.iter().any(|&o| o != "Relaxed");
        if relaxed && syncing && !line_allows(*first_line as u32, Rule::MixedOrdering) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: *first_line,
                rule: Rule::MixedOrdering,
                message: format!(
                    "atomic field `{field}` mixes Relaxed with synchronizing orderings \
                     ({orderings:?}) — pick one contract: publish (Acquire/Release) or \
                     statistic (Relaxed everywhere)"
                ),
            });
        }
    }
}

/// The field identifier a `.` at token index `dot_idx` selects — e.g.
/// `self.used.load(..)` → `used`; `live.fetch_add(..)` → `live`;
/// `self.0.fetch_sub(..)` → `0`.
fn field_of(toks: &[Token<'_>], dot_idx: usize) -> Option<String> {
    let prev = toks.get(dot_idx.checked_sub(1)?)?;
    match prev.kind {
        TokenKind::Ident | TokenKind::Num => Some(prev.text.to_string()),
        _ => None,
    }
}

/// A SeqCst use is justified by a `// seqcst:` comment on the same or the
/// immediately preceding source line.
fn seqcst_justified(raw_lines: &[&str], line: u32) -> bool {
    let idx = line as usize - 1;
    let same = raw_lines.get(idx).is_some_and(|l| l.contains("seqcst:"));
    let above = idx > 0
        && raw_lines
            .get(idx - 1)
            .is_some_and(|l| l.contains("seqcst:"));
    same || above
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: ConcPolicy = ConcPolicy {
        lock_order: true,
        atomics: true,
        guard_io: true,
        reactor_io: true,
        span_discipline: true,
        hot_alloc: false,
    };

    /// The policy of a zero-allocation hot-path file that carries none of
    /// the lock/atomic machinery (e.g. the bptree crate).
    const HOT_ALLOC_ONLY: ConcPolicy = ConcPolicy {
        lock_order: false,
        atomics: false,
        guard_io: false,
        reactor_io: false,
        span_discipline: false,
        hot_alloc: true,
    };

    /// The policy of a guard-audited non-reactor file (e.g. server.rs):
    /// guards across I/O are flagged, blocking I/O itself is legal.
    const GUARDED: ConcPolicy = ConcPolicy {
        reactor_io: false,
        ..ALL
    };

    fn rules(findings: &[Finding]) -> Vec<(usize, Rule)> {
        findings.iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn correct_hierarchy_is_clean() {
        let src = "\
fn get(&self, key: u64) -> Option<Record> {
    let _structural = self.structural.read();
    let stripe = self.stripes[stripe_of(key, self.mask)].read();
    stripe.get(&key).cloned()
}
fn sweep(&self) {
    let _structural = self.structural.write();
    for (i, stripe) in self.stripes.iter().enumerate() {
        let tree = stripe.read();
        tree.validate();
    }
}
";
        assert!(analyze_source("crates/core/src/x.rs", src, ALL).is_empty());
    }

    #[test]
    fn structural_after_stripe_is_an_inversion() {
        let src = "\
fn bad(&self) {
    let stripe = self.stripes[0].read();
    let _structural = self.structural.write();
}
";
        let f = analyze_source("crates/core/src/x.rs", src, ALL);
        assert_eq!(rules(&f), vec![(3, Rule::LockOrder)]);
    }

    #[test]
    fn descending_stripe_indices_are_flagged() {
        let src = "\
fn bad(&self) {
    let a = self.stripes[3].write();
    let b = self.stripes[1].write();
}
fn also_bad(&self) {
    for stripe in self.stripes.iter().rev() {
        let t = stripe.read();
    }
}
fn fine(&self) {
    let a = self.stripes[1].write();
    let b = self.stripes[3].write();
}
";
        let f = analyze_source("crates/core/src/x.rs", src, ALL);
        assert_eq!(
            rules(&f),
            vec![(3, Rule::StripeOrder), (7, Rule::StripeOrder)]
        );
    }

    #[test]
    fn guard_across_io_is_flagged_and_drop_releases() {
        let src = "\
fn bad(&self, stream: &mut TcpStream) {
    let g = self.state.lock();
    write_frame(stream, &g.buf);
}
fn good(&self, stream: &mut TcpStream) {
    let g = self.state.lock();
    let body = g.buf.clone();
    drop(g);
    write_frame(stream, &body);
}
";
        let f = analyze_source("crates/net/src/server.rs", src, GUARDED);
        assert_eq!(rules(&f), vec![(3, Rule::GuardAcrossIo)]);
    }

    #[test]
    fn guard_dies_with_its_block() {
        let src = "\
fn ok(&self, stream: &mut TcpStream) {
    {
        let g = self.state.lock();
        g.touch();
    }
    write_frame(stream, b\"x\");
}
";
        assert!(analyze_source("crates/net/src/server.rs", src, GUARDED).is_empty());
    }

    #[test]
    fn unjustified_seqcst_is_flagged_justified_is_not() {
        let src = "\
fn f(&self) {
    self.flag.store(true, Ordering::SeqCst);
    // seqcst: the flag orders against the epoch counter below.
    self.flag2.store(true, Ordering::SeqCst);
    self.n.fetch_add(1, Ordering::Relaxed);
}
";
        let f = analyze_source("crates/core/src/x.rs", src, ALL);
        assert_eq!(rules(&f), vec![(2, Rule::SeqCstJustify)]);
    }

    #[test]
    fn mixed_ordering_on_one_field_is_flagged() {
        let src = "\
fn f(&self) {
    self.used.store(1, Ordering::Relaxed);
}
fn g(&self) -> u64 {
    self.used.load(Ordering::Acquire)
}
fn consistent(&self) -> u64 {
    self.count.fetch_add(1, Ordering::AcqRel);
    self.count.load(Ordering::Acquire)
}
";
        let f = analyze_source("crates/core/src/x.rs", src, ALL);
        assert_eq!(rules(&f), vec![(2, Rule::MixedOrdering)]);
    }

    #[test]
    fn multiline_atomic_calls_attribute_orderings() {
        // rustfmt wraps long receivers; the token walk must still see
        // `used.fetch_update(AcqRel, Acquire, ..)` as one call.
        let src = "\
fn f(&self) {
    let r = self
        .used
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |u| {
            u.checked_add(1)
        });
    self.used.load(Ordering::Acquire);
}
";
        assert!(analyze_source("crates/core/src/x.rs", src, ALL).is_empty());
        // …and a Relaxed load elsewhere on the same field is a mix.
        let mixed = format!("{src}fn g(&self) -> u64 {{ self.used.load(Ordering::Relaxed) }}\n");
        let f = analyze_source("crates/core/src/x.rs", &mixed, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::MixedOrdering);
    }

    #[test]
    fn waivers_and_test_modules_are_respected() {
        let src = "\
fn f(&self) {
    self.flag.store(true, Ordering::SeqCst); // xtask: allow(seqcst-justify) — cross-crate fence
}
#[cfg(test)]
mod tests {
    fn t(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let stripe = self.stripes[0].read();
        let _structural = self.structural.write();
    }
}
";
        assert!(analyze_source("crates/core/src/x.rs", src, ALL).is_empty());
    }

    #[test]
    fn socket_read_write_with_args_are_not_lock_acquisitions() {
        let src = "\
fn f(stream: &mut TcpStream, buf: &mut [u8]) {
    stream.read(buf).ok();
    stream.write(buf).ok();
}
";
        assert!(analyze_source("crates/net/src/server.rs", src, GUARDED).is_empty());
    }

    #[test]
    fn blocking_primitives_in_reactor_files_are_flagged() {
        let src = "\
fn drain(&mut self, stream: &mut TcpStream) {
    let mut hdr = [0u8; 4];
    stream.read_exact(&mut hdr)?;
    stream.write_all(&hdr)?;
    let job = self.rx.recv();
}
";
        let f = analyze_source("crates/net/src/reactor.rs", src, ALL);
        assert_eq!(
            rules(&f),
            vec![
                (3, Rule::BlockingIoInReactor),
                (4, Rule::BlockingIoInReactor),
                (5, Rule::BlockingIoInReactor),
            ]
        );
    }

    #[test]
    fn nonblocking_reactor_idiom_is_clean() {
        let src = "\
fn sweep(&mut self, conn: &mut Conn) -> io::Result<()> {
    while let Some(job) = self.rx.try_recv() {
        self.conns.push(job);
    }
    let n = conn.asm.fill_from(&mut conn.stream)?;
    let wrote = conn.stream.write(&conn.wbuf[conn.wpos..])?;
    Ok(())
}
";
        assert!(analyze_source("crates/net/src/reactor.rs", src, ALL).is_empty());
    }

    #[test]
    fn reactor_blocking_waiver_and_tests_are_respected() {
        let src = "\
fn startup(&mut self) {
    self.rx.recv(); // xtask: allow(no-blocking-io-in-reactor) — pre-loop handshake
}
#[cfg(test)]
mod tests {
    fn t(stream: &mut TcpStream) {
        stream.read_exact(&mut [0u8; 4]).unwrap();
    }
}
";
        assert!(analyze_source("crates/net/src/reactor.rs", src, ALL).is_empty());
    }

    #[test]
    fn policies_match_the_repo_layout() {
        let p = conc_policy_for("crates/core/src/shard.rs").unwrap();
        assert!(p.lock_order && p.atomics && p.guard_io && !p.reactor_io && p.span_discipline);
        assert!(!p.hot_alloc, "shard delegates payload storage to the slab");
        let p = conc_policy_for("crates/net/src/server.rs").unwrap();
        assert!(p.lock_order && p.atomics && p.guard_io && !p.reactor_io);
        let p = conc_policy_for("crates/net/src/reactor.rs").unwrap();
        assert!(p.lock_order && p.atomics && p.guard_io && p.reactor_io && p.hot_alloc);
        let p = conc_policy_for("crates/net/src/protocol.rs").unwrap();
        assert!(p.lock_order && p.atomics && !p.guard_io);
        let p = conc_policy_for("crates/obs/src/registry.rs").unwrap();
        assert!(!p.lock_order && p.atomics && !p.guard_io && p.span_discipline);
        let p = conc_policy_for("crates/simtest/src/proto_sim.rs").unwrap();
        assert!(p.span_discipline);
        // The zero-allocation storage files: inline node arrays + slab.
        let p = conc_policy_for("crates/bptree/src/tree.rs").unwrap();
        assert!(!p.lock_order && !p.atomics && !p.guard_io && !p.span_discipline);
        assert!(p.hot_alloc);
        assert!(
            conc_policy_for("crates/bptree/src/inline.rs")
                .unwrap()
                .hot_alloc
        );
        assert!(
            conc_policy_for("crates/core/src/slab.rs")
                .unwrap()
                .hot_alloc
        );
        assert!(
            !conc_policy_for("crates/bptree/src/bytesize.rs")
                .unwrap()
                .hot_alloc
        );
        assert!(conc_policy_for("crates/net/src/bin/cache_server.rs").is_none());
        assert!(conc_policy_for("README.md").is_none());
    }

    #[test]
    fn global_alloc_calls_on_the_hot_path_are_flagged() {
        let src = "\
fn grow(&mut self, payload: &[u8]) {
    let mut scratch = Vec::new();
    let staged = vec![0u8; payload.len()];
    let boxed = Box::new(staged);
    let copy = payload.to_vec();
}
";
        let f = analyze_source("crates/bptree/src/tree.rs", src, HOT_ALLOC_ONLY);
        assert_eq!(
            rules(&f),
            vec![
                (2, Rule::NoGlobalAllocHotPath),
                (3, Rule::NoGlobalAllocHotPath),
                (4, Rule::NoGlobalAllocHotPath),
                (5, Rule::NoGlobalAllocHotPath),
            ]
        );
    }

    #[test]
    fn inline_vec_and_with_capacity_are_not_global_allocs() {
        // `InlineVec::new` shares the `Vec::new` suffix but is the blessed
        // replacement; `Vec::with_capacity` is the cold-path pre-sizing
        // idiom. Neither may trip the probe.
        let src = "\
fn put(&mut self, key: u64) {
    let mut keys: InlineVec<u64, 32> = InlineVec::new();
    keys.push(key);
    let wbuf: Vec<u8> = Vec::with_capacity(4096);
}
";
        assert!(analyze_source("crates/bptree/src/inline.rs", src, HOT_ALLOC_ONLY).is_empty());
    }

    #[test]
    fn hot_alloc_waiver_and_tests_are_respected() {
        let src = "\
fn startup(&mut self) {
    self.conns = Vec::new(); // xtask: allow(no-global-alloc-in-hot-path) — one-time startup
}
#[cfg(test)]
mod tests {
    fn t() {
        let v = vec![0u8; 64];
        let w = v.to_vec();
        let _b = Box::new(w);
    }
}
";
        assert!(analyze_source("crates/core/src/slab.rs", src, HOT_ALLOC_ONLY).is_empty());
    }

    #[test]
    fn unbound_span_guards_are_flagged() {
        let src = "\
fn migrate(&mut self) {
    self.obs.span_follow(\"migrate_chunk\");
    let _ = self.obs.span_root(\"elastic_split\");
    let _span = self.obs.span_start(\"srv\", trace, parent);
    let guard = self.obs.span_start_at(\"srv_queue\", trace, parent, at);
    drop(guard);
}
";
        let f = analyze_source("crates/net/src/coordinator.rs", src, ALL);
        assert_eq!(
            rules(&f),
            vec![(2, Rule::SpanDiscipline), (3, Rule::SpanDiscipline)]
        );
    }

    #[test]
    fn tail_expression_span_guards_are_fine() {
        // Handing the guard to the caller (tail position, no `;`) and
        // expression uses inside a binding are both legitimate.
        let src = "\
fn root(&self) -> SpanGuard {
    self.obs.span_root(\"elastic_merge\")
}
fn wire(&self) -> Option<(SpanGuard, u64)> {
    let span = match (&self.obs, scope) {
        (Some(obs), Some((t, p))) => Some((obs.span_start(\"wire:get\", t, p), p)),
        _ => None,
    };
    span
}
";
        assert!(analyze_source("crates/net/src/client.rs", src, ALL).is_empty());
    }

    #[test]
    fn wrapped_span_bindings_are_not_statement_calls() {
        // rustfmt wraps long receivers; the continuation line starts with
        // `.` but the guard is still bound by the `let` two lines up.
        let src = "\
fn f(&self, c: &TraceContext, t_wake: u64) {
    let srv = shared
        .obs
        .span_start_at(\"srv\", c.trace_id, c.span_id, t_wake);
    drop(srv);
}
";
        assert!(analyze_source("crates/net/src/reactor.rs", src, ALL).is_empty());
    }

    #[test]
    fn span_discipline_waiver_and_tests_are_respected() {
        let src = "\
fn f(&self) {
    self.obs.span_follow(\"probe\"); // xtask: allow(span-discipline) — marker span
}
#[cfg(test)]
mod tests {
    fn t(&self) {
        self.obs.span_follow(\"probe\");
    }
}
";
        assert!(analyze_source("crates/net/src/coordinator.rs", src, ALL).is_empty());
    }
}
