//! Critical-path analysis over reconstructed span trees — the engine
//! behind `cargo xtask trace`.
//!
//! Input is the JSONL flight-recorder dump format (one [`ObsEvent`] per
//! line, as written by `loadgen --trace-out` or `xtask obs --smoke`),
//! possibly concatenated from several recorders. The analyzer rebuilds the
//! span forest, verifies well-formedness, and attributes each sampled
//! request's wall time to four exclusive phases:
//!
//! * **network** — root duration minus the server subtree (`req`/`wire:*`
//!   minus `srv`): wire transit, frame assembly, and response flush;
//! * **queue** — `srv_queue`: reactor wakeup to dispatch, which for
//!   pipelined bursts includes waiting behind earlier frames of the same
//!   sweep;
//! * **lock** — `lock_wait`: stripe/structural lock acquisition inside
//!   `ShardedNode`;
//! * **execute** — `srv_exec` minus its lock waits: the cache operation
//!   proper.
//!
//! Elasticity roots (`elastic_*`) are surfaced separately — they are
//! control-plane operations, not requests, and their cost model is the
//! migration volume, not a queue/lock split.

use std::fmt::Write as _;

use ecc_obs::{build_spans, verify_spans, ObsEvent, Span, SpanStats};

/// One sampled request's critical-path attribution.
#[derive(Debug, Clone)]
pub struct RequestBreakdown {
    /// Trace id (the root span's own id).
    pub trace: u64,
    /// Root span kind (`req` from the load generator, `wire:<op>` from a
    /// coordinator-side client).
    pub kind: String,
    /// Index of the root span in the analyzed forest.
    pub root: usize,
    /// End-to-end duration.
    pub total_us: u64,
    /// Time outside the server subtree.
    pub network_us: u64,
    /// Reactor queue wait.
    pub queue_us: u64,
    /// Lock acquisition wait.
    pub lock_us: u64,
    /// Execution time net of lock waits.
    pub execute_us: u64,
    /// Whether the tree is complete: a server subtree with both a queue
    /// and an execute phase under the root.
    pub complete: bool,
}

/// The full analysis of one trace dump.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// Well-formedness summary from [`verify_spans`].
    pub stats: SpanStats,
    /// The reconstructed forest (index-linked, see [`Span::children`]).
    pub spans: Vec<Span>,
    /// Per-request breakdowns, in input order.
    pub requests: Vec<RequestBreakdown>,
    /// Root spans of elasticity operations (indices into `spans`).
    pub elastic_roots: Vec<usize>,
}

/// Parse JSONL text into events; unparseable lines are returned as
/// `(line_number, text)` so the caller can warn without dying.
pub fn parse_jsonl(text: &str) -> (Vec<ObsEvent>, Vec<(usize, String)>) {
    let mut events = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match ObsEvent::from_json(line) {
            Some(ev) => events.push(ev),
            None => bad.push((i + 1, line.to_string())),
        }
    }
    (events, bad)
}

/// Sum the durations of every span of `kind` in the subtree under `root`
/// (the root itself included).
fn subtree_sum(spans: &[Span], root: usize, kind: &str) -> u64 {
    let mut sum = 0;
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if spans[i].kind == kind {
            sum += spans[i].duration_us();
        }
        stack.extend(spans[i].children.iter().copied());
    }
    sum
}

/// Whether the subtree under `root` contains a span of `kind`.
fn subtree_has(spans: &[Span], root: usize, kind: &str) -> bool {
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if spans[i].kind == kind {
            return true;
        }
        stack.extend(spans[i].children.iter().copied());
    }
    false
}

/// Rebuild the span forest from `events`, verify it, and compute the
/// per-request critical-path breakdowns. Events may come from several
/// recorders; they are stably ordered by timestamp first, which preserves
/// each recorder's start-before-end ordering for zero-duration spans.
pub fn analyze(events: &[ObsEvent]) -> Result<TraceAnalysis, String> {
    let mut events: Vec<ObsEvent> = events.to_vec();
    events.sort_by_key(ObsEvent::at_us);
    let stats = verify_spans(&events)?;
    let spans = build_spans(&events)?;
    let mut requests = Vec::new();
    let mut elastic_roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 {
            continue;
        }
        if s.kind.starts_with("elastic_") {
            elastic_roots.push(i);
            continue;
        }
        if s.kind != "req" && !s.kind.starts_with("wire:") {
            continue;
        }
        let total_us = s.duration_us();
        let srv_us = subtree_sum(&spans, i, "srv");
        let queue_us = subtree_sum(&spans, i, "srv_queue");
        let lock_us = subtree_sum(&spans, i, "lock_wait");
        let exec_gross = subtree_sum(&spans, i, "srv_exec");
        requests.push(RequestBreakdown {
            trace: s.trace,
            kind: s.kind.clone(),
            root: i,
            total_us,
            network_us: total_us.saturating_sub(srv_us),
            queue_us,
            lock_us,
            execute_us: exec_gross.saturating_sub(lock_us),
            complete: subtree_has(&spans, i, "srv_queue") && subtree_has(&spans, i, "srv_exec"),
        });
    }
    Ok(TraceAnalysis {
        stats,
        spans,
        requests,
        elastic_roots,
    })
}

impl TraceAnalysis {
    /// Fraction of request roots whose trees are complete (1.0 when there
    /// are no requests at all — nothing sampled means nothing lost).
    pub fn complete_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 1.0;
        }
        let complete = self.requests.iter().filter(|r| r.complete).count();
        complete as f64 / self.requests.len() as f64
    }

    /// The request at quantile `q` (by total duration), e.g. `0.99` for
    /// the p99 exemplar.
    pub fn exemplar(&self, q: f64) -> Option<&RequestBreakdown> {
        if self.requests.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..self.requests.len()).collect();
        order.sort_by_key(|&i| self.requests[i].total_us);
        let rank = ((order.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(&self.requests[order[rank]])
    }

    /// Indented flame summary of the subtree under span index `root`:
    /// every span with its duration and share of the root.
    pub fn flame(&self, root: usize) -> String {
        let mut out = String::new();
        let total = self.spans[root].duration_us().max(1);
        let mut stack = vec![(root, 0usize)];
        while let Some((i, depth)) = stack.pop() {
            let s = &self.spans[i];
            let _ = writeln!(
                out,
                "{:indent$}{} {}µs ({:.0}%) [node {}]",
                "",
                s.kind,
                s.duration_us(),
                100.0 * s.duration_us() as f64 / total as f64,
                s.node,
                indent = depth * 2
            );
            // Children pushed in reverse so the leftmost (earliest-linked)
            // child prints first.
            for &c in s.children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// CSV rendering of the per-request breakdowns (header + one row per
    /// request).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "trace_id,kind,total_us,network_us,queue_us,lock_us,execute_us,complete\n",
        );
        for r in &self.requests {
            let _ = writeln!(
                out,
                "{:#x},{},{},{},{},{},{},{}",
                r.trace,
                r.kind,
                r.total_us,
                r.network_us,
                r.queue_us,
                r.lock_us,
                r.execute_us,
                r.complete
            );
        }
        out
    }
}

/// `q`-th percentile of `values` (nearest-rank on a sorted copy).
pub fn percentile(values: &[u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let rank = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    v[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(at: u64, trace: u64, span: u64, parent: u64, kind: &str, node: u32) -> ObsEvent {
        ObsEvent::SpanStart {
            at_us: at,
            trace,
            span,
            parent,
            kind: kind.to_string(),
            node,
        }
    }

    fn end(at: u64, span: u64) -> ObsEvent {
        ObsEvent::SpanEnd { at_us: at, span }
    }

    /// One request tree: req [0,100] → srv [10,90] → queue [10,20],
    /// exec [20,90] → lock [25,30].
    fn one_request(base: u64, trace: u64) -> Vec<ObsEvent> {
        let id = |k: u64| trace * 100 + k;
        vec![
            start(base, trace, id(1), 0, "req", 9),
            start(base + 10, trace, id(2), id(1), "srv", 1),
            start(base + 10, trace, id(3), id(2), "srv_queue", 1),
            end(base + 20, id(3)),
            start(base + 20, trace, id(4), id(2), "srv_exec", 1),
            start(base + 25, trace, id(5), id(4), "lock_wait", 1),
            end(base + 30, id(5)),
            end(base + 90, id(4)),
            end(base + 90, id(2)),
            end(base + 100, id(1)),
        ]
    }

    #[test]
    fn breakdown_attributes_all_four_phases() {
        let evs = one_request(0, 1);
        let a = analyze(&evs).expect("well-formed");
        assert_eq!(a.requests.len(), 1);
        let r = &a.requests[0];
        assert_eq!(r.total_us, 100);
        assert_eq!(r.network_us, 20); // 100 − srv's 80
        assert_eq!(r.queue_us, 10);
        assert_eq!(r.lock_us, 5);
        assert_eq!(r.execute_us, 65); // exec 70 − lock 5
        assert!(r.complete);
        assert!((a.complete_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_trees_are_flagged_not_fatal() {
        // A req whose server half was never recorded (unsampled server,
        // or a node that died before dumping) — still well-formed spans,
        // just not a complete tree.
        let evs = vec![start(0, 5, 501, 0, "req", 9), end(40, 501)];
        let a = analyze(&evs).expect("well-formed");
        assert_eq!(a.requests.len(), 1);
        assert!(!a.requests[0].complete);
        assert_eq!(a.requests[0].network_us, 40);
        assert!(a.complete_fraction() < 1.0);
    }

    #[test]
    fn elastic_roots_are_separated_from_requests() {
        let mut evs = one_request(0, 1);
        evs.push(start(200, 7, 701, 0, "elastic_split", 0));
        evs.push(start(210, 7, 702, 701, "migrate_chunk", 0));
        evs.push(end(240, 702));
        evs.push(end(250, 701));
        let a = analyze(&evs).expect("well-formed");
        assert_eq!(a.requests.len(), 1);
        assert_eq!(a.elastic_roots.len(), 1);
        assert_eq!(a.spans[a.elastic_roots[0]].kind, "elastic_split");
    }

    #[test]
    fn exemplar_picks_by_total_duration() {
        let mut evs = Vec::new();
        // Trace 1 lasts 100µs, trace 2 is stretched to 200µs.
        evs.extend(one_request(0, 1));
        let mut slow = one_request(1000, 2);
        if let Some(ObsEvent::SpanEnd { at_us, .. }) = slow.last_mut() {
            *at_us += 100;
        }
        evs.extend(slow);
        let a = analyze(&evs).expect("well-formed");
        assert_eq!(a.exemplar(0.99).unwrap().trace, 2);
        assert_eq!(a.exemplar(0.0).unwrap().trace, 1);
        let flame = a.flame(a.exemplar(0.99).unwrap().root);
        assert!(flame.contains("req"), "{flame}");
        assert!(flame.contains("srv_exec"), "{flame}");
    }

    #[test]
    fn csv_has_header_and_one_row_per_request() {
        let a = analyze(&one_request(0, 3)).unwrap();
        let csv = a.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("trace_id,kind,total_us"));
        assert!(lines[1].contains(",req,100,20,10,5,65,true"));
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let evs = one_request(0, 4);
        let text: String = evs.iter().map(|e| format!("{}\n", e.to_json())).collect();
        let (parsed, bad) = parse_jsonl(&text);
        assert!(bad.is_empty());
        assert_eq!(parsed.len(), evs.len());
        assert!(analyze(&parsed).is_ok());
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let evs = vec![start(0, 1, 1, 0, "req", 0)];
        assert!(analyze(&evs).is_err(), "unended span must fail");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [30, 10, 20];
        assert_eq!(percentile(&v, 0.5), 20);
        assert_eq!(percentile(&v, 0.99), 30);
        let v: Vec<u64> = (1..=101).collect();
        assert_eq!(percentile(&v, 0.5), 51);
        assert_eq!(percentile(&v, 1.0), 101);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
