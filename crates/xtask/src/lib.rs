//! Source-level lint engine behind `cargo xtask lint`.
//!
//! The pass walks `crates/*/src`, strips comments and string literals with a
//! lightweight scanner, skips `#[cfg(test)]` modules, and enforces the
//! repo's correctness rules (see DESIGN.md, "Invariants & static analysis"):
//!
//! * **no-panic** — library code of `ecc-core`, `ecc-net`, `ecc-chash` and
//!   `ecc-cloudsim` must not call `.unwrap()` / `.expect(..)` or invoke
//!   `panic!` / `todo!` / `unimplemented!` / `dbg!`; fallible paths return
//!   `CacheError` / protocol errors instead. (`assert!` family stays legal:
//!   invariant auditors are supposed to assert.)
//! * **no-wallclock** — `Instant::now` / `SystemTime::now` are forbidden
//!   outside `crates/bench`, the load generator and `src/bin` entry points;
//!   simulated time must flow through `ecc_cloudsim::clock`.
//! * **deny-unsafe** — every crate root must carry `#![deny(unsafe_code)]`
//!   (or `forbid`).
//! * **must-use** — public result-bearing types (names ending in `Receipt`,
//!   `Report`, `Metrics`, `Stats`, `Billing`) must be `#[must_use]` so
//!   simulation outcomes cannot be silently dropped.
//! * **no-print** — `println!` / `eprintln!` are forbidden in library code
//!   (`crates/*/src`, binaries exempt); libraries return data and leave
//!   console output to the `src/bin` / `src/main.rs` entry points.
//! * **no-std-mutex** — `std::sync::Mutex` / `std::sync::RwLock` are
//!   forbidden in `ecc-core` and `ecc-net`: the data path standardizes on
//!   `parking_lot` (no poisoning, so lock acquisition can't force panic
//!   paths into panic-free crates) and on atomics for counters.
//! * **no-payload-copy** — `.to_vec()` / `Bytes::copy_from_slice` are
//!   forbidden in the data-path hot files (server, shard, node, record,
//!   lru): record payloads are refcounted `Bytes`; cloning there must be
//!   a refcount bump, never a memcpy. Client/protocol decode paths that
//!   legitimately materialize owned data are not in the hot set.
//!
//! A finding can be waived for one line with a trailing
//! `// xtask: allow(<rule>)` comment stating the reason.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod concurrency;
pub mod lexer;
pub mod trace;

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose library code must be panic-free.
const PANIC_FREE_CRATES: &[&str] = &["core", "net", "chash", "cloudsim", "obs"];

/// Crates exempt from the wall-clock rule wholesale (measurement harnesses;
/// `obs` owns the `TimeSource::Real` epoch so instrumented crates never
/// read the wall clock themselves).
const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench", "xtask", "obs"];

/// Files exempt from the wall-clock rule: they intentionally measure real
/// elapsed time (the live-cluster load generator).
const WALLCLOCK_EXEMPT_FILES: &[&str] = &["crates/net/src/loadgen.rs"];

/// Name suffixes of result-bearing types that must be `#[must_use]`.
const MUST_USE_SUFFIXES: &[&str] = &["Receipt", "Report", "Metrics", "Stats", "Billing"];

/// Crates whose library code must not use `std::sync` locks.
const STD_MUTEX_FREE_CRATES: &[&str] = &["core", "net"];

/// Data-path hot files where payload memcpys are forbidden: every payload
/// hand-off here must be a refcounted `Bytes` clone.
const HOT_PATH_FILES: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/node.rs",
    "crates/core/src/record.rs",
    "crates/core/src/lru.rs",
];

/// One lint rule; `Display` gives its diagnostic slug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panicking call in library code that must return typed errors.
    NoPanic,
    /// Wall-clock read outside the measurement harness.
    NoWallClock,
    /// Crate root missing `#![deny(unsafe_code)]`.
    DenyUnsafe,
    /// Result-bearing public type missing `#[must_use]`.
    MustUse,
    /// `println!` / `eprintln!` in library code (diagnostics belong to
    /// binaries or structured reports, not stdout side effects).
    NoPrint,
    /// `std::sync::Mutex` / `std::sync::RwLock` in the data-path crates
    /// (poisoning forces panic paths; the repo standardizes on
    /// `parking_lot`).
    NoStdMutex,
    /// Payload memcpy (`.to_vec()` / `Bytes::copy_from_slice`) in a
    /// data-path hot file where clones must be refcount bumps.
    NoPayloadCopy,
    /// Lock-hierarchy inversion: `structural` acquired while a stripe (or
    /// another structural) guard is live. See DESIGN.md §13.
    LockOrder,
    /// Stripe locks acquired out of ascending-index order (or inside a
    /// descending iteration over the stripe array).
    StripeOrder,
    /// `Ordering::SeqCst` without a `// seqcst:` justification comment —
    /// downgrade to `Acquire`/`Release`/`AcqRel` or justify the fence.
    SeqCstJustify,
    /// The same atomic field mixed `Relaxed` with synchronizing orderings
    /// — one side of the pair is lying about what it synchronizes.
    MixedOrdering,
    /// A `MutexGuard`/`RwLock` guard held live across frame or socket
    /// I/O on a hot-path file (the blocking-under-lock reactor killer).
    GuardAcrossIo,
    /// Blocking I/O primitive (`read_exact`, `write_all`, blocking frame
    /// helpers, channel `recv`, mutex `lock`) inside a reactor file —
    /// one blocked call stalls every connection that reactor owns.
    BlockingIoInReactor,
    /// A span-guard constructor (`span_start` / `span_follow` /
    /// `span_root` …) whose RAII guard is dropped on the spot — the span
    /// ends the instant it starts, silently recording zero duration.
    SpanDiscipline,
    /// Global-allocator call (`Vec::new` / `vec!` / `Box::new` /
    /// `.to_vec`) in a slab-era hot-path file — steady-state GET/PUT must
    /// run on inline node arrays and slab slots, never malloc.
    NoGlobalAllocHotPath,
}

impl Rule {
    /// The slug accepted by `// xtask: allow(<slug>)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoWallClock => "no-wallclock",
            Rule::DenyUnsafe => "deny-unsafe",
            Rule::MustUse => "must-use",
            Rule::NoPrint => "no-print",
            Rule::NoStdMutex => "no-std-mutex",
            Rule::NoPayloadCopy => "no-payload-copy",
            Rule::LockOrder => "lock-order",
            Rule::StripeOrder => "stripe-order",
            Rule::SeqCstJustify => "seqcst-justify",
            Rule::MixedOrdering => "mixed-ordering",
            Rule::GuardAcrossIo => "guard-across-io",
            Rule::BlockingIoInReactor => "no-blocking-io-in-reactor",
            Rule::SpanDiscipline => "span-discipline",
            Rule::NoGlobalAllocHotPath => "no-global-alloc-in-hot-path",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One diagnostic: file, 1-based line, rule and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Enforce the no-panic rule.
    pub panics: bool,
    /// Enforce the no-wallclock rule.
    pub wallclock: bool,
    /// Enforce `#[must_use]` coverage.
    pub must_use: bool,
    /// Require `#![deny(unsafe_code)]` (crate roots only).
    pub deny_unsafe: bool,
    /// Forbid `println!` / `eprintln!` (library code; binaries exempt).
    pub prints: bool,
    /// Forbid `std::sync::Mutex` / `std::sync::RwLock` (data-path crates).
    pub std_mutex: bool,
    /// Forbid payload memcpys (data-path hot files).
    pub payload_copy: bool,
}

/// Decide the policy for a workspace-relative path such as
/// `crates/core/src/elastic.rs`. Returns `None` for files the pass ignores.
pub fn policy_for(rel_path: &str) -> Option<Policy> {
    let rel = rel_path.replace('\\', "/");
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if parts.next() != Some("src") {
        return None;
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
    let is_lib_root = rel.ends_with("/src/lib.rs");
    let wallclock_exempt = WALLCLOCK_EXEMPT_CRATES.contains(&krate)
        || WALLCLOCK_EXEMPT_FILES.contains(&rel.as_str())
        || is_bin;
    let panic_free = PANIC_FREE_CRATES.contains(&krate) && !is_bin;
    Some(Policy {
        panics: panic_free,
        wallclock: !wallclock_exempt,
        must_use: PANIC_FREE_CRATES.contains(&krate),
        deny_unsafe: is_lib_root,
        prints: !is_bin,
        std_mutex: STD_MUTEX_FREE_CRATES.contains(&krate) && !is_bin,
        payload_copy: HOT_PATH_FILES.contains(&rel.as_str()),
    })
}

/// Replace comments and string/char literals with spaces, preserving line
/// structure, so substring detectors cannot fire inside prose or literals.
pub fn strip_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut state = State::Normal;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' | 'b'
                    if i > 0
                        && bytes
                            .get(i - 1)
                            .is_some_and(|p| p.is_alphanumeric() || *p == '_') =>
                {
                    // Mid-identifier `r`/`b` (`bar`, `0b1010`) never opens
                    // a raw or byte string.
                    out.push(c);
                }
                'r' | 'b' => {
                    // Possible raw string r"..", r#".."#, br".." etc.
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (c == 'r' || bytes.get(i + 1) == Some(&'r')) {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with '
                    // within a few chars ('a', '\n', '\u{..}').
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        state = State::Char;
                        out.push(' ');
                    } else {
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        // A `\<newline>` string continuation must keep its
                        // newline, or every later line number shifts.
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Normal;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    // Check for closing hashes.
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes as usize;
                        state = State::Normal;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Char => {
                if c == '\\' && next.is_some() {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Normal;
                }
                out.push(' ');
            }
        }
        i += 1;
    }
    out
}

/// True when `hay[pos..]` starts a macro invocation of `name` (i.e. is
/// `name!` not preceded by an identifier character).
fn is_macro_call(hay: &str, pos: usize, name: &str) -> bool {
    if pos > 0 {
        if let Some(prev) = hay[..pos].chars().next_back() {
            if prev.is_alphanumeric() || prev == '_' {
                return false;
            }
        }
    }
    hay[pos + name.len()..].starts_with('!')
}

fn find_macro(line: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(off) = line[start..].find(name) {
        let pos = start + off;
        if is_macro_call(line, pos, name) {
            return true;
        }
        start = pos + name.len();
    }
    false
}

/// Per-line view of one source file: the line's comment/string-stripped
/// text (via the token-level lexer), whether it falls inside a
/// `#[cfg(test)] mod`, and the brace depth at the start of the line.
/// Shared by the substring rules and the concurrency passes.
#[derive(Debug)]
pub struct LineInfo {
    /// 0-based index into the stripped line list.
    pub idx: usize,
    /// True when this line is inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Brace depth at the *start* of the line.
    pub depth: i64,
}

/// Compute [`LineInfo`] for every stripped line: `#[cfg(test)] mod`
/// regions tracked via brace depth, exactly as the lint rules skip them.
pub fn line_infos(stripped_lines: &[&str]) -> Vec<LineInfo> {
    let mut infos = Vec::with_capacity(stripped_lines.len());
    let mut depth: i64 = 0;
    let mut cfg_test_pending = false;
    let mut skip_above_depth: Option<i64> = None;

    for (idx, stripped_line) in stripped_lines.iter().enumerate() {
        let depth_at_start = depth;
        if skip_above_depth.is_none() {
            // `#[cfg(test)]` and compound forms like
            // `#[cfg(all(test, debug_assertions))]` both gate test-only
            // modules.
            if stripped_line.contains("#[cfg(test)]") || stripped_line.contains("#[cfg(all(test") {
                cfg_test_pending = true;
            } else if cfg_test_pending {
                let t = stripped_line.trim_start();
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    skip_above_depth = Some(depth);
                    cfg_test_pending = false;
                } else if !t.is_empty() && !t.starts_with("#[") {
                    // The cfg(test) applied to a non-module item (fn, use…);
                    // stay conservative and keep linting.
                    cfg_test_pending = false;
                }
            }
        }
        let in_test = skip_above_depth.is_some();

        for c in stripped_line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(d) = skip_above_depth {
                        if depth <= d {
                            skip_above_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }

        infos.push(LineInfo {
            idx,
            in_test,
            depth: depth_at_start,
        });
    }
    infos
}

/// Scan one file's source text under `policy`; `rel_path` is used for
/// diagnostics and must be workspace-relative.
pub fn scan_source(rel_path: &str, src: &str, policy: Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = lexer::strip_via_lexer(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();

    if policy.deny_unsafe
        && !src.contains("#![deny(unsafe_code)]")
        && !src.contains("#![forbid(unsafe_code)]")
    {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: Rule::DenyUnsafe,
            message: "crate root must carry `#![deny(unsafe_code)]`".into(),
        });
    }

    for info in line_infos(&stripped_lines) {
        let idx = info.idx;
        let stripped_line = stripped_lines[idx];
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");
        let line_no = idx + 1;

        if info.in_test {
            continue;
        }

        let allowed = |rule: Rule| raw_line.contains(&format!("xtask: allow({})", rule.slug()));

        if policy.panics && !allowed(Rule::NoPanic) {
            if stripped_line.contains(".unwrap()") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::NoPanic,
                    message: "`.unwrap()` in library code — return a typed error (`CacheError`, \
                              `RingError`, protocol status) instead"
                        .into(),
                });
            }
            if stripped_line.contains(".expect(") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::NoPanic,
                    message: "`.expect(..)` in library code — return a typed error instead".into(),
                });
            }
            for mac in ["panic", "todo", "unimplemented", "dbg"] {
                if find_macro(stripped_line, mac) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::NoPanic,
                        message: format!("`{mac}!` in library code — return a typed error instead"),
                    });
                }
            }
        }

        if policy.wallclock && !allowed(Rule::NoWallClock) {
            for pat in ["Instant::now", "SystemTime::now"] {
                if stripped_line.contains(pat) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::NoWallClock,
                        message: format!(
                            "`{pat}` outside the measurement harness — simulated time must \
                             go through `ecc_cloudsim::clock::SimClock`"
                        ),
                    });
                }
            }
        }

        if policy.prints && !allowed(Rule::NoPrint) {
            for mac in ["println", "eprintln"] {
                if find_macro(stripped_line, mac) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::NoPrint,
                        message: format!(
                            "`{mac}!` in library code — return data to the caller or route \
                             diagnostics through a binary entry point"
                        ),
                    });
                }
            }
        }

        if policy.std_mutex && !allowed(Rule::NoStdMutex) {
            for pat in ["std::sync::Mutex", "std::sync::RwLock"] {
                if stripped_line.contains(pat) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::NoStdMutex,
                        message: format!(
                            "`{pat}` in a data-path crate — use `parking_lot` (no lock \
                             poisoning, so acquisition can't force a panic path) or atomics"
                        ),
                    });
                }
            }
        }

        if policy.payload_copy && !allowed(Rule::NoPayloadCopy) {
            for pat in [".to_vec()", "Bytes::copy_from_slice"] {
                if stripped_line.contains(pat) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::NoPayloadCopy,
                        message: format!(
                            "`{pat}` in a data-path hot file — payloads are refcounted \
                             `Bytes`; clone the handle (`Record::bytes()`) instead of \
                             copying the bytes"
                        ),
                    });
                }
            }
        }

        if policy.must_use && !allowed(Rule::MustUse) {
            if let Some(name) = pub_type_name(stripped_line) {
                if MUST_USE_SUFFIXES.iter().any(|s| name.ends_with(s))
                    && !attr_block_has_must_use(&raw_lines, idx)
                {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::MustUse,
                        message: format!(
                            "result-bearing type `{name}` must be `#[must_use]` so simulation \
                             outcomes cannot be silently dropped"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Extract `Name` from a `pub struct Name` / `pub enum Name` declaration line.
fn pub_type_name(stripped_line: &str) -> Option<&str> {
    let t = stripped_line.trim_start();
    let rest = t
        .strip_prefix("pub struct ")
        .or_else(|| t.strip_prefix("pub enum "))?;
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Walk the contiguous attribute/doc block above `decl_idx` looking for
/// `#[must_use`.
fn attr_block_has_must_use(raw_lines: &[&str], decl_idx: usize) -> bool {
    let mut i = decl_idx;
    while i > 0 {
        i -= 1;
        let t = raw_lines[i].trim_start();
        if t.starts_with("#[") || t.starts_with("///") || t.ends_with("]") && t.starts_with("#") {
            if t.contains("#[must_use") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full lint pass over a workspace root. Returns all findings;
/// `files_scanned` reports coverage for the summary line.
pub fn run_lint(workspace_root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let crates_dir = workspace_root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(policy) = policy_for(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(path)?;
        scanned += 1;
        findings.extend(scan_source(&rel, &src, policy));
    }
    Ok((findings, scanned))
}

/// Run the concurrency-soundness passes (lock-order, stripe-order,
/// seqcst-justify, mixed-ordering, guard-across-io,
/// no-blocking-io-in-reactor, no-global-alloc-in-hot-path) over a
/// workspace root.
pub fn run_concurrency(workspace_root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let crates_dir = workspace_root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(policy) = concurrency::conc_policy_for(&rel) else {
            continue;
        };
        if !(policy.lock_order
            || policy.atomics
            || policy.guard_io
            || policy.reactor_io
            || policy.hot_alloc)
        {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        scanned += 1;
        findings.extend(concurrency::analyze_source(&rel, &src, policy));
    }
    Ok((findings, scanned))
}

/// `cargo xtask analyze`: the style lint plus the concurrency passes in
/// one sweep. Returns combined findings sorted by (file, line) and the
/// number of files scanned by the wider of the two passes.
pub fn run_analyze(workspace_root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let (mut findings, lint_scanned) = run_lint(workspace_root)?;
    let (conc, _conc_scanned) = run_concurrency(workspace_root)?;
    findings.extend(conc);
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok((findings, lint_scanned))
}

/// Serialize findings as a stable JSON array (no serde in this crate):
/// `[{"file":..,"line":..,"rule":..,"message":..}, ...]`.
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.rule.slug(),
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB_POLICY: Policy = Policy {
        panics: true,
        wallclock: true,
        must_use: true,
        deny_unsafe: false,
        prints: true,
        std_mutex: false,
        payload_copy: false,
    };

    #[test]
    fn flags_unwrap_with_file_and_line() {
        let src = "#![deny(unsafe_code)]\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = scan_source("crates/core/src/x.rs", src, LIB_POLICY);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[0].rule, Rule::NoPanic);
        assert_eq!(f[0].file, "crates/core/src/x.rs");
    }

    #[test]
    fn flags_expect_panic_todo_dbg() {
        let src = "fn f() {\n    let _ = o.expect(\"boom\");\n    panic!(\"x\");\n    todo!();\n    dbg!(1);\n}\n";
        let f = scan_source("f.rs", src, LIB_POLICY);
        let rules: Vec<usize> = f.iter().map(|x| x.line).collect();
        assert_eq!(rules, vec![2, 3, 4, 5]);
        assert!(f.iter().all(|x| x.rule == Rule::NoPanic));
    }

    #[test]
    fn asserts_are_not_panics() {
        let src =
            "fn f() {\n    assert!(true);\n    assert_eq!(1, 1);\n    debug_assert!(cond());\n}\n";
        assert!(scan_source("f.rs", src, LIB_POLICY).is_empty());
    }

    #[test]
    fn comments_strings_and_doctests_are_exempt() {
        let src = "//! docs: call `.unwrap()` and panic!\n\
                   /// ```\n/// x.unwrap();\n/// ```\n\
                   fn f() {\n    let s = \".unwrap() panic! Instant::now\";\n\
                   /* block .unwrap() */\n    let _ = s;\n}\n";
        assert!(scan_source("f.rs", src, LIB_POLICY).is_empty());
    }

    #[test]
    fn raw_strings_are_exempt() {
        let src = "fn f() -> &'static str {\n    r#\"contains .unwrap() and panic!\"#\n}\n";
        assert!(scan_source("f.rs", src, LIB_POLICY).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn lib_fn() -> u32 { 1 }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"in tests it's fine\");\n    }\n}\n";
        assert!(scan_source("f.rs", src, LIB_POLICY).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = scan_source("f.rs", src, LIB_POLICY);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn prints_are_flagged_in_lib_code_only() {
        let src = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n    print!(\"ok\");\n}\n";
        let f = scan_source("crates/bench/src/lib.rs", src, LIB_POLICY);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::NoPrint));
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        // A comment mentioning println! is not a finding; a waiver works.
        let waived =
            "fn f() {\n    // println! is documented here\n    println!(\"x\"); // xtask: allow(no-print) — CLI shim\n}\n";
        assert!(scan_source("f.rs", waived, LIB_POLICY).is_empty());
        // Binaries keep their stdout.
        let bin = policy_for("crates/net/src/bin/cache_server.rs").unwrap();
        assert!(!bin.prints);
        assert!(scan_source("crates/net/src/bin/cache_server.rs", src, bin).is_empty());
    }

    #[test]
    fn wallclock_is_flagged() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let s = std::time::SystemTime::now();\n}\n";
        let f = scan_source("f.rs", src, LIB_POLICY);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::NoWallClock));
    }

    #[test]
    fn allow_comment_waives_one_line() {
        let src = "fn f() {\n    x.unwrap(); // xtask: allow(no-panic) — infallible by construction\n    y.unwrap()\n}\n";
        let f = scan_source("f.rs", src, LIB_POLICY);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn must_use_suffix_types_need_attribute() {
        let bad = "pub struct LoadReport {\n    pub n: u64,\n}\n";
        let good = "#[must_use]\npub struct LoadReport {\n    pub n: u64,\n}\n";
        let doc_between = "#[must_use = \"reports must be consumed\"]\n/// Docs.\n#[derive(Debug)]\npub struct BillingStats;\n";
        assert_eq!(scan_source("f.rs", bad, LIB_POLICY).len(), 1);
        assert!(scan_source("f.rs", good, LIB_POLICY).is_empty());
        assert!(scan_source("f.rs", doc_between, LIB_POLICY).is_empty());
    }

    #[test]
    fn lib_roots_require_deny_unsafe() {
        let policy = Policy {
            deny_unsafe: true,
            ..LIB_POLICY
        };
        let f = scan_source("crates/core/src/lib.rs", "//! lib\n", policy);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::DenyUnsafe);
        let ok = scan_source("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n", policy);
        assert!(ok.is_empty());
    }

    #[test]
    fn std_sync_locks_are_flagged_in_data_path_crates() {
        let policy = Policy {
            std_mutex: true,
            ..LIB_POLICY
        };
        let src = "use std::sync::Mutex;\nfn f() {\n    let _l: std::sync::RwLock<()> = Default::default();\n}\n";
        let f = scan_source("crates/net/src/x.rs", src, policy);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::NoStdMutex));
        // Atomics and parking_lot stay legal.
        let ok = "use std::sync::atomic::AtomicU64;\nuse parking_lot::RwLock;\n";
        assert!(scan_source("crates/net/src/x.rs", ok, policy).is_empty());
        // A waiver works.
        let waived = "use std::sync::Mutex; // xtask: allow(no-std-mutex) — FFI boundary\n";
        assert!(scan_source("crates/net/src/x.rs", waived, policy).is_empty());
    }

    #[test]
    fn payload_copies_are_flagged_in_hot_files() {
        let policy = Policy {
            payload_copy: true,
            ..LIB_POLICY
        };
        let src = "fn f(r: &Record) -> Vec<u8> {\n    let b = Bytes::copy_from_slice(r.as_slice());\n    r.as_slice().to_vec()\n}\n";
        let f = scan_source("crates/net/src/server.rs", src, policy);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::NoPayloadCopy));
        // The refcount-bump path is legal; test modules are exempt.
        let ok = "fn f(r: &Record) -> Bytes { r.bytes() }\n\
                  #[cfg(test)]\nmod tests {\n    fn t() { let _ = b\"x\".to_vec(); }\n}\n";
        assert!(scan_source("crates/net/src/server.rs", ok, policy).is_empty());
    }

    #[test]
    fn policies_match_the_repo_layout() {
        // Library code of the four protected crates: full checks.
        let p = policy_for("crates/core/src/elastic.rs").unwrap();
        assert!(p.panics && p.wallclock && p.must_use && !p.deny_unsafe);
        assert!(policy_for("crates/chash/src/ring.rs").unwrap().panics);
        assert!(policy_for("crates/net/src/server.rs").unwrap().panics);
        // Crate roots additionally require deny(unsafe_code).
        assert!(policy_for("crates/core/src/lib.rs").unwrap().deny_unsafe);
        // bptree etc.: no panic rule, but wall-clock still applies.
        let p = policy_for("crates/bptree/src/tree.rs").unwrap();
        assert!(!p.panics && p.wallclock);
        // The load generator measures real time on purpose.
        assert!(!policy_for("crates/net/src/loadgen.rs").unwrap().wallclock);
        assert!(policy_for("crates/net/src/loadgen.rs").unwrap().panics);
        // obs is the observability harness: panic-free, owns the wall clock.
        let p = policy_for("crates/obs/src/registry.rs").unwrap();
        assert!(p.panics && !p.wallclock && p.prints);
        // Library code everywhere is print-free; binaries are exempt.
        assert!(policy_for("crates/bench/src/lib.rs").unwrap().prints);
        assert!(!policy_for("crates/bench/src/bin/fig_a1.rs").unwrap().prints);
        // Binaries may touch real time and unwrap CLI setup.
        let p = policy_for("crates/net/src/bin/cache_server.rs").unwrap();
        assert!(!p.panics && !p.wallclock);
        // bench is a measurement harness.
        assert!(
            !policy_for("crates/bench/src/bin/fig_a1.rs")
                .unwrap()
                .wallclock
        );
        // Data-path crates ban std::sync locks; measurement crates don't.
        assert!(policy_for("crates/core/src/shard.rs").unwrap().std_mutex);
        assert!(policy_for("crates/net/src/server.rs").unwrap().std_mutex);
        assert!(!policy_for("crates/bench/src/perf.rs").unwrap().std_mutex);
        assert!(
            !policy_for("crates/net/src/bin/cache_server.rs")
                .unwrap()
                .std_mutex
        );
        // Payload copies are banned exactly in the hot files.
        assert!(policy_for("crates/net/src/server.rs").unwrap().payload_copy);
        assert!(policy_for("crates/core/src/shard.rs").unwrap().payload_copy);
        assert!(policy_for("crates/core/src/lru.rs").unwrap().payload_copy);
        assert!(
            !policy_for("crates/net/src/protocol.rs")
                .unwrap()
                .payload_copy,
            "client-side decode legitimately materializes owned data"
        );
        assert!(!policy_for("crates/net/src/client.rs").unwrap().payload_copy);
        // Non-source files are ignored.
        assert!(policy_for("crates/core/Cargo.toml").is_none());
        assert!(policy_for("README.md").is_none());
    }

    #[test]
    fn end_to_end_on_a_temp_tree_exits_dirty() {
        let root = std::env::temp_dir().join(format!("xtask-lint-test-{}", std::process::id()));
        let src_dir = root.join("crates/core/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "#![deny(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )
        .unwrap();
        let (findings, scanned) = run_lint(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(scanned, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/core/src/lib.rs");
        assert_eq!(findings[0].line, 2);
    }
}
