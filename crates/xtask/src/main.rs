//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//! * `lint` — run the repo's static-analysis pass over `crates/*/src`
//!   (see [`xtask::run_lint`]); prints `file:line: [rule] message`
//!   diagnostics and exits nonzero when violations exist.
//! * `analyze` — the lint pass plus the concurrency-soundness passes
//!   (lock-order, stripe-order, seqcst-justify, mixed-ordering,
//!   guard-across-io; see [`xtask::run_concurrency`]); findings are also
//!   written as JSON to `target/analyze/findings.json`.
//! * `interleave [--smoke]` — the bounded interleaving explorer over the
//!   `ShardedNode` admission/ops models (`ecc_simtest::interleave`);
//!   unexpected failing schedules are shrunk and written under
//!   `target/interleave/`. The deliberately broken `CheckThenAdd` model
//!   must fail — an all-green run of it fails the command.
//! * `simtest [--seeds N] [--live-every K]` — run the deterministic
//!   cluster-simulation battery (`crates/simtest`) over seeds `0..N`;
//!   failures are shrunk, printed as replayable SIMSEEDs, and written
//!   under `target/simtest/`.
//! * `simtest --replay '<SIMSEED>'` — re-run one schedule exactly.
//! * `bench [--smoke] [--json [PATH]]` — run the performance harness
//!   (`crates/bench/src/perf.rs`) and optionally write
//!   `results/bench.json`, validated against the documented schema.
//! * `bench --gate [--baseline PATH]` — compare the fresh run against the
//!   committed baseline (`results/bench_baseline.json`, or
//!   `results/bench_baseline_smoke.json` under `--smoke` — profiles never
//!   cross-compare) and fail (nonzero exit, per bench delta table,
//!   mirrored to `target/bench/gate_report.txt`) when an allowlisted
//!   hot-path bench loses >15% ops/sec or inflates p99 by >15% (see
//!   `ecc_bench::gate`). A suspected regression is confirmed by rerunning
//!   the suite (best-of merge, up to 3 runs) before failing. `--bless`
//!   rewrites the baseline from the median of 3 fresh runs instead of
//!   comparing.
//! * `scenario --list | --name NAME | --all [--steps N] [--seed N]` — run
//!   zoo scenarios through the cloudsim elastic cache, verifying each
//!   stream replays byte-identically through a trace round-trip; `--all`
//!   writes `results/scenarios.csv`.
//! * `obs <trace.jsonl>` — pretty-print a flight-recorder trace.
//! * `obs --smoke` — run a live multi-node cluster through a
//!   grow/load/shrink cycle and write `target/obs/trace.jsonl` plus
//!   `target/obs/exposition.txt`, failing unless the trace carries at
//!   least one split, merge and eviction event.
//! * `trace <TRACE.jsonl>... [--csv PATH]` — reconstruct span trees from
//!   one or more JSONL dumps (merged stably by timestamp), verify
//!   well-formedness, print the per-request critical-path breakdown
//!   (network / queue / lock / execute) with a p99-exemplar flame summary,
//!   and write `results/trace_breakdown.csv`.
//! * `trace --smoke` — end-to-end tracing smoke: grow a live cluster,
//!   drive sampled pipelined load through it, dump the merged trace to
//!   `target/obs/trace.jsonl`, analyze it, and fail unless ≥99% of
//!   sampled requests reconstruct into complete span trees.

#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ecc_bench::perf::{run_benches, speedup, validate_json, write_json, BenchOptions};
use ecc_simtest::{check_seed, run_schedule, QuietPanics, Schedule, SeedOutcome};

const USAGE: &str = "usage: cargo xtask <lint | analyze | interleave [--smoke] | simtest \
     [--seeds N] [--live-every K] [--replay SIMSEED] | bench [--smoke] [--json [PATH]] \
     [--check-envelope] [--gate [--baseline PATH] | --bless] | \
     scenario <--list | --name NAME | --all> [--steps N] [--seed N] | \
     obs <TRACE.jsonl | --smoke> | trace <TRACE.jsonl... [--csv PATH] | --smoke>>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze(),
        Some("interleave") => interleave(&args[1..]),
        Some("simtest") => simtest(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("scenario") => scenario(&args[1..]),
        Some("obs") => obs(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// xtask lives at `<root>/crates/xtask`, so the workspace root is two up.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
}

fn lint() -> ExitCode {
    match xtask::run_lint(workspace_root()) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: {scanned} files scanned, clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "xtask lint: {} violation(s) across {scanned} scanned files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask analyze` — the lint rules plus the concurrency passes,
/// with findings mirrored to `target/analyze/findings.json` for CI.
fn analyze() -> ExitCode {
    let root = workspace_root();
    match xtask::run_analyze(root) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            let out_dir = root.join("target").join("analyze");
            let json = xtask::findings_to_json(&findings);
            if std::fs::create_dir_all(&out_dir)
                .and_then(|()| std::fs::write(out_dir.join("findings.json"), json))
                .is_err()
            {
                eprintln!("xtask analyze: warning: could not write findings.json");
            }
            if findings.is_empty() {
                println!("xtask analyze: {scanned} files scanned, clean (lint + concurrency)");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "xtask analyze: {} finding(s) across {scanned} scanned files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask analyze: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask interleave [--smoke]` — run the bounded interleaving
/// explorer suite; write unexpected failing schedules to
/// `target/interleave/` for artifact upload.
fn interleave(args: &[String]) -> ExitCode {
    let mut smoke = false;
    for arg in args {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("xtask interleave: unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let profile = if smoke { "smoke" } else { "full" };
    println!("interleave: exploring ShardedNode models ({profile} profile)…");
    let reports = ecc_simtest::run_interleave(smoke);
    let out_dir = workspace_root().join("target").join("interleave");
    let mut bad = 0usize;
    for r in &reports {
        let expected_to_fail = ecc_simtest::is_seeded_bug(r);
        let status = match (r.failures.is_empty(), expected_to_fail) {
            (true, false) => {
                if r.truncated {
                    "PASS (truncated — not a proof)"
                } else if r.preemption_bound.is_some() {
                    "PASS (within preemption bound)"
                } else {
                    "PASS (exhaustive)"
                }
            }
            (false, true) => "CAUGHT (seeded bug, as required)",
            (true, true) => {
                bad += 1;
                "BROKEN EXPLORER: seeded bug not caught"
            }
            (false, false) => {
                bad += 1;
                "FAIL"
            }
        };
        println!(
            "interleave: {:<44} {:>8} schedule(s)  {status}",
            r.model, r.schedules
        );
        if !r.failures.is_empty() && !expected_to_fail {
            for f in &r.failures {
                eprintln!("  reason  : {}", f.reason);
                eprintln!("  schedule: {:?}", f.choices);
                eprintln!("  shrunk  : {:?}", f.shrunk);
            }
            if let Err(e) = write_interleave_failures(&out_dir, r) {
                eprintln!("  (could not write failure file: {e})");
            }
        }
    }
    if bad == 0 {
        println!("interleave: all models behaved as specified");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "interleave: {bad} model(s) misbehaved; failing schedules in {}",
            out_dir.display()
        );
        ExitCode::FAILURE
    }
}

/// Persist one report's failing schedules for CI artifact upload.
fn write_interleave_failures(
    dir: &Path,
    report: &ecc_simtest::ExploreReport,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let slug: String = report
        .model
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("{slug}.txt"));
    let mut body = format!(
        "model     : {}\nschedules : {}\ntruncated : {}\n\n",
        report.model, report.schedules, report.truncated
    );
    for f in &report.failures {
        body.push_str(&format!(
            "reason    : {}\nschedule  : {:?}\nshrunk    : {:?}\n\n",
            f.reason, f.choices, f.shrunk
        ));
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

fn bench(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut json: Option<PathBuf> = None;
    let mut check_envelope = false;
    let mut gate = false;
    let mut bless = false;
    let mut baseline: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check-envelope" => check_envelope = true,
            "--gate" => gate = true,
            "--bless" => bless = true,
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask bench: --baseline takes a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => {
                json = Some(match it.peek() {
                    Some(p) if !p.starts_with("--") => {
                        PathBuf::from(it.next().unwrap_or(&String::new()))
                    }
                    _ => workspace_root().join("results").join("bench.json"),
                });
            }
            other => {
                eprintln!("xtask bench: unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Baselines are per profile: smoke runs far fewer iterations, so its
    // throughput sits systematically below full profile (warmup is a
    // larger fraction of the run) — comparing across profiles would read
    // as a permanent regression. Each profile gates against its own bless.
    let baseline_path = baseline.unwrap_or_else(|| {
        workspace_root().join("results").join(if smoke {
            "bench_baseline_smoke.json"
        } else {
            "bench_baseline.json"
        })
    });

    let profile = if smoke { "smoke" } else { "full" };
    println!("bench: running {profile} profile…");
    let results = match run_benches(BenchOptions { smoke }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<28} {:>12} {:>14} {:>12} {:>12}",
        "bench", "ops", "ops/sec", "p50_ns", "p99_ns"
    );
    for r in &results {
        println!(
            "{:<28} {:>12} {:>14.1} {:>12} {:>12}",
            r.name, r.ops, r.ops_per_sec, r.p50_ns, r.p99_ns
        );
    }
    for (label, fast, slow) in [
        (
            "window expiry (incremental vs rescore)",
            "window_expiry_incremental",
            "window_expiry_rescore",
        ),
        (
            "wire eviction (batched vs sequential)",
            "wire_evict_batched",
            "wire_evict_sequential",
        ),
        (
            "node GET @1 worker (sharded vs mutex)",
            "node_get_sharded_w1",
            "node_get_mutex_w1",
        ),
        (
            "node GET @4 workers (sharded vs mutex)",
            "node_get_sharded_w4",
            "node_get_mutex_w4",
        ),
        (
            "node GET @8 workers (sharded vs mutex)",
            "node_get_sharded_w8",
            "node_get_mutex_w8",
        ),
    ] {
        if let Some(s) = speedup(&results, fast, slow) {
            println!("speedup: {label}: {s:.1}x");
        }
    }
    // Steady-state allocation contract (ISSUE 10): once the working set
    // is resident, PUT/GET churn recycles slab slots and must never enter
    // the global allocator. Enforced in every profile so the CI smoke run
    // catches a reintroduced per-op malloc.
    if let Some((allocs, ops)) = ecc_bench::perf::steady_state_allocs() {
        println!("steady-state churn: {allocs} allocator calls across {ops} ops");
        if allocs != 0 {
            eprintln!(
                "xtask bench: steady-state churn entered the global allocator {allocs} \
                 times across {ops} ops — the slab-arena contract is exactly zero"
            );
            return ExitCode::FAILURE;
        }
    }
    let classes = ecc_bench::perf::steady_state_slab_stats();
    if !classes.is_empty() {
        match write_slab_occupancy(&classes) {
            Ok(path) => println!("bench: wrote {}", path.display()),
            Err(e) => {
                eprintln!("xtask bench: could not write slab occupancy csv: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json {
        if let Err(e) = write_json(&path, &results) {
            eprintln!("xtask bench: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        // Validate what actually landed on disk against the documented
        // schema (EXPERIMENTS.md §A4): a missing field or NaN is an error.
        let written = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask bench: could not re-read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match validate_json(&written) {
            Ok(rows) => println!("bench: wrote {} ({rows} rows, schema ok)", path.display()),
            Err(e) => {
                eprintln!(
                    "xtask bench: {} violates the bench.json schema: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if check_envelope {
        let envelope = check_bench_envelope(&results);
        if envelope != ExitCode::SUCCESS {
            return envelope;
        }
    }
    if bless {
        // Median-of-N bless: the committed baseline should be the
        // machine's *typical* state. A single disturbed run would depress
        // it (hiding real regressions); the luckiest of N runs would set
        // a bar later honest runs cannot re-hit.
        let mut runs = vec![results.clone()];
        while runs.len() < BLESS_RUNS {
            println!("bench: bless pass {}/{BLESS_RUNS}…", runs.len() + 1);
            match run_benches(BenchOptions { smoke }) {
                Ok(r) => runs.push(r),
                Err(e) => {
                    eprintln!("xtask bench: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let merged = ecc_bench::gate::merge_median(&runs);
        if let Err(e) = write_json(&baseline_path, &merged) {
            eprintln!(
                "xtask bench: could not bless {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "bench: blessed {} ({} rows, median of {BLESS_RUNS} runs) — commit it to make \
             this run the gate baseline",
            baseline_path.display(),
            merged.len()
        );
        return ExitCode::SUCCESS;
    }
    if gate {
        let base = match load_baseline(&baseline_path) {
            Ok(b) => b,
            Err(code) => return code,
        };
        // Confirm-on-retry: a real regression depresses every run, while
        // scheduler interference on a shared machine only depresses some.
        // On failure, rerun the suite and fold the best per-bench numbers
        // into the current side before the final verdict.
        let mut current = results.clone();
        let mut report = ecc_bench::gate::GateReport::compare(&base, &current);
        let mut paired = ecc_bench::gate::trace_overhead(&current);
        let mut attempt = 1;
        while (report.failed() || paired.is_err()) && attempt < GATE_ATTEMPTS {
            attempt += 1;
            println!(
                "gate: regression suspected — confirming with rerun \
                 {attempt}/{GATE_ATTEMPTS} (best-of merge)…"
            );
            let rerun = match run_benches(BenchOptions { smoke }) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("xtask bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // The paired tracing check must see one *raw* run: merge_best
            // picks each row's best across runs, so the traced row and its
            // untraced twin can come from different runs — exactly the
            // drift the in-run pairing exists to cancel. A run that passes
            // settles the question (a real overhead depresses every run).
            if paired.is_err() {
                paired = ecc_bench::gate::trace_overhead(&rerun);
            }
            current = ecc_bench::gate::merge_best(&[current, rerun]);
            report = ecc_bench::gate::GateReport::compare(&base, &current);
        }
        if let Ok(Some(delta)) = paired {
            println!(
                "gate: sampled-tracing overhead ({} vs {}, paired in-run): {:+.1}% ops/sec",
                ecc_bench::gate::TRACED_ROW,
                ecc_bench::gate::TRACED_PAIR_ROW,
                delta * 100.0
            );
        }
        let code = report_gate(&report, &baseline_path);
        if let Err(msg) = paired {
            eprintln!("xtask bench: GATE FAILURE: {msg}");
            return ExitCode::FAILURE;
        }
        return code;
    }
    ExitCode::SUCCESS
}

/// Write the per-size-class occupancy snapshot of the churn shard to
/// `target/bench/slab_occupancy.csv` (the CI artifact): one row per class
/// that carved at least one page.
fn write_slab_occupancy(classes: &[ecc_core::ClassStats]) -> std::io::Result<PathBuf> {
    let out_dir = workspace_root().join("target").join("bench");
    std::fs::create_dir_all(&out_dir)?;
    let path = out_dir.join("slab_occupancy.csv");
    let mut body = String::from(
        "slot_size,pages,total_slots,live_slots,live_payload_bytes,allocs,occupancy,fragmentation\n",
    );
    for c in classes.iter().filter(|c| c.pages > 0) {
        body.push_str(&format!(
            "{},{},{},{},{},{},{:.4},{:.4}\n",
            c.slot_size,
            c.pages,
            c.total_slots,
            c.live_slots,
            c.live_payload_bytes,
            c.allocs,
            c.occupancy(),
            c.fragmentation()
        ));
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Bless commits the per-bench median of this many suite runs.
const BLESS_RUNS: usize = 3;
/// The gate gives a suspected regression this many suite runs (first run
/// + retries) to clear the bar before declaring it real.
const GATE_ATTEMPTS: usize = 3;

/// Load and parse the committed gate baseline.
fn load_baseline(baseline_path: &Path) -> Result<Vec<ecc_bench::perf::BenchResult>, ExitCode> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "xtask bench: no baseline at {} ({e}); bless one with \
                 `cargo xtask bench --bless`",
                baseline_path.display()
            );
            return Err(ExitCode::FAILURE);
        }
    };
    match ecc_bench::perf::parse_json(&text) {
        Ok(b) => Ok(b),
        Err(e) => {
            eprintln!(
                "xtask bench: baseline {} is malformed: {e}",
                baseline_path.display()
            );
            Err(ExitCode::FAILURE)
        }
    }
}

/// Print the gate verdict, mirror the delta table to
/// `target/bench/gate_report.txt` for CI artifact upload, and map the
/// report to an exit code.
fn report_gate(report: &ecc_bench::gate::GateReport, baseline_path: &Path) -> ExitCode {
    let rendered = report.render();
    println!("\ngate vs {}:\n{rendered}", baseline_path.display());

    let out_dir = workspace_root().join("target").join("bench");
    if std::fs::create_dir_all(&out_dir)
        .and_then(|()| std::fs::write(out_dir.join("gate_report.txt"), &rendered))
        .is_err()
    {
        eprintln!("xtask bench: warning: could not write gate_report.txt");
    }
    if report.failed() {
        for r in report.failures() {
            eprintln!(
                "xtask bench: GATE FAILURE: {} (ops {} , p99 {})",
                r.name,
                r.ops_delta()
                    .map(|d| format!("{:+.1}%", d * 100.0))
                    .unwrap_or_else(|| "missing".into()),
                r.p99_delta()
                    .map(|d| format!("{:+.1}%", d * 100.0))
                    .unwrap_or_else(|| "missing".into()),
            );
        }
        return ExitCode::FAILURE;
    }
    println!("gate: ok — no allowlisted bench regressed beyond tolerance");
    ExitCode::SUCCESS
}

/// `cargo xtask scenario` — run zoo scenarios through the cloudsim
/// elastic cache, verifying byte-identical replay for each.
fn scenario(args: &[String]) -> ExitCode {
    use ecc_bench::scenario::{run_scenario_sim, scenario_csv_rows, SCENARIO_CSV_HEADER};
    use ecc_workload::scenario::Scenario;
    use ecc_workload::trace::Trace;

    let mut list = false;
    let mut all = false;
    let mut name: Option<String> = None;
    let mut steps: Option<u64> = None;
    let mut seed = 7u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--name" => match it.next() {
                Some(n) => name = Some(n.clone()),
                None => return usage_error("--name takes a scenario name"),
            },
            "--steps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => steps = Some(n),
                None => return usage_error("--steps takes an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage_error("--seed takes an integer"),
            },
            other => return usage_error(&format!("unknown scenario flag `{other}`")),
        }
    }

    if list {
        for sc in Scenario::all() {
            println!(
                "{:<16} {} (default {} steps)",
                sc.name(),
                sc.summary(),
                sc.default_steps()
            );
        }
        return ExitCode::SUCCESS;
    }

    let targets: Vec<Scenario> = if all {
        Scenario::all()
    } else if let Some(n) = &name {
        match Scenario::by_name(n) {
            Some(sc) => vec![sc],
            None => {
                eprintln!(
                    "xtask scenario: unknown scenario {n:?}; known: {}",
                    Scenario::names().join(", ")
                );
                return ExitCode::from(2);
            }
        }
    } else {
        return usage_error("scenario needs --list, --name NAME or --all");
    };

    println!(
        "{:<16} {:>6} {:>9} {:>7} {:>9} {:>9} {:>8} {:>6} {:>8}",
        "scenario", "steps", "events", "writes", "hits", "misses", "hit_rate", "nodes", "speedup"
    );
    let mut summaries = Vec::new();
    for sc in &targets {
        let horizon = steps.unwrap_or_else(|| sc.default_steps());
        // Replay check: the captured trace must reproduce the stream the
        // simulation consumed, byte for byte through the text format.
        let trace = sc.capture(seed, horizon.min(20));
        let mut buf = Vec::new();
        if trace.write_to(&mut buf).is_err() {
            eprintln!("xtask scenario: {}: trace serialization failed", sc.name());
            return ExitCode::FAILURE;
        }
        let replayed: Vec<_> = match Trace::read_from(&buf[..]) {
            Ok(t) => t.iter_ops().collect(),
            Err(e) => {
                eprintln!("xtask scenario: {}: trace replay failed: {e}", sc.name());
                return ExitCode::FAILURE;
            }
        };
        let fresh: Vec<_> = sc.events(seed, horizon.min(20)).collect();
        if replayed != fresh {
            eprintln!(
                "xtask scenario: {}: replay diverged from the seeded stream",
                sc.name()
            );
            return ExitCode::FAILURE;
        }

        let s = run_scenario_sim(sc, seed, horizon);
        println!(
            "{:<16} {:>6} {:>9} {:>7} {:>9} {:>9} {:>8.3} {:>6} {:>8.2}",
            s.name,
            s.steps,
            s.events,
            s.writes,
            s.hits,
            s.misses,
            s.hit_rate(),
            s.nodes_end,
            s.speedup
        );
        summaries.push(s);
    }

    if all {
        match ecc_bench::write_csv(
            "scenarios.csv",
            SCENARIO_CSV_HEADER,
            &scenario_csv_rows(&summaries),
        ) {
            Ok(path) => println!("scenario: wrote {}", path.display()),
            Err(e) => {
                eprintln!("xtask scenario: could not write scenarios.csv: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "scenario: {} scenario(s) simulated, every stream replayed byte-identically",
        summaries.len()
    );
    ExitCode::SUCCESS
}

/// `--check-envelope`: assert the debug-only lock-order auditor has not
/// leaked into this build's hot path.
///
/// Two layers: (1) in a release build, `ecc_core::lockorder::is_enabled()`
/// must be false — the auditor is `cfg(debug_assertions)`-gated and a
/// release binary carrying it is a build-system bug; (2) the relative
/// envelope from `results/bench.json` must hold in-run: the sharded node
/// beats the mutex baseline by ≥ 2x at 4 workers (the committed release
/// baseline is ~33x, so 2x only trips on a broken hot path, not on a slow
/// CI runner), and `node_get_sharded_w4` / `wire_node_w1` both exist with
/// nonzero throughput.
fn check_bench_envelope(results: &[ecc_bench::perf::BenchResult]) -> ExitCode {
    let auditor = ecc_core::lockorder::is_enabled();
    println!(
        "envelope: lock-order auditor {} in this build profile",
        if auditor {
            "ACTIVE (debug)"
        } else {
            "compiled out"
        }
    );
    if !cfg!(debug_assertions) && auditor {
        eprintln!("xtask bench: release build but the lock-order auditor is active");
        return ExitCode::FAILURE;
    }
    if auditor {
        println!("envelope: debug numbers are informational; ratios still checked");
    }
    let ops = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ops_per_sec)
    };
    for name in ["node_get_sharded_w4", "node_get_mutex_w4", "wire_node_w1"] {
        match ops(name) {
            Some(v) if v > 0.0 => {}
            _ => {
                eprintln!("xtask bench: envelope bench `{name}` missing or zero");
                return ExitCode::FAILURE;
            }
        }
    }
    let ratio = match (ops("node_get_sharded_w4"), ops("node_get_mutex_w4")) {
        (Some(s), Some(m)) if m > 0.0 => s / m,
        _ => 0.0,
    };
    println!("envelope: sharded/mutex GET @4 workers = {ratio:.1}x (floor 2.0x)");
    if ratio < 2.0 {
        eprintln!(
            "xtask bench: sharded node regressed to {ratio:.1}x over the mutex baseline — \
             the auditor (or another change) is stalling the release hot path"
        );
        return ExitCode::FAILURE;
    }
    println!("envelope: ok");
    ExitCode::SUCCESS
}

fn obs(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--smoke") => obs_smoke(),
        Some(path) => obs_print(Path::new(path)),
        None => {
            eprintln!("xtask obs: expected a trace path or --smoke");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Pretty-print a JSONL flight-recorder trace: one aligned line per event,
/// a per-kind tally, and a warning for unparseable lines.
fn obs_print(path: &Path) -> ExitCode {
    use ecc_obs::ObsEvent;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask obs: could not read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut bad = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match ObsEvent::from_json(line) {
            Some(ev) => {
                *counts.entry(ev.kind()).or_insert(0) += 1;
                println!("{:>12} µs  {:<14} {}", ev.at_us(), ev.kind(), describe(&ev));
            }
            None => {
                eprintln!("line {}: unparseable event: {line}", i + 1);
                bad += 1;
            }
        }
    }
    println!("---");
    for (kind, n) in &counts {
        println!("{kind:<14} {n}");
    }
    if bad > 0 {
        eprintln!("xtask obs: {bad} unparseable line(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One-line human description of an event's payload.
fn describe(ev: &ecc_obs::ObsEvent) -> String {
    use ecc_obs::ObsEvent::*;
    match ev {
        BucketSplit {
            node,
            new_node,
            bucket,
            ..
        } => format!("node {node} → new node {new_node} at bucket {bucket}"),
        SweepMigrate {
            src,
            dest,
            records,
            bytes,
            duration_us,
            allocated,
            ..
        } => format!(
            "{records} records / {bytes}B from node {src} to node {dest} in {duration_us}µs{}",
            if *allocated { " (fresh node)" } else { "" }
        ),
        NodeMerge {
            src, dest, records, ..
        } => format!("node {src} drained ({records} records) into node {dest}"),
        NodeAlloc { node, .. } => format!("node {node} allocated"),
        NodeDealloc { node, .. } => format!("node {node} deallocated"),
        SliceExpire {
            expiration,
            victims,
            ..
        } => format!("slice {expiration} expired, {victims} victim(s)"),
        EvictBatch { node, keys, .. } => format!("{} key(s) evicted from node {node}", keys.len()),
        FrameRx { op, bytes, .. } => format!("op 0x{op:02X}, {bytes}B payload"),
        FrameTx { op, bytes, .. } => format!("op 0x{op:02X}, {bytes}B response"),
        InsertError { key, .. } => format!("insert of key {key} failed"),
        SpanStart {
            trace,
            span,
            parent,
            kind,
            node,
            ..
        } => format!("{kind} span {span:#x} (trace {trace:#x}, parent {parent:#x}) on node {node}"),
        SpanEnd { span, .. } => format!("span {span:#x} ended"),
    }
}

/// Live observability smoke: grow a real cluster under coordinator traffic,
/// hammer it with the load generator (live one-line progress), shrink it
/// through window evictions, then dump the cluster-wide trace + exposition
/// and check the acceptance surface.
fn obs_smoke() -> ExitCode {
    use ecc_net::coordinator::LiveCoordinator;
    use ecc_net::loadgen::{run_load_with_progress, LoadProgress};
    use std::time::Duration;

    let fail = |what: &str| {
        eprintln!("xtask obs --smoke: {what}");
        ExitCode::FAILURE
    };

    // Grow: ~10 records of 100 B per 1000 B node; 32 spread keys force
    // splits. Every key is noted in the eviction window via the get-miss.
    let mut coord = match LiveCoordinator::start(1 << 16, 1000) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask obs --smoke: coordinator start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    coord.enable_window(2, 0.99, 0.99);
    for k in 0..32u64 {
        match coord.get(k * 999) {
            Ok(None) => {
                if let Err(e) = coord.put(k * 999, vec![1; 100]) {
                    eprintln!("xtask obs --smoke: put failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Ok(Some(_)) => {}
            Err(e) => {
                eprintln!("xtask obs --smoke: get failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "obs smoke: grew to {} nodes ({} splits)",
        coord.node_count(),
        coord.splits
    );

    // Load: real client traffic straight at the nodes, with the periodic
    // one-line live summary from the load generator's progress callback.
    let ring = coord.ring().clone();
    let addrs: Vec<Option<std::net::SocketAddr>> = (0..coord.node_count() + 8)
        .map(|id| coord.node_addr(id))
        .collect();
    let progress = |p: LoadProgress| {
        println!(
            "obs smoke: load {}/{} ops, {:.1}s elapsed",
            p.done,
            p.total,
            p.elapsed.as_secs_f64()
        );
    };
    let report = match run_load_with_progress(
        &ring,
        |id| {
            addrs
                .get(*id)
                .copied()
                .flatten()
                .unwrap_or_else(|| std::net::SocketAddr::from(([127, 0, 0, 1], 1)))
        },
        4,
        2000,
        64,
        16,
        Some((Duration::from_millis(200), &progress)),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask obs --smoke: load generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (p50, _, p99) = report.latency_us;
    println!(
        "obs smoke: load done — {} ops, {} hits, {} errors, client RTT p50={p50}µs p99={p99}µs",
        report.ops, report.hits, report.errors
    );

    // Note the loadgen keys in the window so the shrink phase evicts them.
    for k in 0..64u64 {
        if coord.get(k).is_err() {
            return fail("post-load get failed");
        }
    }
    // Shrink: expire every slice; victims evict, empty nodes merge.
    for _ in 0..8 {
        if let Err(e) = coord.end_time_step() {
            eprintln!("xtask obs --smoke: end_time_step failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "obs smoke: shrank to {} nodes ({} merges)",
        coord.node_count(),
        coord.merges
    );

    // Dump: cluster-wide snapshot (coordinator + every node over the
    // wire), plus the client-side RTT histogram folded in.
    let mut snap = match coord.cluster_obs() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask obs --smoke: cluster obs dump failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    snap.hists
        .insert("client_rtt_us".into(), report.hist.clone());
    if let Err(e) = coord.shutdown() {
        eprintln!("xtask obs --smoke: shutdown failed: {e}");
        return ExitCode::FAILURE;
    }

    let out_dir = workspace_root().join("target").join("obs");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask obs --smoke: mkdir failed: {e}");
        return ExitCode::FAILURE;
    }
    let trace_path = out_dir.join("trace.jsonl");
    let expo_path = out_dir.join("exposition.txt");
    let exposition = snap.render_prometheus();
    if let Err(e) = std::fs::write(&trace_path, snap.to_jsonl()) {
        eprintln!("xtask obs --smoke: could not write trace: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&expo_path, &exposition) {
        eprintln!("xtask obs --smoke: could not write exposition: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "obs smoke: wrote {} ({} events) and {} ({} histograms)",
        trace_path.display(),
        snap.events.len(),
        expo_path.display(),
        snap.hists.len()
    );

    // Acceptance surface: the trace must witness elasticity end to end and
    // the exposition must carry per-op latency quantiles.
    let counts = snap.event_counts();
    for kind in ["bucket_split", "node_merge", "evict_batch"] {
        if counts.get(kind).copied().unwrap_or(0) == 0 {
            return fail(&format!("trace has no `{kind}` event"));
        }
    }
    for needle in [
        "quantile=\"0.5\"",
        "quantile=\"0.99\"",
        "ecc_server_op_us",
        "ecc_client_rtt_us_count",
    ] {
        if !exposition.contains(needle) {
            return fail(&format!("exposition is missing `{needle}`"));
        }
    }
    println!("obs smoke: trace and exposition pass the acceptance checks");
    ExitCode::SUCCESS
}

fn trace_cmd(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut csv: Option<PathBuf> = None;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--csv" => match it.next() {
                Some(p) => csv = Some(PathBuf::from(p)),
                None => return usage_error("--csv takes a path"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown trace flag `{flag}`"))
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let csv = csv.unwrap_or_else(|| workspace_root().join("results").join("trace_breakdown.csv"));
    if smoke {
        return trace_smoke(&csv);
    }
    if paths.is_empty() {
        eprintln!("xtask trace: expected one or more JSONL dump paths, or --smoke");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut events = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask trace: could not read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let (parsed, bad) = xtask::trace::parse_jsonl(&text);
        for (line, text) in &bad {
            eprintln!("{}:{line}: unparseable event: {text}", path.display());
        }
        if !bad.is_empty() {
            eprintln!("xtask trace: {} unparseable line(s)", bad.len());
            return ExitCode::FAILURE;
        }
        events.extend(parsed);
    }
    match trace_report(&events, &csv) {
        Some(_) => ExitCode::SUCCESS,
        None => ExitCode::FAILURE,
    }
}

/// Analyze `events`, print the breakdown summary + p99 exemplar flame, and
/// write the per-request CSV. Returns the analysis, or `None` after
/// printing the verification error.
fn trace_report(events: &[ecc_obs::ObsEvent], csv: &Path) -> Option<xtask::trace::TraceAnalysis> {
    use xtask::trace::percentile;
    let analysis = match xtask::trace::analyze(events) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask trace: span stream is malformed: {e}");
            eprintln!(
                "xtask trace: a truncated dump usually means a flight recorder \
                 overflowed mid-run — re-capture with fewer ops or a higher \
                 sample rate so the run fits the ring"
            );
            return None;
        }
    };
    let s = &analysis.stats;
    println!(
        "trace: {} spans / {} traces / {} roots, {} request(s), {} elastic op(s)",
        s.spans,
        s.traces,
        s.roots,
        analysis.requests.len(),
        analysis.elastic_roots.len()
    );
    if !analysis.requests.is_empty() {
        let complete = analysis.requests.iter().filter(|r| r.complete).count();
        println!(
            "trace: {complete}/{} complete request trees ({:.1}%)",
            analysis.requests.len(),
            100.0 * analysis.complete_fraction()
        );
        let col = |f: fn(&xtask::trace::RequestBreakdown) -> u64| -> Vec<u64> {
            analysis.requests.iter().map(f).collect()
        };
        let total = col(|r| r.total_us);
        println!("trace: {:>10} {:>8} {:>8} {:>8}", "", "p50", "p99", "max");
        for (name, v) in [
            ("total", total.clone()),
            ("network", col(|r| r.network_us)),
            ("queue", col(|r| r.queue_us)),
            ("lock", col(|r| r.lock_us)),
            ("execute", col(|r| r.execute_us)),
        ] {
            println!(
                "trace: {name:>10} {:>7}µs {:>7}µs {:>7}µs",
                percentile(&v, 0.5),
                percentile(&v, 0.99),
                percentile(&v, 1.0)
            );
        }
        if let Some(ex) = analysis.exemplar(0.99) {
            println!(
                "trace: p99 exemplar — trace {:#x}, {}µs total:",
                ex.trace, ex.total_us
            );
            print!("{}", indent_block(&analysis.flame(ex.root), "trace:   "));
        }
    }
    if let Some(dir) = csv.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("xtask trace: mkdir {} failed: {e}", dir.display());
            return None;
        }
    }
    if let Err(e) = std::fs::write(csv, analysis.to_csv()) {
        eprintln!("xtask trace: could not write {}: {e}", csv.display());
        return None;
    }
    println!(
        "trace: wrote {} ({} request rows)",
        csv.display(),
        analysis.requests.len()
    );
    Some(analysis)
}

/// Prefix every line of `text` with `prefix`.
fn indent_block(text: &str, prefix: &str) -> String {
    text.lines()
        .map(|l| format!("{prefix}{l}\n"))
        .collect::<String>()
}

/// End-to-end tracing smoke: grow a real cluster, drive sampled pipelined
/// load straight at the nodes, dump the merged cluster trace, and hold the
/// analyzer to the acceptance bar (≥99% complete trees, all four phases
/// witnessed, exact sampling accounting).
fn trace_smoke(csv: &Path) -> ExitCode {
    use ecc_net::coordinator::LiveCoordinator;
    use ecc_net::loadgen::{run_load_fanout_traced, TraceOpts};

    let fail = |what: &str| {
        eprintln!("xtask trace --smoke: {what}");
        ExitCode::FAILURE
    };

    // Grow: coordinator puts force splits, which trace as elastic roots.
    let mut coord = match LiveCoordinator::start(1 << 16, 1000) {
        Ok(c) => c,
        Err(e) => return fail(&format!("coordinator start failed: {e}")),
    };
    for k in 0..32u64 {
        if let Err(e) = coord.put(k * 999 + 7, vec![1; 100]) {
            return fail(&format!("grow put failed: {e}"));
        }
    }
    println!(
        "trace smoke: grew to {} nodes ({} splits)",
        coord.node_count(),
        coord.splits
    );

    // Sampled pipelined load straight at the nodes. The load generator
    // allocates its root spans from the coordinator's own registry: same
    // recorder, same clock epoch as every node it spawned, so the merged
    // cluster dump carries both halves of every sampled request.
    // Keys span the whole hash line (the ring range-partitions keys, so a
    // narrow key space would pile onto one node's arc and overflow its
    // flight-recorder ring).
    const OPS: u64 = 700;
    const CLIENTS: u64 = 2;
    const SAMPLE: u64 = 4;
    const KEY_SPACE: u64 = 1 << 16;
    let trace_opts = TraceOpts {
        obs: coord.obs().clone(),
        sample: SAMPLE,
    };
    let ring = coord.ring().clone();
    let addrs: Vec<Option<std::net::SocketAddr>> = (0..coord.node_count() + 8)
        .map(|id| coord.node_addr(id))
        .collect();
    let report = match run_load_fanout_traced(
        &ring,
        |id| {
            addrs
                .get(*id)
                .copied()
                .flatten()
                .unwrap_or_else(|| std::net::SocketAddr::from(([127, 0, 0, 1], 1)))
        },
        CLIENTS as usize,
        1,
        OPS,
        KEY_SPACE,
        64,
        16,
        Some(&trace_opts),
    ) {
        Ok(r) => r,
        Err(e) => return fail(&format!("load generation failed: {e}")),
    };
    if report.errors > 0 {
        return fail(&format!("{} load errors", report.errors));
    }
    println!(
        "trace smoke: load done — {} ops over pipeline depth 16, RTT p99 {}µs",
        report.ops, report.latency_us.2
    );

    // Dump the merged cluster snapshot (coordinator + every node).
    let snap = match coord.cluster_obs() {
        Ok(s) => s,
        Err(e) => return fail(&format!("cluster obs dump failed: {e}")),
    };
    if let Err(e) = coord.shutdown() {
        return fail(&format!("shutdown failed: {e}"));
    }
    if snap.dropped > 0 {
        return fail(&format!(
            "{} events fell out of a flight-recorder ring; the span oracle \
             would be unsound (shrink the run or grow the ring)",
            snap.dropped
        ));
    }
    let out_dir = workspace_root().join("target").join("obs");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(&format!("mkdir failed: {e}"));
    }
    let trace_path = out_dir.join("trace.jsonl");
    if let Err(e) = std::fs::write(&trace_path, snap.to_jsonl()) {
        return fail(&format!("could not write trace: {e}"));
    }
    println!(
        "trace smoke: wrote {} ({} events, {} sampled-out spans)",
        trace_path.display(),
        snap.events.len(),
        snap.spans_dropped
    );

    // Re-read through the JSONL path — the exact pipeline a user runs.
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("could not re-read trace: {e}")),
    };
    let (events, bad) = xtask::trace::parse_jsonl(&text);
    if !bad.is_empty() {
        return fail(&format!("{} unparseable JSONL line(s)", bad.len()));
    }
    let Some(analysis) = trace_report(&events, csv) else {
        return ExitCode::FAILURE;
    };

    // Acceptance: every sampled request accounted for, ≥99% reconstructed
    // into complete trees, all four phases witnessed, elasticity traced.
    // Sampling is per worker (each counts its own issue sequence from 0).
    let sampled = CLIENTS * OPS.div_ceil(CLIENTS).div_ceil(SAMPLE);
    if (analysis.requests.len() as u64) != sampled {
        return fail(&format!(
            "{} request roots for {sampled} sampled requests",
            analysis.requests.len()
        ));
    }
    if snap.spans_dropped != OPS - sampled {
        return fail(&format!(
            "spans_dropped says {} but {} requests went unsampled",
            snap.spans_dropped,
            OPS - sampled
        ));
    }
    if analysis.complete_fraction() < 0.99 {
        return fail(&format!(
            "only {:.1}% of sampled requests reconstructed into complete trees",
            100.0 * analysis.complete_fraction()
        ));
    }
    if analysis.requests.iter().map(|r| r.queue_us).sum::<u64>() == 0 {
        return fail("queue phase never observed");
    }
    if analysis.requests.iter().map(|r| r.execute_us).sum::<u64>() == 0 {
        return fail("execute phase never observed");
    }
    if !analysis.spans.iter().any(|s| s.kind == "lock_wait") {
        return fail("no lock_wait spans in the dump");
    }
    if analysis.elastic_roots.is_empty() {
        return fail("no elastic operation roots in the dump");
    }
    println!("trace smoke: acceptance checks pass");
    ExitCode::SUCCESS
}

fn simtest(args: &[String]) -> ExitCode {
    let mut seeds = 500u64;
    let mut live_every = 8u64;
    let mut replay: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return usage_error("--seeds takes an integer"),
            },
            "--live-every" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => live_every = n,
                _ => return usage_error("--live-every takes a positive integer"),
            },
            "--replay" => match it.next() {
                Some(s) => replay = Some(s.clone()),
                None => return usage_error("--replay takes a SIMSEED string"),
            },
            other => return usage_error(&format!("unknown simtest flag `{other}`")),
        }
    }

    if let Some(seed_str) = replay {
        return replay_one(&seed_str);
    }

    let out_dir = workspace_root().join("target").join("simtest");
    let _quiet = QuietPanics::install();
    let mut failures: Vec<SeedOutcome> = Vec::new();
    for seed in 0..seeds {
        let include_live = seed % live_every == 0;
        failures.extend(check_seed(seed, include_live));
        if (seed + 1) % 100 == 0 {
            println!(
                "simtest: {}/{seeds} seeds, {} failure(s)",
                seed + 1,
                failures.len()
            );
        }
    }
    drop(_quiet);

    if failures.is_empty() {
        println!("simtest: {seeds} seeds passed across all families");
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("simtest FAILURE [{}/{}] {}", f.family, f.seed, f.failure);
        eprintln!("  original : {}", f.original.encode());
        eprintln!("  shrunken : {}", f.shrunken.encode());
        if let Err(e) = write_failure(&out_dir, f) {
            eprintln!("  (could not write failure file: {e})");
        }
    }
    eprintln!(
        "simtest: {} failure(s) over {seeds} seeds; shrunken schedules in {}",
        failures.len(),
        out_dir.display()
    );
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xtask: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Persist one failure as `target/simtest/<family>-<seed>.txt` so CI can
/// upload it as an artifact.
fn write_failure(dir: &Path, f: &SeedOutcome) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-{}.txt", f.family, f.seed));
    let body = format!(
        "family   : {}\nseed     : {}\nfailure  : {}\noriginal : {}\nshrunken : {}\n\n\
         replay with:\n  cargo xtask simtest --replay '{}'\n",
        f.family,
        f.seed,
        f.failure,
        f.original.encode(),
        f.shrunken.encode(),
        f.shrunken.encode(),
    );
    std::fs::write(&path, body)?;
    Ok(path)
}

fn replay_one(seed_str: &str) -> ExitCode {
    let sched = match Schedule::decode(seed_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simtest: bad SIMSEED: {e}");
            return ExitCode::from(2);
        }
    };
    // Canonical-encoding check: what we replay is exactly what was printed.
    println!("replaying: {}", sched.encode());
    match run_schedule(&sched) {
        Ok(()) => {
            println!("simtest replay: schedule passed");
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("simtest replay: {f}");
            ExitCode::FAILURE
        }
    }
}
