//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//! * `lint` — run the repo's static-analysis pass over `crates/*/src`
//!   (see [`xtask::run_lint`]); prints `file:line: [rule] message`
//!   diagnostics and exits nonzero when violations exist.
//! * `simtest [--seeds N] [--live-every K]` — run the deterministic
//!   cluster-simulation battery (`crates/simtest`) over seeds `0..N`;
//!   failures are shrunk, printed as replayable SIMSEEDs, and written
//!   under `target/simtest/`.
//! * `simtest --replay '<SIMSEED>'` — re-run one schedule exactly.
//! * `bench [--smoke] [--json [PATH]]` — run the performance harness
//!   (`crates/bench/src/perf.rs`) and optionally write
//!   `results/bench.json`; `--smoke` is the seconds-long CI profile.

#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ecc_bench::perf::{run_benches, speedup, write_json, BenchOptions};
use ecc_simtest::{check_seed, run_schedule, QuietPanics, Schedule, SeedOutcome};

const USAGE: &str = "usage: cargo xtask <lint | simtest [--seeds N] [--live-every K] \
     [--replay SIMSEED] | bench [--smoke] [--json [PATH]]>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("simtest") => simtest(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// xtask lives at `<root>/crates/xtask`, so the workspace root is two up.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
}

fn lint() -> ExitCode {
    match xtask::run_lint(workspace_root()) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: {scanned} files scanned, clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "xtask lint: {} violation(s) across {scanned} scanned files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn bench(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut json: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json = Some(match it.peek() {
                    Some(p) if !p.starts_with("--") => {
                        PathBuf::from(it.next().unwrap_or(&String::new()))
                    }
                    _ => workspace_root().join("results").join("bench.json"),
                });
            }
            other => {
                eprintln!("xtask bench: unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let profile = if smoke { "smoke" } else { "full" };
    println!("bench: running {profile} profile…");
    let results = match run_benches(BenchOptions { smoke }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<28} {:>12} {:>14} {:>12} {:>12}",
        "bench", "ops", "ops/sec", "p50_ns", "p99_ns"
    );
    for r in &results {
        println!(
            "{:<28} {:>12} {:>14.1} {:>12} {:>12}",
            r.name, r.ops, r.ops_per_sec, r.p50_ns, r.p99_ns
        );
    }
    for (label, fast, slow) in [
        (
            "window expiry (incremental vs rescore)",
            "window_expiry_incremental",
            "window_expiry_rescore",
        ),
        (
            "wire eviction (batched vs sequential)",
            "wire_evict_batched",
            "wire_evict_sequential",
        ),
    ] {
        if let Some(s) = speedup(&results, fast, slow) {
            println!("speedup: {label}: {s:.1}x");
        }
    }
    if let Some(path) = json {
        if let Err(e) = write_json(&path, &results) {
            eprintln!("xtask bench: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn simtest(args: &[String]) -> ExitCode {
    let mut seeds = 500u64;
    let mut live_every = 8u64;
    let mut replay: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return usage_error("--seeds takes an integer"),
            },
            "--live-every" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => live_every = n,
                _ => return usage_error("--live-every takes a positive integer"),
            },
            "--replay" => match it.next() {
                Some(s) => replay = Some(s.clone()),
                None => return usage_error("--replay takes a SIMSEED string"),
            },
            other => return usage_error(&format!("unknown simtest flag `{other}`")),
        }
    }

    if let Some(seed_str) = replay {
        return replay_one(&seed_str);
    }

    let out_dir = workspace_root().join("target").join("simtest");
    let _quiet = QuietPanics::install();
    let mut failures: Vec<SeedOutcome> = Vec::new();
    for seed in 0..seeds {
        let include_live = seed % live_every == 0;
        failures.extend(check_seed(seed, include_live));
        if (seed + 1) % 100 == 0 {
            println!(
                "simtest: {}/{seeds} seeds, {} failure(s)",
                seed + 1,
                failures.len()
            );
        }
    }
    drop(_quiet);

    if failures.is_empty() {
        println!("simtest: {seeds} seeds passed across all families");
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("simtest FAILURE [{}/{}] {}", f.family, f.seed, f.failure);
        eprintln!("  original : {}", f.original.encode());
        eprintln!("  shrunken : {}", f.shrunken.encode());
        if let Err(e) = write_failure(&out_dir, f) {
            eprintln!("  (could not write failure file: {e})");
        }
    }
    eprintln!(
        "simtest: {} failure(s) over {seeds} seeds; shrunken schedules in {}",
        failures.len(),
        out_dir.display()
    );
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xtask simtest: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Persist one failure as `target/simtest/<family>-<seed>.txt` so CI can
/// upload it as an artifact.
fn write_failure(dir: &Path, f: &SeedOutcome) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-{}.txt", f.family, f.seed));
    let body = format!(
        "family   : {}\nseed     : {}\nfailure  : {}\noriginal : {}\nshrunken : {}\n\n\
         replay with:\n  cargo xtask simtest --replay '{}'\n",
        f.family,
        f.seed,
        f.failure,
        f.original.encode(),
        f.shrunken.encode(),
        f.shrunken.encode(),
    );
    std::fs::write(&path, body)?;
    Ok(path)
}

fn replay_one(seed_str: &str) -> ExitCode {
    let sched = match Schedule::decode(seed_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simtest: bad SIMSEED: {e}");
            return ExitCode::from(2);
        }
    };
    // Canonical-encoding check: what we replay is exactly what was printed.
    println!("replaying: {}", sched.encode());
    match run_schedule(&sched) {
        Ok(()) => {
            println!("simtest replay: schedule passed");
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("simtest replay: {f}");
            ExitCode::FAILURE
        }
    }
}
