//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//! * `lint` — run the repo's static-analysis pass over `crates/*/src`
//!   (see [`xtask::run_lint`]); prints `file:line: [rule] message`
//!   diagnostics and exits nonzero when violations exist.

#![deny(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    // xtask lives at <root>/crates/xtask, so the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."));
    match xtask::run_lint(root) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: {scanned} files scanned, clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "xtask lint: {} violation(s) across {scanned} scanned files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}
