//! A token-level Rust lexer for the static-analysis passes.
//!
//! The original lint engine scanned source with a character-state machine
//! ([`crate::strip_comments_and_strings`]). That is fine for substring
//! rules but too coarse for the concurrency passes (lock-order,
//! atomic-ordering, guard-across-I/O), which need to know *what* a piece
//! of text is — identifier, raw string, nested comment — and *where* it
//! is (line and column). This module lexes Rust source into a flat token
//! stream with:
//!
//! * full raw-string support (`r"…"`, `r#"…"#`, `br##"…"##`, any hash
//!   depth), byte strings (`b"…"`) and byte chars (`b'x'`);
//! * raw identifiers (`r#type`) distinguished from raw strings;
//! * nested block comments with depth tracking, line comments;
//! * lifetimes (`'a`) distinguished from char literals (`'a'`, `'\''`);
//! * 1-based line / column positions on every token.
//!
//! The lexer is intentionally lossless: concatenating every token's text
//! reproduces the input byte-for-byte, which is what lets
//! [`strip_via_lexer`] be checked against the legacy stripper on the
//! whole workspace (see `crates/xtask/tests/agreement.rs`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// `// …` to the end of the line (newline not included).
    LineComment,
    /// `/* … */`, possibly nested; `terminated` is false at EOF.
    BlockComment {
        /// Whether the comment's closing `*/` was found.
        terminated: bool,
    },
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` (quote included).
    Lifetime,
    /// A char literal `'x'` / `'\n'` or byte char `b'x'`.
    CharLit,
    /// A string literal `"…"` or byte string `b"…"`; `terminated` is
    /// false when the closing quote is missing at EOF.
    StrLit {
        /// Whether the closing `"` was found.
        terminated: bool,
    },
    /// A raw string `r"…"` / `r#"…"#` / `br#"…"#` of any hash depth.
    RawStrLit {
        /// Whether the closing delimiter was found.
        terminated: bool,
    },
    /// A numeric literal (integers, simple floats; suffixes included).
    Num,
    /// Any single other character (punctuation, operators, braces).
    Punct,
}

/// One lexed token: kind, exact source text, and 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source slice (lossless: tokens concatenate to the input).
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// Cursor over the source characters.
struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_offset(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Advance `n` characters, tracking line/column.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if let Some(&(_, c)) = self.chars.get(self.pos) {
                self.pos += 1;
                if c == '\n' {
                    self.line += 1;
                    self.col = 1;
                } else {
                    self.col += 1;
                }
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while cur.pos < cur.chars.len() {
        let start = cur.pos;
        let line = cur.line;
        let col = cur.col;
        let kind = next_kind(&mut cur);
        let text = &src[cur.byte_offset(start)..cur.byte_offset(cur.pos)];
        out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    out
}

/// Consume one token starting at the cursor and return its kind.
fn next_kind(cur: &mut Cursor<'_>) -> TokenKind {
    let c = match cur.peek(0) {
        Some(c) => c,
        None => return TokenKind::Punct,
    };

    if c.is_whitespace() {
        let mut n = 0;
        while cur.peek(n).is_some_and(|c| c.is_whitespace()) {
            n += 1;
        }
        cur.bump(n);
        return TokenKind::Whitespace;
    }

    if c == '/' {
        match cur.peek(1) {
            Some('/') => {
                let mut n = 2;
                while cur.peek(n).is_some_and(|c| c != '\n') {
                    n += 1;
                }
                cur.bump(n);
                return TokenKind::LineComment;
            }
            Some('*') => return lex_block_comment(cur),
            _ => {
                cur.bump(1);
                return TokenKind::Punct;
            }
        }
    }

    // Possible raw string / byte string / raw ident / byte char: the
    // prefixes r" r#" br" b" b' and the raw identifier r#ident.
    if c == 'r' || c == 'b' {
        if let Some(kind) = try_lex_prefixed(cur, c) {
            return kind;
        }
    }

    if is_ident_start(c) {
        let mut n = 1;
        while cur.peek(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        cur.bump(n);
        return TokenKind::Ident;
    }

    if c.is_ascii_digit() {
        let mut n = 1;
        loop {
            match cur.peek(n) {
                Some(d) if is_ident_continue(d) => n += 1,
                // `1.5` continues the literal; `1..5` and `1.method()` stop.
                Some('.') if cur.peek(n + 1).is_some_and(|d| d.is_ascii_digit()) => n += 1,
                _ => break,
            }
        }
        cur.bump(n);
        return TokenKind::Num;
    }

    if c == '"' {
        return lex_str(cur, 0);
    }

    if c == '\'' {
        return lex_quote(cur, 0);
    }

    cur.bump(1);
    TokenKind::Punct
}

/// Lex a nested block comment starting at `/*`.
fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    let mut n = 2;
    let mut depth = 1u32;
    loop {
        match (cur.peek(n), cur.peek(n + 1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                n += 2;
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                n += 2;
                if depth == 0 {
                    cur.bump(n);
                    return TokenKind::BlockComment { terminated: true };
                }
            }
            (Some(_), _) => n += 1,
            (None, _) => {
                cur.bump(n);
                return TokenKind::BlockComment { terminated: false };
            }
        }
    }
}

/// Try the `r…` / `b…` prefixed forms. Returns `None` when the text is a
/// plain identifier starting with `r`/`b` (the caller lexes it normally).
fn try_lex_prefixed(cur: &mut Cursor<'_>, first: char) -> Option<TokenKind> {
    // Offset of the cursor char after the optional `b` and `r`.
    let mut j = 1;
    let has_b = first == 'b';
    let has_r = if has_b {
        if cur.peek(1) == Some('r') {
            j = 2;
            true
        } else {
            false
        }
    } else {
        true
    };

    if has_r {
        // Count hashes after the `r`.
        let mut hashes = 0usize;
        while cur.peek(j + hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek(j + hashes) == Some('"') {
            return Some(lex_raw_str(cur, j + hashes, hashes));
        }
        // `r#ident` — a raw identifier, only without the `b` prefix and
        // with exactly one hash.
        if !has_b && hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
            let mut n = 3;
            while cur.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            cur.bump(n);
            return Some(TokenKind::Ident);
        }
        return None;
    }

    // `b"…"` byte string, `b'…'` byte char.
    match cur.peek(1) {
        Some('"') => Some(lex_str(cur, 1)),
        Some('\'') => Some(lex_quote(cur, 1)),
        _ => None,
    }
}

/// Lex a raw string whose opening quote is at offset `quote_at` with
/// `hashes` hashes in the delimiter.
fn lex_raw_str(cur: &mut Cursor<'_>, quote_at: usize, hashes: usize) -> TokenKind {
    let mut n = quote_at + 1;
    loop {
        match cur.peek(n) {
            Some('"') => {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(n + 1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    cur.bump(n + 1 + hashes);
                    return TokenKind::RawStrLit { terminated: true };
                }
                n += 1;
            }
            Some(_) => n += 1,
            None => {
                cur.bump(n);
                return TokenKind::RawStrLit { terminated: false };
            }
        }
    }
}

/// Lex a normal or byte string whose opening `"` is at offset `quote_at`.
fn lex_str(cur: &mut Cursor<'_>, quote_at: usize) -> TokenKind {
    let mut n = quote_at + 1;
    loop {
        match cur.peek(n) {
            Some('\\') if cur.peek(n + 1).is_some() => n += 2,
            Some('"') => {
                cur.bump(n + 1);
                return TokenKind::StrLit { terminated: true };
            }
            Some(_) => n += 1,
            None => {
                cur.bump(n);
                return TokenKind::StrLit { terminated: false };
            }
        }
    }
}

/// Lex what follows a `'` at offset `quote_at`: a char literal or a
/// lifetime. Mirrors the legacy stripper's disambiguation: a literal
/// closes within a few characters (`'a'`, `'\n'`, `'\u{..}'`); anything
/// else is a lifetime.
fn lex_quote(cur: &mut Cursor<'_>, quote_at: usize) -> TokenKind {
    let next = cur.peek(quote_at + 1);
    let is_char_lit = match next {
        Some('\\') => true,
        Some(_) => cur.peek(quote_at + 2) == Some('\''),
        None => false,
    };
    if is_char_lit {
        let mut n = quote_at + 1;
        loop {
            match cur.peek(n) {
                Some('\\') if cur.peek(n + 1).is_some() => n += 2,
                Some('\'') => {
                    cur.bump(n + 1);
                    return TokenKind::CharLit;
                }
                Some(_) => n += 1,
                None => {
                    cur.bump(n);
                    return TokenKind::CharLit;
                }
            }
        }
    }
    // Lifetime: `'` plus identifier characters (possibly none: a lone `'`
    // stays a one-character token).
    let mut n = quote_at + 1;
    while cur.peek(n).is_some_and(is_ident_continue) {
        n += 1;
    }
    cur.bump(n);
    if n == quote_at + 1 && quote_at == 0 {
        TokenKind::Punct
    } else {
        TokenKind::Lifetime
    }
}

/// Replace comments and string/char literal *contents* with spaces while
/// preserving line structure — the token-level re-expression of
/// [`crate::strip_comments_and_strings`]. Behavioral contract (pinned by
/// the agreement tests):
///
/// * comments → spaces, newlines kept;
/// * `"…"` / `b"…"` → the `b` prefix and both quotes kept, contents
///   spaced (newlines kept, so multi-line strings keep line numbers);
/// * raw strings → fully spaced including delimiters;
/// * char literals → spaced (a `b` prefix is kept);
/// * everything else verbatim.
pub fn strip_via_lexer(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    for tok in lex(src) {
        match tok.kind {
            TokenKind::LineComment | TokenKind::BlockComment { .. } => {
                space_preserving_newlines(&mut out, tok.text);
            }
            TokenKind::RawStrLit { .. } => {
                space_preserving_newlines(&mut out, tok.text);
            }
            TokenKind::StrLit { terminated } => {
                let mut chars = tok.text.chars().peekable();
                // Optional `b` prefix stays.
                if chars.peek() == Some(&'b') {
                    out.push('b');
                    chars.next();
                }
                // Opening quote stays.
                if chars.peek() == Some(&'"') {
                    out.push('"');
                    chars.next();
                }
                let inner: Vec<char> = chars.collect();
                let content_len = if terminated {
                    inner.len().saturating_sub(1)
                } else {
                    inner.len()
                };
                for &c in &inner[..content_len] {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
                if terminated {
                    out.push('"');
                }
            }
            TokenKind::CharLit => {
                let mut chars = tok.text.chars().peekable();
                if chars.peek() == Some(&'b') {
                    out.push('b');
                    chars.next();
                }
                for c in chars {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.push_str(tok.text),
        }
    }
    out
}

fn space_preserving_newlines(out: &mut String, text: &str) {
    for c in text.chars() {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexing_is_lossless() {
        let src = "fn f<'a>(x: &'a str) -> u64 {\n    // c\n    let s = r#\"raw \"q\" \"#;\n    let b = b\"bytes\\n\";\n    let c = '\\'';\n    0x1F + 1.5e3\n}\n";
        let toks = lex(src);
        let joined: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn raw_strings_all_hash_depths() {
        for (src, rest) in [
            (r####"r"x""####, ""),
            ("r#\"x\"#", ""),
            ("r##\"a\"# b\"##", ""),
            ("br#\"bytes\"#", ""),
        ] {
            let toks = lex(src);
            assert_eq!(
                toks[0].kind,
                TokenKind::RawStrLit { terminated: true },
                "{src}"
            );
            assert_eq!(toks[0].text, src);
            assert!(rest.is_empty());
        }
        // Unterminated raw string consumes to EOF.
        let toks = lex("r##\"never closed\"#");
        assert_eq!(toks[0].kind, TokenKind::RawStrLit { terminated: false });
    }

    #[test]
    fn raw_idents_are_idents_not_strings() {
        let toks = lex("let r#type = 5;");
        let ident = toks.iter().find(|t| t.text == "r#type").expect("r#type");
        assert_eq!(ident.kind, TokenKind::Ident);
    }

    #[test]
    fn idents_ending_in_r_do_not_open_raw_strings() {
        // `bar` then a normal string — the `r` is part of the identifier.
        let toks = kinds("bar\"x\"");
        assert_eq!(
            toks,
            vec![TokenKind::Ident, TokenKind::StrLit { terminated: true }]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks[0].kind, TokenKind::BlockComment { terminated: true });
        assert_eq!(toks[0].text, "/* a /* b */ c */");
        // Unterminated nesting runs to EOF.
        let toks = lex("/* /* */");
        assert_eq!(toks[0].kind, TokenKind::BlockComment { terminated: false });
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str");
        assert!(toks.contains(&TokenKind::Lifetime));
        assert!(!toks.contains(&TokenKind::CharLit));
        for lit in ["'x'", "'\\n'", "'\\''", "b'q'", "'\\u{41}'"] {
            let toks = lex(lit);
            assert_eq!(toks[0].kind, TokenKind::CharLit, "{lit}");
            assert_eq!(toks[0].text, lit, "{lit}");
        }
    }

    #[test]
    fn positions_are_line_col_tracked() {
        let src = "fn f() {\n    let x = 1;\n}\n";
        let toks = lex(src);
        let x = toks.iter().find(|t| t.text == "x").expect("x token");
        assert_eq!((x.line, x.col), (2, 9));
        let one = toks.iter().find(|t| t.text == "1").expect("1 token");
        assert_eq!((one.line, one.col), (2, 13));
    }

    #[test]
    fn strip_preserves_line_structure_in_multiline_strings() {
        let src = "let s = \"line one\\\n   continued\";\nlet t = 1;\n";
        let stripped = strip_via_lexer(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        // The contents are spaced but the newline of the `\<newline>`
        // continuation survives, so later lines keep their numbers.
        assert_eq!(stripped.lines().nth(2), Some("let t = 1;"));
        assert_eq!(stripped.lines().nth(1).map(str::trim), Some("\";"));
    }

    #[test]
    fn strip_keeps_code_and_spaces_literals() {
        let src = "let a = \"secret.unwrap()\"; // panic! here\nlet b = r#\"also panic!\"#;\n";
        let s = strip_via_lexer(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("let a = \""));
        assert!(s.contains("let b = "));
    }
}
