//! Property tests for the wire protocol: decoding must be total (never
//! panic on arbitrary bytes) and inverse to encoding.

use bytes::Bytes;
use ecc_net::protocol::{
    decode_get_many, decode_keys, decode_range_stats, decode_records, decode_stats,
    decode_statuses, encode_get_many, encode_keys, encode_records, encode_stats, encode_statuses,
    read_frame, write_frame, Request, Response, Status,
};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|key| Request::Get { key }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)).prop_map(|(key, v)| {
            Request::Put {
                key,
                value: Bytes::from(v),
            }
        }),
        any::<u64>().prop_map(|key| Request::Remove { key }),
        (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Request::Sweep { lo, hi }),
        (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Request::Keys { lo, hi }),
        (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Request::RangeStats { lo, hi }),
        Just(Request::Stats),
        Just(Request::Ping),
        Just(Request::Shutdown),
        proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..20,
        )
        .prop_map(|items| Request::PutMany {
            items: items
                .into_iter()
                .map(|(k, v)| (k, Bytes::from(v)))
                .collect(),
        }),
        proptest::collection::vec(any::<u64>(), 0..50).prop_map(|keys| Request::GetMany { keys }),
        proptest::collection::vec(any::<u64>(), 0..50).prop_map(|keys| Request::EvictMany { keys }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(req.encode()), Some(req));
    }

    #[test]
    fn response_roundtrip(
        status in prop_oneof![
            Just(Status::Ok),
            Just(Status::NotFound),
            Just(Status::Overflow),
            Just(Status::BadRequest),
        ],
        body in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let resp = Response { status, body: Bytes::from(body) };
        prop_assert_eq!(Response::decode(resp.encode()), Some(resp));
    }

    /// Decoding is total: arbitrary bytes either parse or return None —
    /// never panic, never loop (a malicious peer cannot crash a server).
    #[test]
    fn request_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Request::decode(Bytes::from(bytes));
    }

    #[test]
    fn response_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Response::decode(Bytes::from(bytes));
    }

    #[test]
    fn record_batch_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_records(Bytes::from(bytes));
    }

    #[test]
    fn key_list_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_keys(Bytes::from(bytes.clone()));
        let _ = decode_stats(Bytes::from(bytes.clone()));
        let _ = decode_range_stats(Bytes::from(bytes));
    }

    #[test]
    fn batch_body_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_statuses(Bytes::from(bytes.clone()));
        let _ = decode_get_many(Bytes::from(bytes));
    }

    #[test]
    fn status_lists_roundtrip(
        statuses in proptest::collection::vec(
            prop_oneof![
                Just(Status::Ok),
                Just(Status::NotFound),
                Just(Status::Overflow),
                Just(Status::BadRequest),
            ],
            0..100,
        ),
    ) {
        prop_assert_eq!(decode_statuses(encode_statuses(&statuses)), Some(statuses));
    }

    #[test]
    fn get_many_bodies_roundtrip(
        entries in proptest::collection::vec(
            prop_oneof![
                2 => proptest::collection::vec(any::<u8>(), 0..64).prop_map(Some),
                1 => Just(None),
            ],
            0..30,
        ),
    ) {
        prop_assert_eq!(decode_get_many(encode_get_many(&entries)), Some(entries));
    }

    #[test]
    fn record_batches_roundtrip(
        records in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..30,
        ),
    ) {
        let enc = encode_records(&records);
        prop_assert_eq!(decode_records(enc), Some(records));
    }

    #[test]
    fn key_lists_roundtrip(keys in proptest::collection::vec(any::<u64>(), 0..100)) {
        prop_assert_eq!(decode_keys(encode_keys(&keys)), Some(keys));
    }

    #[test]
    fn stats_roundtrip(used: u64, count: u64, cap: u64) {
        prop_assert_eq!(decode_stats(encode_stats(used, count, cap)), Some((used, count, cap)));
    }

    /// Frames written then read give back the payload; truncated frames
    /// error instead of hanging or panicking.
    #[test]
    fn frames_roundtrip_and_truncation_errors(
        payload in proptest::collection::vec(any::<u8>(), 0..500),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let frame = read_frame(&mut cursor).unwrap();
        prop_assert_eq!(frame.as_ref(), &payload[..]);

        if buf.len() > 1 {
            let cut_at = 1 + cut.index(buf.len() - 1);
            if cut_at < buf.len() {
                let mut cursor = std::io::Cursor::new(&buf[..cut_at]);
                prop_assert!(read_frame(&mut cursor).is_err());
            }
        }
    }
}
