//! Property tests for the wire protocol: decoding must be total (never
//! panic on arbitrary bytes) and inverse to encoding.

use bytes::Bytes;
use ecc_net::protocol::{
    decode_get_many, decode_keys, decode_range_stats, decode_records, decode_stats,
    decode_statuses, decode_with_trace, encode_get_many, encode_keys, encode_range_stats,
    encode_records, encode_stats, encode_statuses, encode_traced, read_frame, write_frame, Request,
    Response, Status, TraceContext, TRACE_EXT_OPCODE, TRACE_EXT_VERSION,
};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|key| Request::Get { key }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)).prop_map(|(key, v)| {
            Request::Put {
                key,
                value: Bytes::from(v),
            }
        }),
        any::<u64>().prop_map(|key| Request::Remove { key }),
        (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Request::Sweep { lo, hi }),
        (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Request::Keys { lo, hi }),
        (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Request::RangeStats { lo, hi }),
        Just(Request::Stats),
        Just(Request::Ping),
        Just(Request::Shutdown),
        Just(Request::ObsDump),
        proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..20,
        )
        .prop_map(|items| Request::PutMany {
            items: items
                .into_iter()
                .map(|(k, v)| (k, Bytes::from(v)))
                .collect(),
        }),
        proptest::collection::vec(any::<u64>(), 0..50).prop_map(|keys| Request::GetMany { keys }),
        proptest::collection::vec(any::<u64>(), 0..50).prop_map(|keys| Request::EvictMany { keys }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(req.encode()), Some(req));
    }

    #[test]
    fn response_roundtrip(
        status in prop_oneof![
            Just(Status::Ok),
            Just(Status::NotFound),
            Just(Status::Overflow),
            Just(Status::BadRequest),
        ],
        body in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let resp = Response { status, body: Bytes::from(body) };
        prop_assert_eq!(Response::decode(resp.encode()), Some(resp));
    }

    /// Decoding is total: arbitrary bytes either parse or return None —
    /// never panic, never loop (a malicious peer cannot crash a server).
    #[test]
    fn request_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Request::decode(Bytes::from(bytes));
    }

    #[test]
    fn response_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Response::decode(Bytes::from(bytes));
    }

    #[test]
    fn record_batch_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_records(Bytes::from(bytes));
    }

    #[test]
    fn key_list_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_keys(Bytes::from(bytes.clone()));
        let _ = decode_stats(Bytes::from(bytes.clone()));
        let _ = decode_range_stats(Bytes::from(bytes));
    }

    #[test]
    fn batch_body_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_statuses(Bytes::from(bytes.clone()));
        let _ = decode_get_many(Bytes::from(bytes));
    }

    #[test]
    fn status_lists_roundtrip(
        statuses in proptest::collection::vec(
            prop_oneof![
                Just(Status::Ok),
                Just(Status::NotFound),
                Just(Status::Overflow),
                Just(Status::BadRequest),
            ],
            0..100,
        ),
    ) {
        prop_assert_eq!(decode_statuses(encode_statuses(&statuses)), Some(statuses));
    }

    #[test]
    fn get_many_bodies_roundtrip(
        entries in proptest::collection::vec(
            prop_oneof![
                2 => proptest::collection::vec(any::<u8>(), 0..64).prop_map(Some),
                1 => Just(None),
            ],
            0..30,
        ),
    ) {
        prop_assert_eq!(decode_get_many(encode_get_many(&entries)), Some(entries));
    }

    #[test]
    fn record_batches_roundtrip(
        records in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..30,
        ),
    ) {
        let enc = encode_records(&records);
        prop_assert_eq!(decode_records(enc), Some(records));
    }

    #[test]
    fn key_lists_roundtrip(keys in proptest::collection::vec(any::<u64>(), 0..100)) {
        prop_assert_eq!(decode_keys(encode_keys(&keys)), Some(keys));
    }

    #[test]
    fn obs_dump_bodies_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = ecc_obs::decode_dump(&bytes);
    }

    #[test]
    fn stats_roundtrip(used: u64, count: u64, cap: u64) {
        prop_assert_eq!(decode_stats(encode_stats(used, count, cap)), Some((used, count, cap)));
    }

    /// Adding `ObsDump` (0x0D) must not disturb how any pre-existing
    /// opcode encodes: the first payload byte is pinned per variant.
    #[test]
    fn opcode_bytes_are_stable_across_protocol_growth(req in arb_request()) {
        let enc = req.encode();
        let expected = match &req {
            Request::Get { .. } => 0x01u8,
            Request::Put { .. } => 0x02,
            Request::Remove { .. } => 0x03,
            Request::Sweep { .. } => 0x04,
            Request::Keys { .. } => 0x05,
            Request::Stats => 0x06,
            Request::Ping => 0x07,
            Request::Shutdown => 0x08,
            Request::RangeStats { .. } => 0x09,
            Request::PutMany { .. } => 0x0A,
            Request::GetMany { .. } => 0x0B,
            Request::EvictMany { .. } => 0x0C,
            Request::ObsDump => 0x0D,
        };
        prop_assert_eq!(enc.first().copied(), Some(expected));
    }

    /// The trace extension wraps *any* request losslessly, and plain
    /// frames pass through `decode_with_trace` exactly as `Request::decode`
    /// sees them — a traceless peer and a tracing peer agree on every
    /// untraced frame.
    #[test]
    fn traced_frames_roundtrip_and_plain_frames_pass_through(
        req in arb_request(),
        trace_id: u64,
        span_id: u64,
        parent: u64,
        sampled: bool,
    ) {
        let ctx = TraceContext { trace_id, span_id, parent_span_id: parent, sampled };
        let (got_ctx, got_req) = decode_with_trace(encode_traced(&ctx, &req)).unwrap();
        prop_assert_eq!(got_ctx, Some(ctx));
        prop_assert_eq!(&got_req, &req);

        let plain = decode_with_trace(req.encode());
        prop_assert_eq!(plain, Request::decode(req.encode()).map(|r| (None, r)));
    }

    /// `decode_with_trace` is total on arbitrary bytes, like `decode`.
    #[test]
    fn decode_with_trace_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_with_trace(Bytes::from(bytes));
    }

    /// Frames written then read give back the payload; truncated frames
    /// error instead of hanging or panicking.
    #[test]
    fn frames_roundtrip_and_truncation_errors(
        payload in proptest::collection::vec(any::<u8>(), 0..500),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let frame = read_frame(&mut cursor).unwrap();
        prop_assert_eq!(frame.as_ref(), &payload[..]);

        if buf.len() > 1 {
            let cut_at = 1 + cut.index(buf.len() - 1);
            if cut_at < buf.len() {
                let mut cursor = std::io::Cursor::new(&buf[..cut_at]);
                prop_assert!(read_frame(&mut cursor).is_err());
            }
        }
    }
}

/// Forward-compatibility guard: response bodies captured from the wire
/// *before* the `ObsDump` op existed must keep decoding bit-for-bit after
/// the protocol grew. These byte strings are frozen — if one of these
/// tests fails, the change broke every deployed peer.
mod golden_bytes {
    use super::*;

    /// A pre-ObsDump 24-byte `Stats` body: used=0x0102030405060708,
    /// count=0x1112131415161718, capacity=0x2122232425262728 (LE).
    #[test]
    fn legacy_stats_body_still_decodes() {
        let frozen: [u8; 24] = [
            0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // used
            0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11, // count
            0x28, 0x27, 0x26, 0x25, 0x24, 0x23, 0x22, 0x21, // capacity
        ];
        assert_eq!(
            decode_stats(Bytes::copy_from_slice(&frozen)),
            Some((0x0102030405060708, 0x1112131415161718, 0x2122232425262728))
        );
        // And the serializer still emits exactly those bytes.
        assert_eq!(
            encode_stats(0x0102030405060708, 0x1112131415161718, 0x2122232425262728).as_ref(),
            &frozen[..]
        );
    }

    /// A pre-ObsDump 16-byte `RangeStats` body: bytes=4096, records=7 (LE).
    #[test]
    fn legacy_range_stats_body_still_decodes() {
        let frozen: [u8; 16] = [
            0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // bytes = 4096
            0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // records = 7
        ];
        assert_eq!(
            decode_range_stats(Bytes::copy_from_slice(&frozen)),
            Some((4096, 7))
        );
        assert_eq!(encode_range_stats(4096, 7).as_ref(), &frozen[..]);
    }

    /// A pre-ObsDump `Stats` request frame is a single 0x06 byte; a
    /// pre-ObsDump `RangeStats` request is 0x09 + two LE u64s. Both must
    /// decode unchanged, and the new opcode must not shadow them.
    #[test]
    fn legacy_request_frames_still_decode() {
        assert_eq!(
            Request::decode(Bytes::from_static(&[0x06])),
            Some(Request::Stats)
        );
        let mut range = vec![0x09];
        range.extend_from_slice(&100u64.to_le_bytes());
        range.extend_from_slice(&200u64.to_le_bytes());
        assert_eq!(
            Request::decode(Bytes::from(range)),
            Some(Request::RangeStats { lo: 100, hi: 200 })
        );
        // The new opcode decodes strictly: exactly one byte, no payload.
        assert_eq!(
            Request::decode(Bytes::from_static(&[0x0D])),
            Some(Request::ObsDump)
        );
        assert_eq!(Request::decode(Bytes::from_static(&[0x0D, 0x00])), None);
    }

    /// The v1 traced `GET` frame, byte for byte: `0x0E` marker, version 1,
    /// 25-byte extension (flags=1 sampled, trace/span/parent ids LE), then
    /// the ordinary 9-byte GET payload. Frozen: a tracing client built today
    /// must emit exactly this against every future server.
    #[test]
    fn traced_frame_bytes_are_frozen() {
        let ctx = TraceContext {
            trace_id: 0x1122334455667788,
            span_id: 0x0000_0A00_0000_0001, // origin 10, seq 1
            parent_span_id: 0,
            sampled: true,
        };
        let frozen: [u8; 37] = [
            0x0E, 0x01, 0x19, // marker, version, ext_len = 25
            0x01, // flags: sampled
            0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // trace_id
            0x01, 0x00, 0x00, 0x00, 0x00, 0x0A, 0x00, 0x00, // span_id
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // parent
            0x01, // inner opcode: GET
            0x2A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // key = 42
        ];
        assert_eq!(TRACE_EXT_OPCODE, 0x0E);
        assert_eq!(TRACE_EXT_VERSION, 0x01);
        assert_eq!(
            encode_traced(&ctx, &Request::Get { key: 42 }).as_ref(),
            &frozen[..]
        );
        assert_eq!(
            decode_with_trace(Bytes::copy_from_slice(&frozen)),
            Some((Some(ctx), Request::Get { key: 42 }))
        );
    }

    /// The extension marker must never collide with a request opcode: a
    /// traced frame is unambiguous at the first byte.
    #[test]
    fn trace_marker_is_not_an_opcode() {
        assert_eq!(ecc_net::protocol::Op::from_u8(TRACE_EXT_OPCODE), None);
    }
}
