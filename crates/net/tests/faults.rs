//! Coordinator/server fault-path tests: a misbehaving peer — half-written
//! frames, vanishing clients, nodes that accept but never answer — must
//! never wedge the server or hang the client. After every injected fault a
//! *fresh* client performs a full put/get round-trip to prove the server is
//! still serving.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use ecc_net::client::RemoteNode;
use ecc_net::protocol::{read_frame, write_frame, Op, Request, Status};
use ecc_net::server::CacheServer;

/// The post-fault liveness probe every test ends with.
fn assert_still_serving(server: &CacheServer, key: u64) {
    let mut client = RemoteNode::connect(server.addr()).expect("fresh connection after the fault");
    assert!(client.ping().expect("ping after the fault"));
    assert_eq!(
        client.put(key, vec![key as u8; 16]).expect("put"),
        Status::Ok
    );
    assert_eq!(client.get(key).expect("get"), Some(vec![key as u8; 16]));
}

#[test]
fn half_written_frame_does_not_wedge_the_server() {
    let mut server = CacheServer::spawn(10_000, 8).expect("spawn");

    // Promise a 100-byte frame, deliver 10, and vanish. The connection
    // thread blocks in read_exact until the socket closes, then must treat
    // the truncation as EOF — not corrupt shared state or spin.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&100u32.to_le_bytes()).expect("length prefix");
    raw.write_all(&[0xAB; 10]).expect("partial body");
    raw.flush().expect("flush");
    drop(raw);

    assert_still_serving(&server, 1);
    server.stop();
}

#[test]
fn client_disconnect_mid_response_does_not_wedge_the_server() {
    let mut server = CacheServer::spawn(1 << 20, 8).expect("spawn");

    // Park a large record so the response spans many TCP segments.
    let mut loader = RemoteNode::connect(server.addr()).expect("connect");
    assert_eq!(
        loader.put(7, vec![0x5A; 512 * 1024]).expect("put"),
        Status::Ok
    );
    drop(loader);

    // Request it over a raw socket and slam the connection before reading
    // a single response byte: the server's write hits a reset pipe.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut raw, &Request::Get { key: 7 }.encode()).expect("request");
    drop(raw);

    assert_still_serving(&server, 2);
    server.stop();
}

#[test]
fn truncated_put_many_is_rejected_whole() {
    let mut server = CacheServer::spawn(10_000, 8).expect("spawn");

    // A complete frame whose PutMany payload lies: the count promises two
    // items but the body carries one. The server must reject the whole
    // batch (no partial application) and keep the connection alive.
    let mut payload = vec![Op::PutMany as u8];
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&41u64.to_le_bytes());
    payload.extend_from_slice(&3u32.to_le_bytes());
    payload.extend_from_slice(b"abc");
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut raw, &payload).expect("send");
    let resp = read_frame(&mut raw).expect("response");
    assert_eq!(Status::from_u8(resp[0]), Some(Status::BadRequest));

    // The same connection still answers, and not even the first (fully
    // present) item of the bad batch was applied.
    write_frame(&mut raw, &Request::Get { key: 41 }.encode()).expect("probe");
    let resp = read_frame(&mut raw).expect("probe response");
    assert_eq!(Status::from_u8(resp[0]), Some(Status::NotFound));

    assert_still_serving(&server, 4);
    server.stop();
}

#[test]
fn oversized_batch_count_prefix_is_rejected_without_allocating() {
    let mut server = CacheServer::spawn(10_000, 8).expect("spawn");
    let mut raw = TcpStream::connect(server.addr()).expect("connect");

    // A hostile count prefix (u32::MAX items in a 4-byte body) must be
    // refused up front — were the server to trust it, the reservation
    // alone would be a multi-GB allocation.
    for op in [Op::PutMany, Op::GetMany, Op::EvictMany] {
        let mut payload = vec![op as u8];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        write_frame(&mut raw, &payload).expect("send");
        let resp = read_frame(&mut raw).expect("response");
        assert_eq!(
            Status::from_u8(resp[0]),
            Some(Status::BadRequest),
            "{op:?} with a hostile count must be rejected"
        );
    }

    assert_still_serving(&server, 5);
    server.stop();
}

#[test]
fn batch_partial_failure_reports_per_item_status_and_connection_survives() {
    // Capacity fits the first record but not the second: the batch must
    // come back [Ok, Overflow, Ok] — a refused item is a verdict, not an
    // error, and the connection keeps serving. Footprints: the 60-byte
    // values occupy 80-byte slabs slots, the 10-byte value a 64-byte one.
    let mut server = CacheServer::spawn(150, 8).expect("spawn");
    let mut client = RemoteNode::connect(server.addr()).expect("connect");
    let statuses = client
        .put_many(vec![
            (1, Bytes::from(vec![0xA1; 60])),
            (2, Bytes::from(vec![0xA2; 60])),
            (3, Bytes::from(vec![0xA3; 10])),
        ])
        .expect("put_many");
    assert_eq!(statuses, vec![Status::Ok, Status::Overflow, Status::Ok]);
    assert_eq!(client.get(1).expect("get"), Some(vec![0xA1; 60]));
    assert_eq!(client.get(2).expect("get"), None);
    assert_eq!(client.get(3).expect("get"), Some(vec![0xA3; 10]));

    // Mixed present/absent eviction: per-key verdicts in request order.
    let verdicts = client.evict_many(&[2, 1, 3]).expect("evict_many");
    assert_eq!(verdicts, vec![Status::NotFound, Status::Ok, Status::Ok]);
    let entries = client.get_many(&[1, 2, 3]).expect("get_many");
    assert_eq!(entries, vec![None, None, None]);

    assert_still_serving(&server, 6);
    server.stop();
}

#[test]
fn never_answering_node_times_out_instead_of_hanging() {
    // A "node" that accepts connections and then goes silent — the
    // black-hole failure mode a coordinator must bound with timeouts.
    let sink = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = sink.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Keep the accepted socket alive so the client sees an open,
        // silent peer rather than a reset.
        let held = sink.accept();
        std::thread::sleep(Duration::from_secs(1));
        drop(held);
    });

    let timeout = Duration::from_millis(200);
    let mut client = RemoteNode::connect_with_timeout(addr, timeout).expect("connect");
    let t0 = Instant::now();
    let err = client.get(1).expect_err("a silent peer must not answer");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a timeout, got {err:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "client hung on a silent peer for {:?}",
        t0.elapsed()
    );
    hold.join().expect("sink thread");

    // A healthy server next to the black hole is unaffected.
    let mut server = CacheServer::spawn(10_000, 8).expect("spawn");
    assert_still_serving(&server, 3);
    server.stop();
}
