//! Review repro: peer that dies mid-frame (graceful FIN after a partial
//! frame body) should free its connection slot.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use ecc_net::client::RemoteNode;
use ecc_net::server::CacheServer;

#[test]
fn partial_frame_then_eof_frees_slot() {
    // Bound of 1: if the dead connection's slot leaks, the next connect
    // is refused with Busy.
    let mut server = CacheServer::spawn_bounded(("127.0.0.1", 0), 1 << 20, 8, 1).unwrap();
    let addr = server.addr();

    {
        let mut raw = TcpStream::connect(addr).unwrap();
        // Length prefix claims 100 bytes, only 10 arrive, then FIN.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
        raw.flush().unwrap();
    } // drop = graceful close

    // Give the reactor ample time to observe EOF and (ideally) close.
    std::thread::sleep(Duration::from_millis(200));

    let mut c = RemoteNode::connect(addr).expect("connect after dead peer");
    assert!(
        c.ping().expect("slot should have been freed"),
        "ping failed"
    );
    server.stop();
}
