//! Event-driven multi-reactor connection engine.
//!
//! PR 5's thread-per-connection server spent its budget on context
//! switches: every request woke a dedicated blocking thread for one frame,
//! so wire throughput *fell* as workers grew (`wire_node_w1..w8` inverted,
//! 84k → 70k ops/s) while the in-process node did 5M GETs/s. This module
//! replaces that with N **reactor threads**, each owning a disjoint slice
//! of connections handed off round-robin by the acceptor:
//!
//! * **Nonblocking sockets, level sampling.** Each sweep, a reactor polls
//!   every owned connection with a nonblocking `read` into that
//!   connection's reused [`FrameAssembler`] buffer. (The workspace bans
//!   `unsafe`, so there is no raw `epoll`; an idle reactor backs off
//!   adaptively — spin, then `yield_now`, then bounded `park_timeout` —
//!   and the acceptor unparks it when it hands off a connection.)
//! * **Request pipelining.** Every complete frame that arrived is decoded
//!   and executed back-to-back against the shared `ShardedNode`; the
//!   responses accumulate in the connection's write queue and are flushed
//!   with a *single* gathered `write` per sweep. One wakeup can retire an
//!   entire burst — syscalls amortize across the pipeline depth instead
//!   of costing two context switches per request.
//! * **Connection ownership.** A connection lives on exactly one reactor
//!   for its whole life, so per-connection state (assembler, write queue)
//!   is plain mutable data — no locks, no cross-reactor work stealing,
//!   nothing for the lock-order auditor to even see.
//! * **Backpressure.** A connection whose peer stops draining responses
//!   accumulates at most [`WRITE_HIGH_WATER`] queued bytes; past that the
//!   reactor parks its read side until the queue drains, mirroring the
//!   old blocking server's natural backpressure.
//!
//! Observability: `reactor_dispatch_us` histograms wakeup-with-data →
//! responses fully flushed (the queueing+execution slice of wire RTT), and
//! `reactor_frames_per_wake` histograms the burst size each wakeup
//! retired — the direct measure of how well pipelining amortizes.

use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use ecc_core::ShardedNode;
use ecc_obs::{ObsEvent, ObsRegistry};

use crate::protocol::{
    append_frame, decode_with_trace, FrameAssembler, Request, Response, Status, TraceContext,
};
use crate::server::{handle, op_hist_name, ConnSlot};

/// Default reactor-thread count: one per core up to 4. Cache serving is
/// memory-bound long before 4 reactors saturate; more threads on few cores
/// just reintroduces the context-switch tax this module removes.
pub const DEFAULT_REACTOR_THREADS: usize = 4;

/// Pending-response bytes above which a connection's read side is parked
/// until the peer drains (slow-consumer backpressure).
const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Unproductive sweeps a reactor tolerates before it starts parking
/// (below this it only yields, keeping closed-loop RTT tight).
const HOT_SWEEPS: u32 = 64;

/// Longest a reactor parks between idle sweeps. Bounds both the latency
/// penalty of a request arriving into a cold reactor and the time for a
/// reactor to notice `halt`/`shutdown`.
const MAX_PARK: Duration = Duration::from_millis(1);

/// Pick the spawn-time reactor count: the configured override, else
/// [`DEFAULT_REACTOR_THREADS`] capped by available parallelism.
pub(crate) fn effective_reactors(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(1, DEFAULT_REACTOR_THREADS),
    }
}

/// One connection owned by a reactor thread.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    /// Encoded-but-unflushed response frames.
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf`.
    wpos: usize,
    /// Peer sent EOF: serve what already arrived, flush, then close.
    got_eof: bool,
    /// Close once `wbuf` drains (the connection that requested Shutdown).
    close_after_flush: bool,
    /// Frees this connection's slot under the accept bound on drop.
    _slot: ConnSlot,
}

impl Conn {
    fn new(stream: TcpStream, slot: ConnSlot) -> Conn {
        Conn {
            stream,
            asm: FrameAssembler::new(),
            wbuf: Vec::new(), // xtask: allow(no-global-alloc-in-hot-path) — once per accept
            wpos: 0,
            got_eof: false,
            close_after_flush: false,
            _slot: slot,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Write as much of the queue as the socket accepts right now.
    /// Returns whether any bytes moved.
    fn flush(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(progressed)
    }
}

/// What everything on a reactor's request path shares.
pub(crate) struct ReactorShared {
    /// The node every request executes against.
    pub node: Arc<ShardedNode>,
    /// Shared histogram/event registry (the `ObsDump` store).
    pub obs: ObsRegistry,
    /// Wire-visible shutdown flag (set by the `Shutdown` op and `stop()`).
    pub shutdown: Arc<AtomicBool>,
    /// `stop()`-only flag: drain pending writes and exit now.
    pub halt: Arc<AtomicBool>,
}

/// The acceptor's handle to the reactor fleet: round-robin handoff of
/// admitted connections, waking the target reactor.
pub(crate) struct Handoff {
    senders: Vec<channel::Sender<(TcpStream, ConnSlot)>>,
    threads: Vec<std::thread::Thread>,
    next: usize,
}

impl Handoff {
    /// Assign one admitted connection to the next reactor in rotation.
    pub fn dispatch(&mut self, stream: TcpStream, slot: ConnSlot) {
        let i = self.next;
        self.next = (self.next + 1) % self.senders.len();
        // A send can only fail if the reactor already exited (post-
        // shutdown race); dropping the stream then reads as EOF to the
        // client, matching the old accept loop's post-shutdown behavior.
        if self.senders[i].send((stream, slot)).is_ok() {
            self.threads[i].unpark();
        }
    }
}

/// The server's handle: join the fleet on `stop()`.
pub(crate) struct ReactorPool {
    threads: Vec<std::thread::Thread>,
    handles: Vec<JoinHandle<()>>,
}

impl ReactorPool {
    /// Wake every reactor (so parked threads notice `halt`) and join.
    pub fn join(&mut self) {
        for t in &self.threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn `n` reactor threads sharing `shared`; returns the acceptor-side
/// handoff and the join handle set.
pub(crate) fn spawn_reactors(
    n: usize,
    port: u16,
    shared: &ReactorShared,
) -> io::Result<(Handoff, ReactorPool)> {
    let mut senders = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    let mut threads = Vec::with_capacity(n);
    for i in 0..n {
        let (tx, rx) = channel::unbounded::<(TcpStream, ConnSlot)>();
        let shared = ReactorShared {
            node: Arc::clone(&shared.node),
            obs: shared.obs.clone(),
            shutdown: Arc::clone(&shared.shutdown),
            halt: Arc::clone(&shared.halt),
        };
        let handle = std::thread::Builder::new()
            .name(format!("ecc-reactor-{port}-{i}"))
            .spawn(move || reactor_loop(rx, shared))?;
        threads.push(handle.thread().clone());
        senders.push(tx);
        handles.push(handle);
    }
    Ok((
        Handoff {
            senders,
            threads: threads.clone(),
            next: 0,
        },
        ReactorPool { threads, handles },
    ))
}

/// One reactor thread: adopt handed-off connections, sweep owned
/// connections (read → decode/execute every arrived frame → one flush),
/// and back off adaptively when a sweep makes no progress.
fn reactor_loop(rx: channel::Receiver<(TcpStream, ConnSlot)>, shared: ReactorShared) {
    let mut conns: Vec<Conn> = Vec::new(); // xtask: allow(no-global-alloc-in-hot-path) — startup
    let mut idle_sweeps: u32 = 0;
    loop {
        let mut progress = false;
        while let Some((stream, slot)) = rx.try_recv() {
            if stream.set_nonblocking(true).is_ok() {
                conns.push(Conn::new(stream, slot));
            }
            progress = true;
        }

        let mut i = 0;
        while i < conns.len() {
            match sweep_conn(&mut conns[i], &shared) {
                Ok(Sweep::Progress(p)) => {
                    progress |= p;
                    i += 1;
                }
                Ok(Sweep::Close) | Err(_) => {
                    // Closing is progress: the freed slot readmits a
                    // waiting client at the accept bound.
                    progress = true;
                    drop(conns.swap_remove(i));
                }
            }
        }

        // Acquire pairs with the Release stores of the flags' writers.
        if shared.halt.load(Ordering::Acquire) {
            for conn in &mut conns {
                let _ = conn.flush();
            }
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) && conns.is_empty() {
            // Wire-initiated shutdown: exit once the served connections
            // drain (the acceptor stops admitting; `stop()` may never be
            // called, so the reactor must wind down on its own).
            return;
        }

        if progress {
            idle_sweeps = 0;
            continue;
        }
        idle_sweeps = idle_sweeps.saturating_add(1);
        if idle_sweeps < HOT_SWEEPS {
            // Hot window: give peers the core (essential on small hosts
            // where client and reactor share it) but stay runnable.
            std::thread::yield_now();
        } else {
            // Cold: park with exponential backoff, 30µs doubling to
            // MAX_PARK. The acceptor unparks on handoff; data arriving on
            // an owned socket is discovered at the next timed wake.
            let exp = (idle_sweeps - HOT_SWEEPS).min(5);
            let park = Duration::from_micros(30u64 << exp).min(MAX_PARK);
            std::thread::park_timeout(park);
        }
    }
}

/// Execute one decoded frame, opening the server-side span triplet when
/// the frame carried a sampled trace context: `srv` (back-dated to the
/// sweep wakeup `t_wake`, parented under the client's wire span), a
/// `srv_queue` child covering wakeup → execute (per-frame arrival is not
/// individually timestamped, so queueing is attributed from the sweep
/// wakeup), and `srv_exec` around `handle()` — whose own descendants
/// (`lock_wait` in the sharded node) attach through the thread-local span
/// stack. `srv` closes when the response is produced; the flush that
/// follows is charged to the client's network share.
fn serve_traced(
    ctx: Option<TraceContext>,
    req: Request,
    shared: &ReactorShared,
    t_wake: u64,
) -> Response {
    let srv = ctx.filter(|c| c.sampled).map(|c| {
        let srv = shared
            .obs
            .span_start_at("srv", c.trace_id, c.span_id, t_wake);
        drop(
            shared
                .obs
                .span_start_at("srv_queue", c.trace_id, srv.id(), t_wake),
        );
        srv
    });
    let exec = srv
        .as_ref()
        .map(|s| shared.obs.span_start("srv_exec", s.trace_id(), s.id()));
    let resp = handle(req, &shared.node, &shared.shutdown, &shared.obs);
    drop(exec);
    drop(srv);
    resp
}

/// Per-sweep verdict for one connection.
enum Sweep {
    /// Keep the connection; `true` if any bytes or frames moved.
    Progress(bool),
    /// Close the connection (clean EOF or explicit shutdown).
    Close,
}

/// One sweep over one connection: ingest whatever the socket has, retire
/// every complete frame against the node, flush the response queue.
fn sweep_conn(conn: &mut Conn, shared: &ReactorShared) -> io::Result<Sweep> {
    let mut progress = false;

    // Read until the socket runs dry — skipped while the peer is a slow
    // consumer with a full write queue (backpressure).
    if !conn.got_eof && !conn.close_after_flush && conn.pending_write() < WRITE_HIGH_WATER {
        loop {
            match conn.asm.fill_from_hinted(&mut conn.stream) {
                Ok((0, _)) => {
                    conn.got_eof = true;
                    break;
                }
                Ok((_, drained)) => {
                    progress = true;
                    // A short read means the socket ran dry: skip the
                    // would-block probe (level polling catches any bytes
                    // that arrive after this instant on the next sweep).
                    if drained {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
    }

    // Decode and execute every frame that fully arrived. `t_wake` to
    // flush-complete is the `reactor_dispatch_us` sample.
    let t_wake = if conn.asm.buffered() > 0 {
        Some(shared.obs.now_us())
    } else {
        None
    };
    let mut dispatched: u64 = 0;
    let mut shutdown_requested = false;
    let mut framing_error: Option<io::Error> = None;
    let Conn { asm, wbuf, .. } = conn;
    loop {
        let frame = match asm.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            // Framing lost (oversized length prefix): fall through to a
            // best-effort flush of responses already owed, then drop the
            // connection — exactly what the blocking server's
            // per-connection error exit did.
            Err(e) => {
                framing_error = Some(e);
                break;
            }
        };
        let op_byte = frame.first().copied().unwrap_or(0);
        shared.obs.emit(ObsEvent::FrameRx {
            at_us: shared.obs.now_us(),
            op: op_byte,
            bytes: frame.len() as u64,
        });
        let t0 = shared.obs.now_us();
        let (resp, is_shutdown, hist) = match decode_with_trace(frame) {
            Some((ctx, req)) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let hist = op_hist_name(Some(req.op()));
                let resp = serve_traced(ctx, req, shared, t_wake.unwrap_or(t0));
                (resp, is_shutdown, hist)
            }
            None => (
                Response::status(Status::BadRequest),
                false,
                op_hist_name(None),
            ),
        };
        // Request boundary: every `handle()` must return with all
        // ShardedNode guards released — a guard surviving into the next
        // pipelined frame would block every connection on that stripe.
        // Debug-build check, compiled out in release.
        ecc_core::lockorder::assert_quiescent();
        shared.obs.record(hist, shared.obs.now_us() - t0);
        append_frame(wbuf, |b| resp.encode_into(b))?;
        shared.obs.emit(ObsEvent::FrameTx {
            at_us: shared.obs.now_us(),
            op: op_byte,
            bytes: resp.body.len() as u64 + 1,
        });
        dispatched += 1;
        if is_shutdown {
            shutdown_requested = true;
            break;
        }
    }
    conn.close_after_flush |= shutdown_requested;
    if dispatched > 0 {
        progress = true;
        shared.obs.record("reactor_frames_per_wake", dispatched);
    }

    // One gathered write for every response this sweep produced (plus any
    // residue a previous partial write left behind).
    progress |= conn.flush()?;
    if let Some(e) = framing_error {
        return Err(e);
    }

    if dispatched > 0 && conn.pending_write() == 0 {
        if let Some(t_wake) = t_wake {
            shared
                .obs
                .record("reactor_dispatch_us", shared.obs.now_us() - t_wake);
        }
    }

    if conn.pending_write() == 0 && conn.close_after_flush {
        return Ok(Sweep::Close);
    }
    if conn.got_eof && conn.asm.buffered() < 4 && conn.pending_write() == 0 {
        // Peer closed and everything decodable has been served and
        // flushed (a trailing partial frame at EOF is discarded, matching
        // the blocking server's UnexpectedEof exit).
        return Ok(Sweep::Close);
    }
    Ok(Sweep::Progress(progress))
}
