//! Standalone cache-server binary — the unit a cloud image would launch on
//! boot ("the cache server is automatically fetched from a remote location
//! on the startup of a new Cloud instance", paper §III-A).
//!
//! ```text
//! cargo run --release -p ecc-net --bin cache_server -- \
//!     [--port 4117] [--capacity-mb 64] [--btree-order 64]
//! ```
//!
//! Serves the elastic-cache wire protocol (GET/PUT/REMOVE/SWEEP/KEYS/
//! RANGE_STATS/STATS/PING/SHUTDOWN) until a SHUTDOWN request arrives.

use std::process::ExitCode;
use std::time::Duration;

use ecc_net::client::RemoteNode;
use ecc_net::server::CacheServer;

struct Args {
    port: u16,
    capacity_mb: u64,
    btree_order: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 4117,
        capacity_mb: 64,
        btree_order: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--port" => {
                args.port = take("--port")?
                    .parse()
                    .map_err(|e| format!("bad port: {e}"))?
            }
            "--capacity-mb" => {
                args.capacity_mb = take("--capacity-mb")?
                    .parse()
                    .map_err(|e| format!("bad capacity: {e}"))?
            }
            "--btree-order" => {
                args.btree_order = take("--btree-order")?
                    .parse()
                    .map_err(|e| format!("bad order: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: cache_server [--port N] [--capacity-mb N] [--btree-order N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.btree_order < 4 {
        return Err("--btree-order must be at least 4".to_string());
    }
    if args.capacity_mb == 0 {
        return Err("--capacity-mb must be positive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let server = match CacheServer::spawn_on(
        ("0.0.0.0", args.port),
        args.capacity_mb * 1024 * 1024,
        args.btree_order,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind port {}: {e}", args.port);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cache server listening on {} ({} MiB capacity, B+-tree order {})",
        server.addr(),
        args.capacity_mb,
        args.btree_order
    );

    // Serve until a SHUTDOWN request lands (probed via loopback ping).
    let probe_addr = std::net::SocketAddr::from(([127, 0, 0, 1], server.addr().port()));
    loop {
        std::thread::sleep(Duration::from_millis(500));
        match RemoteNode::connect(probe_addr).and_then(|mut c| c.ping()) {
            Ok(true) => continue,
            _ => break,
        }
    }
    println!("cache server stopped");
    ExitCode::SUCCESS
}
