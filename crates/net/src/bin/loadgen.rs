//! Closed-loop load generator against one cache server.
//!
//! ```text
//! cargo run --release -p ecc-net --bin loadgen -- \
//!     [--workers 4] [--ops 20000] [--keys 1024] [--value-len 1024] \
//!     [--pipeline DEPTH] [--fanout CONNS] \
//!     [--scenario NAME [--steps N] [--seed N]] [--list-scenarios] \
//!     [--addr HOST:PORT | --spawn] [--json PATH] \
//!     [--trace-sample N [--trace-out PATH]]
//! ```
//!
//! `--workers N` runs N closed-loop worker threads (each a persistent
//! connection issuing GET-then-PUT-on-miss). With `--spawn` (the default
//! when no `--addr` is given) an ephemeral server is started in-process,
//! which is how the scaling smoke run in CI uses it.
//!
//! `--pipeline DEPTH` keeps up to DEPTH requests in flight per
//! connection (request frames batched into one write, responses retired
//! in order), exercising the server's per-connection pipelining. The
//! summary and `--json` output then carry per-depth RTT histograms
//! (`client_rtt_us:d<k>` = RTTs of requests enqueued with k in flight),
//! exposing how queueing depth stretches the tail. `--fanout CONNS`
//! (pipelined mode only) opens CONNS pipelined connections per worker,
//! rotated per request — scaling server-side connection count without
//! adding client threads.
//!
//! `--scenario NAME` replays a zoo scenario (`ecc_workload::scenario`)
//! instead of the uniform GET-then-PUT loop: the event stream is generated
//! deterministically from `--seed` over `--steps` time steps (defaulting
//! to the scenario's own horizon) and partitioned across the workers, so
//! the ops on the wire are a pure function of the seed. `--list-scenarios`
//! prints the registry and exits.
//!
//! The final summary merges the server's `ObsDump` snapshot with the
//! client-side RTT histograms: the merged histogram lands under
//! `client_rtt_us` and each worker's under `client_rtt_us:w<i>`, so a
//! straggling worker is visible next to the server's per-op latency.
//!
//! `--trace-sample N` (pipelined `--spawn` runs only) roots every N-th GET
//! per worker as a `req` span whose context rides the wire, so the server's
//! `srv` subtree nests under it. The merged client+server event stream is
//! written as JSONL to `--trace-out` (default `target/obs/trace.jsonl`) for
//! `cargo xtask trace`; sampled-out requests are tallied in the dump's
//! `spans_dropped` counter so the trace states how much it did NOT see.

use std::net::SocketAddr;
use std::process::ExitCode;

use ecc_chash::HashRing;
use ecc_net::client::RemoteNode;
use ecc_net::loadgen::{run_load, run_load_fanout_traced, run_scenario_load, TraceOpts};
use ecc_net::server::{CacheServer, DEFAULT_MAX_CONNECTIONS};
use ecc_obs::{ObsEvent, ObsRegistry, ObsSnapshot, TimeSource};
use ecc_workload::scenario::Scenario;

struct Args {
    workers: usize,
    ops: u64,
    keys: u64,
    value_len: usize,
    pipeline: Option<usize>,
    fanout: usize,
    addr: Option<SocketAddr>,
    json: Option<String>,
    scenario: Option<String>,
    steps: Option<u64>,
    seed: u64,
    trace_sample: Option<u64>,
    trace_out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 4,
        ops: 20_000,
        keys: 1024,
        value_len: 1024,
        pipeline: None,
        fanout: 1,
        addr: None,
        json: None,
        scenario: None,
        steps: None,
        seed: 7,
        trace_sample: None,
        trace_out: "target/obs/trace.jsonl".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?
            }
            "--ops" => {
                args.ops = take("--ops")?
                    .parse()
                    .map_err(|e| format!("bad op count: {e}"))?
            }
            "--keys" => {
                args.keys = take("--keys")?
                    .parse()
                    .map_err(|e| format!("bad key space: {e}"))?
            }
            "--value-len" => {
                args.value_len = take("--value-len")?
                    .parse()
                    .map_err(|e| format!("bad value length: {e}"))?
            }
            "--pipeline" => {
                args.pipeline = Some(
                    take("--pipeline")?
                        .parse()
                        .map_err(|e| format!("bad pipeline depth: {e}"))?,
                )
            }
            "--fanout" => {
                args.fanout = take("--fanout")?
                    .parse()
                    .map_err(|e| format!("bad fanout: {e}"))?
            }
            "--addr" => {
                args.addr = Some(
                    take("--addr")?
                        .parse()
                        .map_err(|e| format!("bad address: {e}"))?,
                )
            }
            "--spawn" => args.addr = None,
            "--json" => args.json = Some(take("--json")?),
            "--scenario" => {
                let name = take("--scenario")?;
                if Scenario::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown scenario {name:?}; known: {}",
                        Scenario::names().join(", ")
                    ));
                }
                args.scenario = Some(name);
            }
            "--steps" => {
                args.steps = Some(
                    take("--steps")?
                        .parse()
                        .map_err(|e| format!("bad step count: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--trace-sample" => {
                args.trace_sample = Some(
                    take("--trace-sample")?
                        .parse()
                        .map_err(|e| format!("bad trace sample rate: {e}"))?,
                )
            }
            "--trace-out" => args.trace_out = take("--trace-out")?,
            "--list-scenarios" => {
                for sc in Scenario::all() {
                    println!(
                        "{:<16} {} (default {} steps)",
                        sc.name(),
                        sc.summary(),
                        sc.default_steps()
                    );
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--workers N] [--ops N] [--keys N] [--value-len N] \
                     [--pipeline DEPTH] [--fanout CONNS] \
                     [--scenario NAME [--steps N] [--seed N]] [--list-scenarios] \
                     [--addr HOST:PORT | --spawn] [--json PATH] \
                     [--trace-sample N [--trace-out PATH]]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be positive".to_string());
    }
    if args.keys == 0 {
        return Err("--keys must be positive".to_string());
    }
    if args.pipeline == Some(0) {
        return Err("--pipeline depth must be positive".to_string());
    }
    if args.pipeline.is_some() && args.scenario.is_some() {
        return Err("--pipeline does not combine with --scenario (replays are serial)".to_string());
    }
    if args.fanout == 0 {
        return Err("--fanout must be positive".to_string());
    }
    if args.fanout > 1 && args.pipeline.is_none() {
        return Err(
            "--fanout needs --pipeline (serial workers are one connection each)".to_string(),
        );
    }
    if args.trace_sample == Some(0) {
        return Err("--trace-sample rate must be positive".to_string());
    }
    if args.trace_sample.is_some() && args.pipeline.is_none() {
        return Err(
            "--trace-sample needs --pipeline (tracing rides the pipelined path)".to_string(),
        );
    }
    if args.trace_sample.is_some() && args.addr.is_some() {
        return Err(
            "--trace-sample needs --spawn: the client and server recorders must \
             share one clock epoch for span intervals to nest"
                .to_string(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve the scenario (if any) and pre-generate its event stream —
    // deterministic from the seed, identical to what cloudsim replays.
    let scenario = args
        .scenario
        .as_deref()
        .and_then(Scenario::by_name)
        .map(|sc| {
            let steps = args.steps.unwrap_or_else(|| sc.default_steps());
            let events: Vec<_> = sc.events(args.seed, steps).collect();
            (sc, steps, events)
        });
    let key_space = scenario
        .as_ref()
        .map(|(sc, _, _)| sc.dist().space())
        .unwrap_or(args.keys);

    // Tracing needs the client recorder and the spawned server on one clock
    // epoch (origin 1 = server, 2 = client) so merged span intervals nest.
    let client_obs = args.trace_sample.map(|sample| {
        let obs = ObsRegistry::new(TimeSource::real());
        obs.set_origin(2);
        (obs, sample)
    });

    // Target: an existing server, or an ephemeral in-process one.
    let mut spawned: Option<CacheServer> = None;
    let addr = match args.addr {
        Some(a) => a,
        None => {
            // Capacity sized to hold the whole key space at this value
            // length, so the run measures latency, not overflow refusals.
            let capacity = (key_space * (args.value_len as u64 + 64)).max(1 << 20);
            let spawn_result = match &client_obs {
                Some((obs, _)) => CacheServer::spawn_clocked(
                    ("127.0.0.1", 0),
                    capacity,
                    64,
                    DEFAULT_MAX_CONNECTIONS,
                    None,
                    obs.time(),
                    1,
                ),
                None => CacheServer::spawn(capacity, 64),
            };
            match spawn_result {
                Ok(s) => {
                    let a = s.addr();
                    spawned = Some(s);
                    a
                }
                Err(e) => {
                    eprintln!("failed to spawn server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut ring: HashRing<usize> = HashRing::new(1 << 12);
    if let Err(e) = ring.insert_bucket((1 << 12) - 1, 0) {
        eprintln!("ring setup failed: {e:?}");
        return ExitCode::FAILURE;
    }
    let run_result = match &scenario {
        Some((sc, steps, events)) => {
            println!(
                "loadgen: scenario {} (seed {}, {} steps, {} events): {}",
                sc.name(),
                args.seed,
                steps,
                events.len(),
                sc.summary()
            );
            run_scenario_load(&ring, |_| addr, args.workers, events, args.value_len)
        }
        None => match args.pipeline {
            Some(depth) => {
                let trace_opts = client_obs.as_ref().map(|(obs, sample)| TraceOpts {
                    obs: obs.clone(),
                    sample: *sample,
                });
                run_load_fanout_traced(
                    &ring,
                    |_| addr,
                    args.workers,
                    args.fanout,
                    args.ops,
                    args.keys,
                    args.value_len,
                    depth,
                    trace_opts.as_ref(),
                )
            }
            None => run_load(
                &ring,
                |_| addr,
                args.workers,
                args.ops,
                args.keys,
                args.value_len,
            ),
        },
    };
    let report = match run_result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Merge the server's view with the client-side RTTs into one summary.
    let mut snap = RemoteNode::connect(addr)
        .and_then(|mut c| c.obs_dump())
        .unwrap_or_else(|_| ObsSnapshot::new());
    // With tracing on, fold the client recorder in (stable at_us sort keeps
    // start-before-end order) and persist the merged stream for xtask trace.
    if let Some((obs, _)) = &client_obs {
        snap.merge(&obs.snapshot());
        let path = std::path::Path::new(&args.trace_out);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(path, snap.to_jsonl()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let spans = snap
            .events
            .iter()
            .filter(|ev| matches!(ev, ObsEvent::SpanStart { .. }))
            .count();
        println!(
            "trace: {} span(s) across {} event(s) written to {} ({} request(s) sampled out, {} ring-dropped)",
            spans,
            snap.events.len(),
            args.trace_out,
            snap.spans_dropped,
            snap.dropped,
        );
        if snap.dropped > 0 {
            eprintln!(
                "trace: warning: a flight recorder overflowed ({} events lost) — \
                 span trees in the dump may be truncated; lower --ops or raise \
                 --trace-sample so the run fits the ring",
                snap.dropped
            );
        }
    }
    snap.hists
        .insert("client_rtt_us".to_string(), report.hist.clone());
    for (i, h) in report.worker_hists.iter().enumerate() {
        snap.hists.insert(format!("client_rtt_us:w{i}"), h.clone());
    }
    for (i, h) in report.depth_hists.iter().enumerate() {
        snap.hists
            .insert(format!("client_rtt_us:d{}", i + 1), h.clone());
    }

    let (p50, p95, p99) = report.latency_us;
    println!(
        "loadgen: {} workers, {} ops in {:.2?} -> {:.0} ops/s (hits {}, misses {}, errors {})",
        args.workers,
        report.ops,
        report.elapsed,
        report.throughput(),
        report.hits,
        report.misses,
        report.errors,
    );
    println!("client RTT p50/p95/p99: {p50}/{p95}/{p99} us");
    if let Some(depth) = args.pipeline {
        println!("pipeline depth {depth}; RTT by in-flight depth at enqueue:");
        for (i, h) in report.depth_hists.iter().enumerate() {
            if h.count() > 0 {
                println!(
                    "  depth {}: {} ops, p50 {} us, p99 {} us",
                    i + 1,
                    h.count(),
                    h.p50(),
                    h.p99()
                );
            }
        }
    }
    for (i, h) in report.worker_hists.iter().enumerate() {
        println!(
            "  worker {i}: {} ops, p50 {} us, p99 {} us",
            h.count(),
            h.p50(),
            h.p99()
        );
    }
    for name in [
        "server_op_us:get",
        "server_op_us:put",
        "lock_wait_us:stripe",
    ] {
        if let Some(h) = snap.hist(name) {
            println!("  {name}: count {}, p99 {} us", h.count(), h.p99());
        }
    }

    if let Some(path) = &args.json {
        let mut doc = String::new();
        doc.push_str("{\n");
        if let Some((sc, steps, _)) = &scenario {
            doc.push_str(&format!(
                "  \"scenario\": \"{}\",\n  \"seed\": {},\n  \"steps\": {},\n",
                sc.name(),
                args.seed,
                steps
            ));
        }
        doc.push_str(&format!("  \"workers\": {},\n", args.workers));
        doc.push_str(&format!("  \"ops\": {},\n", report.ops));
        doc.push_str(&format!("  \"errors\": {},\n", report.errors));
        doc.push_str(&format!(
            "  \"throughput_ops_per_sec\": {:.1},\n",
            report.throughput()
        ));
        doc.push_str(&format!(
            "  \"rtt_us\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}},\n"
        ));
        if let Some(depth) = args.pipeline {
            doc.push_str(&format!("  \"pipeline_depth\": {depth},\n"));
            doc.push_str("  \"rtt_by_depth\": [\n");
            let n = report.depth_hists.len();
            for (i, h) in report.depth_hists.iter().enumerate() {
                let sep = if i + 1 == n { "" } else { "," };
                doc.push_str(&format!(
                    "    {{\"depth\": {}, \"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}{sep}\n",
                    i + 1,
                    h.count(),
                    h.p50(),
                    h.p99()
                ));
            }
            doc.push_str("  ],\n");
        }
        doc.push_str("  \"obs\": [\n");
        let n = snap.hists.len();
        for (i, (name, h)) in snap.hists.iter().enumerate() {
            let sep = if i + 1 == n { "" } else { "," };
            doc.push_str(&format!(
                "    {{\"hist\": \"{name}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}{sep}\n",
                h.count(),
                h.p50(),
                h.p99()
            ));
        }
        doc.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary written to {path}");
    }

    if report.errors > 0 {
        return ExitCode::FAILURE;
    }
    drop(spawned);
    ExitCode::SUCCESS
}
