//! Closed-loop load generator against one cache server.
//!
//! ```text
//! cargo run --release -p ecc-net --bin loadgen -- \
//!     [--workers 4] [--ops 20000] [--keys 1024] [--value-len 1024] \
//!     [--addr HOST:PORT | --spawn] [--json PATH]
//! ```
//!
//! `--workers N` runs N closed-loop worker threads (each a persistent
//! connection issuing GET-then-PUT-on-miss). With `--spawn` (the default
//! when no `--addr` is given) an ephemeral server is started in-process,
//! which is how the scaling smoke run in CI uses it.
//!
//! The final summary merges the server's `ObsDump` snapshot with the
//! client-side RTT histograms: the merged histogram lands under
//! `client_rtt_us` and each worker's under `client_rtt_us:w<i>`, so a
//! straggling worker is visible next to the server's per-op latency.

use std::net::SocketAddr;
use std::process::ExitCode;

use ecc_chash::HashRing;
use ecc_net::client::RemoteNode;
use ecc_net::loadgen::run_load;
use ecc_net::server::CacheServer;
use ecc_obs::ObsSnapshot;

struct Args {
    workers: usize,
    ops: u64,
    keys: u64,
    value_len: usize,
    addr: Option<SocketAddr>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 4,
        ops: 20_000,
        keys: 1024,
        value_len: 1024,
        addr: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?
            }
            "--ops" => {
                args.ops = take("--ops")?
                    .parse()
                    .map_err(|e| format!("bad op count: {e}"))?
            }
            "--keys" => {
                args.keys = take("--keys")?
                    .parse()
                    .map_err(|e| format!("bad key space: {e}"))?
            }
            "--value-len" => {
                args.value_len = take("--value-len")?
                    .parse()
                    .map_err(|e| format!("bad value length: {e}"))?
            }
            "--addr" => {
                args.addr = Some(
                    take("--addr")?
                        .parse()
                        .map_err(|e| format!("bad address: {e}"))?,
                )
            }
            "--spawn" => args.addr = None,
            "--json" => args.json = Some(take("--json")?),
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--workers N] [--ops N] [--keys N] [--value-len N] \
                     [--addr HOST:PORT | --spawn] [--json PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be positive".to_string());
    }
    if args.keys == 0 {
        return Err("--keys must be positive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Target: an existing server, or an ephemeral in-process one.
    let mut spawned: Option<CacheServer> = None;
    let addr = match args.addr {
        Some(a) => a,
        None => {
            // Capacity sized to hold the whole key space at this value
            // length, so the run measures latency, not overflow refusals.
            let capacity = (args.keys * (args.value_len as u64 + 64)).max(1 << 20);
            match CacheServer::spawn(capacity, 64) {
                Ok(s) => {
                    let a = s.addr();
                    spawned = Some(s);
                    a
                }
                Err(e) => {
                    eprintln!("failed to spawn server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut ring: HashRing<usize> = HashRing::new(1 << 12);
    if let Err(e) = ring.insert_bucket((1 << 12) - 1, 0) {
        eprintln!("ring setup failed: {e:?}");
        return ExitCode::FAILURE;
    }
    let report = match run_load(
        &ring,
        |_| addr,
        args.workers,
        args.ops,
        args.keys,
        args.value_len,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Merge the server's view with the client-side RTTs into one summary.
    let mut snap = RemoteNode::connect(addr)
        .and_then(|mut c| c.obs_dump())
        .unwrap_or_else(|_| ObsSnapshot::new());
    snap.hists
        .insert("client_rtt_us".to_string(), report.hist.clone());
    for (i, h) in report.worker_hists.iter().enumerate() {
        snap.hists.insert(format!("client_rtt_us:w{i}"), h.clone());
    }

    let (p50, p95, p99) = report.latency_us;
    println!(
        "loadgen: {} workers, {} ops in {:.2?} -> {:.0} ops/s (hits {}, misses {}, errors {})",
        args.workers,
        report.ops,
        report.elapsed,
        report.throughput(),
        report.hits,
        report.misses,
        report.errors,
    );
    println!("client RTT p50/p95/p99: {p50}/{p95}/{p99} us");
    for (i, h) in report.worker_hists.iter().enumerate() {
        println!(
            "  worker {i}: {} ops, p50 {} us, p99 {} us",
            h.count(),
            h.p50(),
            h.p99()
        );
    }
    for name in [
        "server_op_us:get",
        "server_op_us:put",
        "lock_wait_us:stripe",
    ] {
        if let Some(h) = snap.hist(name) {
            println!("  {name}: count {}, p99 {} us", h.count(), h.p99());
        }
    }

    if let Some(path) = &args.json {
        let mut doc = String::new();
        doc.push_str("{\n");
        doc.push_str(&format!("  \"workers\": {},\n", args.workers));
        doc.push_str(&format!("  \"ops\": {},\n", report.ops));
        doc.push_str(&format!("  \"errors\": {},\n", report.errors));
        doc.push_str(&format!(
            "  \"throughput_ops_per_sec\": {:.1},\n",
            report.throughput()
        ));
        doc.push_str(&format!(
            "  \"rtt_us\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}},\n"
        ));
        doc.push_str("  \"obs\": [\n");
        let n = snap.hists.len();
        for (i, (name, h)) in snap.hists.iter().enumerate() {
            let sep = if i + 1 == n { "" } else { "," };
            doc.push_str(&format!(
                "    {{\"hist\": \"{name}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}{sep}\n",
                h.count(),
                h.p50(),
                h.p99()
            ));
        }
        doc.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary written to {path}");
    }

    if report.errors > 0 {
        return ExitCode::FAILURE;
    }
    drop(spawned);
    ExitCode::SUCCESS
}
