//! A real networked deployment of the elastic cache.
//!
//! The simulation crates reproduce the paper's *figures*; this crate shows
//! the system is also a working distributed cache. Each cache node is a
//! TCP server owning a B+-tree index ([`server::CacheServer`]); a
//! coordinator ([`coordinator::LiveCoordinator`]) places keys with the same
//! consistent-hash ring, runs GBA splits by sweeping key ranges *over the
//! wire*, and contracts idle nodes — the full paper protocol, executed
//! against real sockets instead of the virtual clock.
//!
//! The wire format ([`protocol`]) is a length-prefixed binary protocol
//! (`bytes`-based): `GET`/`PUT`/`REMOVE` for the data path, `SWEEP`
//! (destructive range read) for migration, `KEYS`/`STATS` for the
//! coordinator's split planning, and `PING`/`SHUTDOWN` for lifecycle.
//!
//! Threading model: each server is an event-driven multi-reactor
//! ([`reactor`]) — an acceptor enforcing the connection bound hands
//! admitted sockets round-robin to N reactor threads, which sweep their
//! owned connections with nonblocking reads, execute every pipelined
//! frame against the hash-striped [`ecc_core::ShardedNode`], and flush all
//! responses in one gathered write per sweep. Clients can pipeline
//! ([`client::PipelinedConn`]) to amortize syscalls across in-flight
//! requests.
//!
//! # Example
//!
//! ```
//! use ecc_net::coordinator::LiveCoordinator;
//!
//! // A live elastic cache: grows onto new (local) cache servers on demand.
//! let mut coord = LiveCoordinator::start(1 << 16, 64 * 1024).unwrap();
//! coord.put(7, b"derived result".to_vec()).unwrap();
//! assert_eq!(coord.get(7).unwrap().as_deref(), Some(&b"derived result"[..]));
//! coord.shutdown().unwrap();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod coordinator;
pub mod loadgen;
pub mod protocol;
pub mod reactor;
pub mod server;
