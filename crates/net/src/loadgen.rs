//! Concurrent load generation against live cache servers.
//!
//! The paper's clients are independent users hammering the coordinator;
//! this module reproduces that pressure: `clients` threads each open their
//! own connection to every cache node and issue GET/PUT traffic placed by
//! a shared, read-only copy of the ring. Results stream back over a
//! crossbeam channel and are folded into a latency/throughput report.
//!
//! Placement reads are lock-free (each worker owns a clone of the ring);
//! this measures the *data path* under concurrency. Structural changes
//! (splits/merges) remain the single coordinator's job, as in the paper.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use ecc_chash::HashRing;
use ecc_obs::{LogHistogram, ObsRegistry, SpanGuard};
use ecc_workload::driver::Op;

use crate::client::{PipelinedConn, RemoteNode};
use crate::protocol::{Request, Status, TraceContext};

/// Bound applied to each worker connection's connect *and* every
/// subsequent response read, so a node that wedges mid-run surfaces as a
/// counted error on that op instead of hanging the worker forever.
const NODE_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// One worker's accumulated results.
#[derive(Debug, Clone, Default)]
struct WorkerStats {
    ops: u64,
    hits: u64,
    misses: u64,
    errors: u64,
    hist: LogHistogram,
}

/// Aggregated load-test report.
#[derive(Debug, Clone)]
#[must_use]
pub struct LoadReport {
    /// Total operations completed.
    pub ops: u64,
    /// GETs that found a record.
    pub hits: u64,
    /// GETs that missed.
    pub misses: u64,
    /// I/O errors observed.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency percentiles in microseconds: (p50, p95, p99).
    pub latency_us: (u64, u64, u64),
    /// Full client-side RTT histogram (merged across workers) — the
    /// mergeable counterpart of `latency_us`, foldable into a cluster
    /// `ObsSnapshot` under the name `client_rtt_us`.
    pub hist: LogHistogram,
    /// Per-worker RTT histograms, one per closed-loop worker in spawn
    /// order. `hist` is exactly their merge; keeping the parts lets a
    /// report expose per-worker tails (a straggling worker is invisible
    /// in the merged histogram).
    pub worker_hists: Vec<LogHistogram>,
    /// Pipelined runs only: RTT histograms bucketed by the number of
    /// requests in flight on the connection at enqueue time (index 0 =
    /// depth 1, i.e. the request went out alone). Their merge equals
    /// `hist`; the per-depth split shows how queueing behind earlier
    /// requests stretches the tail as depth grows. Empty for
    /// strictly-serial runs ([`run_load`] / [`run_scenario_load`]).
    pub depth_hists: Vec<LogHistogram>,
}

impl LoadReport {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Periodic progress readout handed to [`run_load_with_progress`]'s
/// callback: a snapshot of the run so far, safe to render as a one-line
/// live summary.
#[derive(Debug, Clone, Copy)]
pub struct LoadProgress {
    /// Operations completed so far.
    pub done: u64,
    /// Operations requested in total.
    pub total: u64,
    /// Time since the run started.
    pub elapsed: Duration,
}

/// Drive `total_ops` GET-then-PUT-on-miss operations from `clients`
/// concurrent workers against the nodes of `ring` (addresses resolved via
/// `addr_of`). Keys are drawn uniformly from `[0, key_space)` per worker
/// with a seeded LCG, `value_len` bytes per record.
pub fn run_load<N: Clone + Eq + Send + Sync>(
    ring: &HashRing<N>,
    addr_of: impl Fn(&N) -> SocketAddr + Sync,
    clients: usize,
    total_ops: u64,
    key_space: u64,
    value_len: usize,
) -> std::io::Result<LoadReport> {
    run_load_with_progress(
        ring, addr_of, clients, total_ops, key_space, value_len, None,
    )
}

/// [`run_load`], plus an optional `(interval, callback)` pair: a monitor
/// thread invokes the callback every `interval` with a [`LoadProgress`]
/// snapshot while the workers run. Diagnostics stay with the caller (a
/// binary can print a live one-liner; library code stays print-free).
#[allow(clippy::too_many_arguments)]
pub fn run_load_with_progress<N: Clone + Eq + Send + Sync>(
    ring: &HashRing<N>,
    addr_of: impl Fn(&N) -> SocketAddr + Sync,
    clients: usize,
    total_ops: u64,
    key_space: u64,
    value_len: usize,
    progress: Option<(Duration, &(dyn Fn(LoadProgress) + Sync))>,
) -> std::io::Result<LoadReport> {
    assert!(clients >= 1, "need at least one client");
    let per_worker = total_ops.div_ceil(clients as u64);
    let (tx, rx) = channel::bounded::<WorkerStats>(clients);
    let start = Instant::now();
    let done_ops = AtomicU64::new(0);
    let workers_done = AtomicU64::new(0);

    std::thread::scope(|scope| -> std::io::Result<()> {
        if let Some((interval, callback)) = progress {
            let done_ops = &done_ops;
            let workers_done = &workers_done;
            scope.spawn(move || {
                while workers_done.load(Ordering::Acquire) < clients as u64 {
                    std::thread::sleep(interval);
                    callback(LoadProgress {
                        done: done_ops.load(Ordering::Relaxed),
                        total: total_ops,
                        elapsed: start.elapsed(),
                    });
                }
            });
        }
        for w in 0..clients {
            let tx = tx.clone();
            let ring = ring.clone();
            let addr_of = &addr_of;
            let done_ops = &done_ops;
            let workers_done = &workers_done;
            scope.spawn(move || {
                let mut stats = WorkerStats::default();
                // Per-node connections, opened lazily.
                let mut conns: Vec<(SocketAddr, RemoteNode)> = Vec::new();
                let mut state = 0x9E3779B97F4A7C15u64 ^ (w as u64).wrapping_mul(0xA24BAED4963EE407);
                for _ in 0..per_worker {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 33) % key_space;
                    let Some(node) = ring.node_for_key(key) else {
                        stats.errors += 1;
                        continue;
                    };
                    let addr = addr_of(node);
                    let conn = match conns.iter_mut().find(|(a, _)| *a == addr) {
                        Some((_, c)) => c,
                        None => match RemoteNode::connect_with_timeout(addr, NODE_IO_TIMEOUT) {
                            Ok(c) => {
                                conns.push((addr, c));
                                let Some((_, conn)) = conns.last_mut() else {
                                    stats.errors += 1;
                                    continue;
                                };
                                conn
                            }
                            Err(_) => {
                                stats.errors += 1;
                                continue;
                            }
                        },
                    };
                    let t0 = Instant::now();
                    match conn.get(key) {
                        Ok(Some(_)) => stats.hits += 1,
                        Ok(None) => {
                            stats.misses += 1;
                            if conn.put(key, vec![(key % 251) as u8; value_len]).is_err() {
                                stats.errors += 1;
                            }
                        }
                        Err(_) => stats.errors += 1,
                    }
                    stats.hist.record(t0.elapsed().as_micros() as u64);
                    stats.ops += 1;
                    done_ops.fetch_add(1, Ordering::Relaxed);
                }
                workers_done.fetch_add(1, Ordering::Release);
                let _ = tx.send(stats);
            });
        }
        Ok(())
    })?;
    drop(tx);

    let mut all = WorkerStats::default();
    let mut worker_hists = Vec::with_capacity(clients);
    while let Ok(s) = rx.recv() {
        all.ops += s.ops;
        all.hits += s.hits;
        all.misses += s.misses;
        all.errors += s.errors;
        all.hist.merge(&s.hist);
        worker_hists.push(s.hist);
    }
    Ok(LoadReport {
        ops: all.ops,
        hits: all.hits,
        misses: all.misses,
        errors: all.errors,
        elapsed: start.elapsed(),
        latency_us: (all.hist.p50(), all.hist.quantile(0.95), all.hist.p99()),
        hist: all.hist,
        worker_hists,
        depth_hists: Vec::new(),
    })
}

/// Client-side tracing configuration for a load run.
#[derive(Clone)]
pub struct TraceOpts {
    /// Registry receiving the root `req` spans. Give it a distinct origin
    /// and — when server spans will be merged in — the SAME clock epoch as
    /// the servers, or cross-recorder interval nesting is meaningless.
    pub obs: ObsRegistry,
    /// Sample 1 in `sample` requests as root spans (1 = every request).
    /// Sampled-out requests bump the registry's `spans_dropped` counter,
    /// so a trace dump always states how much it did NOT see.
    pub sample: u64,
}

impl TraceOpts {
    /// Start the root span for request number `issued` on one worker, or
    /// count it as sampled-out. The span's context (its own id doubling as
    /// the trace id) rides the wire; the guard retires — and records the
    /// span end — when the response does.
    fn sample_root(&self, issued: u64) -> Option<(SpanGuard, TraceContext)> {
        if !issued.is_multiple_of(self.sample.max(1)) {
            self.obs.note_span_dropped();
            return None;
        }
        let root = self.obs.span_root("req");
        let ctx = TraceContext {
            trace_id: root.trace_id(),
            span_id: root.id(),
            parent_span_id: 0,
            sampled: true,
        };
        Some((root, ctx))
    }
}

/// One request awaiting its response on a pipelined connection, in FIFO
/// (request) order.
struct Pending {
    key: u64,
    t0: Instant,
    /// In-flight count on the connection at enqueue time (1-based).
    depth: usize,
    is_get: bool,
    /// Root `req` span of a sampled request; dropping it on retirement
    /// stamps the span end at response time.
    span: Option<SpanGuard>,
}

/// Pop one response off a pipelined connection and fold it into `stats`.
///
/// Mirrors [`run_load`]'s GET-then-PUT-on-miss loop, except the repair
/// PUT is itself pipelined (enqueued behind whatever is already in
/// flight) and counted as its own operation with its own RTT sample —
/// under pipelining the two halves of a miss repair no longer form one
/// serial exchange.
fn drain_one(
    conn: &mut PipelinedConn,
    pending: &mut VecDeque<Pending>,
    stats: &mut WorkerStats,
    depth_hists: &mut [LogHistogram],
    value_len: usize,
) {
    let Some(p) = pending.pop_front() else { return };
    match conn.recv() {
        Ok((status, _)) => {
            if p.is_get {
                if status == Status::Ok {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                    let depth = (conn.in_flight() + 1).min(depth_hists.len());
                    let value = vec![(p.key % 251) as u8; value_len];
                    match conn.enqueue(&Request::Put {
                        key: p.key,
                        value: value.into(),
                    }) {
                        Ok(()) => pending.push_back(Pending {
                            key: p.key,
                            t0: Instant::now(),
                            depth,
                            is_get: false,
                            span: None,
                        }),
                        Err(_) => stats.errors += 1,
                    }
                }
            }
        }
        Err(_) => stats.errors += 1,
    }
    let rtt = p.t0.elapsed().as_micros() as u64;
    stats.hist.record(rtt);
    if let Some(h) = depth_hists.get_mut(p.depth - 1) {
        h.record(rtt);
    }
    stats.ops += 1;
    // A sampled request's root span ends here: response received and
    // accounted. (Guard drop stamps the SpanEnd.)
    drop(p.span);
}

/// [`run_load`] with per-connection pipelining: each worker keeps up to
/// `depth` requests in flight on every connection, shipping bursts in one
/// write and retiring responses in request order.
///
/// Two accounting differences from the serial loop, both consequences of
/// decoupling request from response: a miss's repair PUT is a separate
/// pipelined operation (so `ops = hits + misses + repair PUTs`), and each
/// RTT sample spans enqueue → response, which includes time spent queued
/// behind the requests ahead of it. The report's `depth_hists` split the
/// RTTs by in-flight depth at enqueue so that queueing cost is visible
/// per depth instead of smeared across the merged histogram.
pub fn run_load_pipelined<N: Clone + Eq + Send + Sync>(
    ring: &HashRing<N>,
    addr_of: impl Fn(&N) -> SocketAddr + Sync,
    clients: usize,
    total_ops: u64,
    key_space: u64,
    value_len: usize,
    depth: usize,
) -> std::io::Result<LoadReport> {
    run_load_fanout(
        ring, addr_of, clients, 1, total_ops, key_space, value_len, depth,
    )
}

/// [`run_load_pipelined`] with `fanout` pipelined connections per worker
/// thread to each target node, rotated per request.
///
/// Threads and connections are deliberately separate dimensions: the
/// server's scaling axis is *connections*, but piling one client thread
/// per connection onto a small client box measures the client's scheduler
/// as much as the server (each extra thread adds context-switch cost that
/// cancels the server-side win). A worker multiplexes its fan-out without
/// nonblocking client I/O because every connection's burst is already on
/// the wire before the worker parks in a `recv` — the server keeps all
/// `fanout × depth` requests in service while the client drains one
/// connection at a time.
#[allow(clippy::too_many_arguments)]
pub fn run_load_fanout<N: Clone + Eq + Send + Sync>(
    ring: &HashRing<N>,
    addr_of: impl Fn(&N) -> SocketAddr + Sync,
    clients: usize,
    fanout: usize,
    total_ops: u64,
    key_space: u64,
    value_len: usize,
    depth: usize,
) -> std::io::Result<LoadReport> {
    run_load_fanout_traced(
        ring, addr_of, clients, fanout, total_ops, key_space, value_len, depth, None,
    )
}

/// [`run_load_fanout`] with optional trace sampling: every `trace.sample`-th
/// GET issued by each worker becomes a root `req` span whose context rides
/// the wire (`0x0E` frames), so the server's `srv` subtree attaches under
/// it in the merged dump. Repair PUTs stay untraced — the sampled
/// population is the request stream the run was asked to issue.
#[allow(clippy::too_many_arguments)]
pub fn run_load_fanout_traced<N: Clone + Eq + Send + Sync>(
    ring: &HashRing<N>,
    addr_of: impl Fn(&N) -> SocketAddr + Sync,
    clients: usize,
    fanout: usize,
    total_ops: u64,
    key_space: u64,
    value_len: usize,
    depth: usize,
    trace: Option<&TraceOpts>,
) -> std::io::Result<LoadReport> {
    assert!(clients >= 1, "need at least one client");
    assert!(fanout >= 1, "need at least one connection per worker");
    assert!(depth >= 1, "pipeline depth must be positive");
    let per_worker = total_ops.div_ceil(clients as u64);
    let (tx, rx) = channel::bounded::<(WorkerStats, Vec<LogHistogram>)>(clients);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..clients {
            let tx = tx.clone();
            let ring = ring.clone();
            let addr_of = &addr_of;
            scope.spawn(move || {
                let mut stats = WorkerStats::default();
                let mut depth_hists = vec![LogHistogram::default(); depth];
                let mut conns: Vec<(SocketAddr, usize, PipelinedConn, VecDeque<Pending>)> =
                    Vec::new();
                let mut state = 0x9E3779B97F4A7C15u64 ^ (w as u64).wrapping_mul(0xA24BAED4963EE407);
                let mut issued: u64 = 0;
                for i in 0..per_worker {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 33) % key_space;
                    let Some(node) = ring.node_for_key(key) else {
                        stats.errors += 1;
                        continue;
                    };
                    let addr = addr_of(node);
                    // Rotate the fan-out per request so every connection
                    // to a node carries an equal share of the stream.
                    let slot = (i % fanout as u64) as usize;
                    let idx = match conns
                        .iter()
                        .position(|(a, s, _, _)| *a == addr && *s == slot)
                    {
                        Some(i) => i,
                        None => match PipelinedConn::connect(addr, NODE_IO_TIMEOUT) {
                            Ok(c) => {
                                conns.push((addr, slot, c, VecDeque::new()));
                                conns.len() - 1
                            }
                            Err(_) => {
                                stats.errors += 1;
                                continue;
                            }
                        },
                    };
                    let (_, _, conn, pending) = &mut conns[idx];
                    // Closed loop at `depth`: retire responses until there
                    // is room for the new request.
                    while conn.in_flight() >= depth {
                        drain_one(conn, pending, &mut stats, &mut depth_hists, value_len);
                    }
                    let d = conn.in_flight() + 1;
                    let sampled = trace.and_then(|t| t.sample_root(issued));
                    issued += 1;
                    let (span, ctx) = match sampled {
                        Some((span, ctx)) => (Some(span), Some(ctx)),
                        None => (None, None),
                    };
                    match conn.enqueue_traced(&Request::Get { key }, ctx.as_ref()) {
                        Ok(()) => pending.push_back(Pending {
                            key,
                            t0: Instant::now(),
                            depth: d,
                            is_get: true,
                            span,
                        }),
                        Err(_) => stats.errors += 1,
                    }
                }
                for (_, _, conn, pending) in &mut conns {
                    while !pending.is_empty() {
                        drain_one(conn, pending, &mut stats, &mut depth_hists, value_len);
                    }
                }
                let _ = tx.send((stats, depth_hists));
            });
        }
    });
    drop(tx);

    let mut all = WorkerStats::default();
    let mut worker_hists = Vec::with_capacity(clients);
    let mut depth_hists = vec![LogHistogram::default(); depth];
    while let Ok((s, dh)) = rx.recv() {
        all.ops += s.ops;
        all.hits += s.hits;
        all.misses += s.misses;
        all.errors += s.errors;
        all.hist.merge(&s.hist);
        worker_hists.push(s.hist);
        for (into, part) in depth_hists.iter_mut().zip(&dh) {
            into.merge(part);
        }
    }
    Ok(LoadReport {
        ops: all.ops,
        hits: all.hits,
        misses: all.misses,
        errors: all.errors,
        elapsed: start.elapsed(),
        latency_us: (all.hist.p50(), all.hist.quantile(0.95), all.hist.p99()),
        hist: all.hist,
        worker_hists,
        depth_hists,
    })
}

/// Replay a pre-generated scenario event stream (`(step, op, key)` triples
/// from [`ecc_workload::scenario::Scenario::events`] or a loaded
/// [`ecc_workload::trace::Trace`]) against live servers.
///
/// The stream is partitioned deterministically across `clients` workers
/// (worker `w` executes events at indices `i ≡ w (mod clients)`), so the
/// exact multiset of operations on the wire is a pure function of the
/// scenario seed — only inter-worker interleaving varies run to run.
/// Reads issue GETs (misses are counted, not repaired, so replays do not
/// mutate state the trace did not ask for); writes issue PUTs of
/// `value_len` bytes.
pub fn run_scenario_load<N: Clone + Eq + Send + Sync>(
    ring: &HashRing<N>,
    addr_of: impl Fn(&N) -> SocketAddr + Sync,
    clients: usize,
    events: &[(u64, Op, u64)],
    value_len: usize,
) -> std::io::Result<LoadReport> {
    assert!(clients >= 1, "need at least one client");
    let (tx, rx) = channel::bounded::<WorkerStats>(clients);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..clients {
            let tx = tx.clone();
            let ring = ring.clone();
            let addr_of = &addr_of;
            scope.spawn(move || {
                let mut stats = WorkerStats::default();
                let mut conns: Vec<(SocketAddr, RemoteNode)> = Vec::new();
                for &(_, op, key) in events.iter().skip(w).step_by(clients) {
                    let Some(node) = ring.node_for_key(key) else {
                        stats.errors += 1;
                        continue;
                    };
                    let addr = addr_of(node);
                    let conn = match conns.iter_mut().find(|(a, _)| *a == addr) {
                        Some((_, c)) => c,
                        None => match RemoteNode::connect_with_timeout(addr, NODE_IO_TIMEOUT) {
                            Ok(c) => {
                                conns.push((addr, c));
                                let Some((_, conn)) = conns.last_mut() else {
                                    stats.errors += 1;
                                    continue;
                                };
                                conn
                            }
                            Err(_) => {
                                stats.errors += 1;
                                continue;
                            }
                        },
                    };
                    let t0 = Instant::now();
                    match op {
                        Op::Read => match conn.get(key) {
                            Ok(Some(_)) => stats.hits += 1,
                            Ok(None) => stats.misses += 1,
                            Err(_) => stats.errors += 1,
                        },
                        Op::Write => {
                            if conn.put(key, vec![(key % 251) as u8; value_len]).is_err() {
                                stats.errors += 1;
                            }
                        }
                    }
                    stats.hist.record(t0.elapsed().as_micros() as u64);
                    stats.ops += 1;
                }
                let _ = tx.send(stats);
            });
        }
    });
    drop(tx);

    let mut all = WorkerStats::default();
    let mut worker_hists = Vec::with_capacity(clients);
    while let Ok(s) = rx.recv() {
        all.ops += s.ops;
        all.hits += s.hits;
        all.misses += s.misses;
        all.errors += s.errors;
        all.hist.merge(&s.hist);
        worker_hists.push(s.hist);
    }
    Ok(LoadReport {
        ops: all.ops,
        hits: all.hits,
        misses: all.misses,
        errors: all.errors,
        elapsed: start.elapsed(),
        latency_us: (all.hist.p50(), all.hist.quantile(0.95), all.hist.p99()),
        hist: all.hist,
        worker_hists,
        depth_hists: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;

    #[test]
    fn concurrent_load_against_two_servers() {
        let s1 = CacheServer::spawn(1 << 20, 32).unwrap();
        let s2 = CacheServer::spawn(1 << 20, 32).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(1 << 12);
        ring.insert_bucket((1 << 11) - 1, 0).unwrap();
        ring.insert_bucket((1 << 12) - 1, 1).unwrap();
        let addrs = [s1.addr(), s2.addr()];

        let report = run_load(&ring, |n| addrs[*n], 4, 2000, 1 << 10, 64).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.ops >= 2000);
        assert_eq!(report.hits + report.misses, report.ops);
        // 1 Ki distinct keys over 2 K ops: plenty of hits.
        assert!(report.hits > 0);
        assert!(report.throughput() > 100.0, "{report:?}");
        let (p50, p95, p99) = report.latency_us;
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn workers_reuse_connections_instead_of_reconnecting() {
        let s = CacheServer::spawn(1 << 20, 32).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(64);
        ring.insert_bucket(63, 0).unwrap();
        let addr = s.addr();
        let report = run_load(&ring, |_| addr, 3, 600, 64, 16).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(
            s.connections_accepted(),
            3,
            "600 ops from 3 workers must ride 3 persistent connections"
        );
    }

    #[test]
    fn report_histogram_matches_op_count_and_progress_fires() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let s = CacheServer::spawn(1 << 20, 32).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(256);
        ring.insert_bucket(255, 0).unwrap();
        let addr = s.addr();
        let ticks = AtomicU64::new(0);
        let last_done = AtomicU64::new(0);
        let cb = |p: LoadProgress| {
            ticks.fetch_add(1, Ordering::Relaxed);
            last_done.store(p.done, Ordering::Relaxed);
            assert_eq!(p.total, 800);
        };
        let report = run_load_with_progress(
            &ring,
            |_| addr,
            2,
            800,
            256,
            32,
            Some((Duration::from_millis(5), &cb)),
        )
        .unwrap();
        assert_eq!(report.errors, 0);
        assert_eq!(report.hist.count(), report.ops);
        // The merged histogram is exactly the per-worker parts.
        assert_eq!(report.worker_hists.len(), 2);
        let parts: u64 = report.worker_hists.iter().map(|h| h.count()).sum();
        assert_eq!(parts, report.hist.count());
        let (p50, p95, p99) = report.latency_us;
        assert!(p50 <= p95 && p95 <= p99);
        assert!(ticks.load(Ordering::Relaxed) >= 1, "monitor never ticked");
        assert!(last_done.load(Ordering::Relaxed) <= 800);
    }

    #[test]
    fn scenario_replay_executes_every_traced_op() {
        use ecc_workload::scenario::Scenario;

        let s = CacheServer::spawn(1 << 22, 64).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(1 << 16);
        ring.insert_bucket((1 << 16) - 1, 0).unwrap();
        let addr = s.addr();

        let sc = Scenario::by_name("write_heavy").unwrap();
        let events: Vec<_> = sc.events(5, 3).collect();
        let writes = events.iter().filter(|(_, op, _)| *op == Op::Write).count();
        assert!(writes > 0, "write_heavy scenario produced no writes");

        let report = run_scenario_load(&ring, |_| addr, 3, &events, 32).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.ops as usize, events.len());
        // Reads are GETs only — hits + misses account for every read.
        assert_eq!(report.hits + report.misses, (events.len() - writes) as u64);

        // Replaying the same event list performs the same multiset of ops.
        let again = run_scenario_load(&ring, |_| addr, 2, &events, 32).unwrap();
        assert_eq!(again.ops as usize, events.len());
        assert_eq!(again.errors, 0);
    }

    #[test]
    fn pipelined_load_retires_every_request_and_buckets_by_depth() {
        let s = CacheServer::spawn(1 << 22, 32).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(256);
        ring.insert_bucket(255, 0).unwrap();
        let addr = s.addr();

        let depth = 8;
        let report = run_load_pipelined(&ring, |_| addr, 2, 2000, 256, 64, depth).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        // Every GET plus every repair PUT retired: ops = gets + misses.
        assert_eq!(report.hits + report.misses, 2000);
        assert_eq!(report.ops, 2000 + report.misses);
        assert_eq!(report.hist.count(), report.ops);
        // The depth buckets partition the merged histogram exactly.
        assert_eq!(report.depth_hists.len(), depth);
        let parts: u64 = report.depth_hists.iter().map(|h| h.count()).sum();
        assert_eq!(parts, report.hist.count());
        // A closed loop at depth 8 must actually reach full depth.
        assert!(
            report.depth_hists[depth - 1].count() > 0,
            "no request ever went out at full depth: {report:?}"
        );
        assert!(report.throughput() > 100.0, "{report:?}");
    }

    #[test]
    fn pipelined_depth_one_degenerates_to_serial_semantics() {
        let s = CacheServer::spawn(1 << 20, 32).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(64);
        ring.insert_bucket(63, 0).unwrap();
        let addr = s.addr();
        let report = run_load_pipelined(&ring, |_| addr, 1, 300, 64, 16, 1).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.hits + report.misses, 300);
        assert_eq!(report.depth_hists.len(), 1);
        assert_eq!(report.depth_hists[0].count(), report.ops);
        // One worker, one persistent pipelined connection.
        assert_eq!(s.connections_accepted(), 1);
    }

    #[test]
    fn fanout_opens_one_connection_per_worker_slot() {
        let s = CacheServer::spawn(1 << 20, 32).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(64);
        ring.insert_bucket(63, 0).unwrap();
        let addr = s.addr();
        let report = run_load_fanout(&ring, |_| addr, 2, 2, 2000, 64, 64, 4).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.hits + report.misses, 2000);
        assert_eq!(report.ops, 2000 + report.misses);
        assert_eq!(report.hist.count(), report.ops);
        // 2 workers × fanout 2 = 4 persistent connections, no reconnects.
        assert_eq!(s.connections_accepted(), 4);
    }

    #[test]
    fn traced_pipelined_run_yields_complete_span_trees() {
        use ecc_obs::TimeSource;

        // Shared epoch: client root spans and server subtrees must be
        // interval-comparable in the merged dump.
        let time = TimeSource::real();
        let mut s =
            CacheServer::spawn_clocked(("127.0.0.1", 0), 1 << 22, 32, 256, None, time.clone(), 1)
                .unwrap();
        let client_obs = ObsRegistry::new(time);
        client_obs.set_origin(100);
        let mut ring: HashRing<usize> = HashRing::new(256);
        ring.insert_bucket(255, 0).unwrap();
        let addr = s.addr();

        let trace = TraceOpts {
            obs: client_obs.clone(),
            sample: 4,
        };
        let report =
            run_load_fanout_traced(&ring, |_| addr, 2, 1, 400, 256, 64, 8, Some(&trace)).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");

        // 2 workers × 200 GETs, 1-in-4 sampled → 100 roots, 300 dropped.
        assert_eq!(client_obs.spans_dropped(), 300);

        let mut c = RemoteNode::connect(addr).unwrap();
        let server_snap = c.obs_dump().unwrap();
        let mut events = client_obs.snapshot().events;
        events.extend(server_snap.events);
        let stats = ecc_obs::verify_spans(&events).expect("merged trace is well-formed");
        assert_eq!(stats.roots, 100);
        assert_eq!(stats.traces, 100);
        // Every sampled request carries its server subtree: root + srv +
        // srv_queue + srv_exec + lock_wait = 5 spans per trace.
        assert_eq!(stats.spans, 500);
        s.stop();
    }

    #[test]
    fn single_worker_degenerate_case() {
        let s = CacheServer::spawn(1 << 16, 16).unwrap();
        let mut ring: HashRing<usize> = HashRing::new(64);
        ring.insert_bucket(63, 0).unwrap();
        let addr = s.addr();
        let report = run_load(&ring, |_| addr, 1, 100, 64, 16).unwrap();
        assert_eq!(report.ops, 100);
        assert_eq!(report.errors, 0);
    }
}
