//! Client handle to one remote cache node.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use ecc_obs::ObsRegistry;

use crate::protocol::{
    append_frame, decode_get_many, decode_keys, decode_range_stats, decode_records, decode_stats,
    decode_statuses, encode_traced_into, read_frame_into, write_frame_buffered, FrameAssembler, Op,
    Request, Status, TraceContext,
};

/// Static span kind for a client-side wire exchange (`wire:<op>`), so the
/// traced path never allocates a label string.
pub(crate) fn wire_span_kind(op: Op) -> &'static str {
    match op {
        Op::Get => "wire:get",
        Op::Put => "wire:put",
        Op::Remove => "wire:remove",
        Op::Sweep => "wire:sweep",
        Op::Keys => "wire:keys",
        Op::Stats => "wire:stats",
        Op::Ping => "wire:ping",
        Op::Shutdown => "wire:shutdown",
        Op::RangeStats => "wire:range_stats",
        Op::PutMany => "wire:put_many",
        Op::GetMany => "wire:get_many",
        Op::EvictMany => "wire:evict_many",
        Op::ObsDump => "wire:obs_dump",
    }
}

/// A persistent connection to a cache server.
///
/// The handle owns a read and a write buffer that are reused across
/// requests, so steady-state calls perform no per-frame allocations on
/// the framing path.
///
/// With [`RemoteNode::with_obs`] attached and a trace scope set via
/// [`RemoteNode::set_trace`], every call opens a `wire:<op>` span under
/// that scope and ships the request as a traced (`0x0E`) frame, so the
/// server's `srv` span becomes its child in the merged trace.
#[derive(Debug)]
pub struct RemoteNode {
    addr: SocketAddr,
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    obs: Option<ObsRegistry>,
    /// `(trace_id, parent_span_id)` the next calls' wire spans attach to.
    trace: Option<(u64, u64)>,
}

fn bad_frame(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl RemoteNode {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<RemoteNode> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RemoteNode {
            addr,
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            obs: None,
            trace: None,
        })
    }

    /// Connect with a connection timeout and the same bound on every
    /// subsequent read, so a node that accepts but never answers surfaces
    /// as a [`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`]
    /// error instead of hanging the caller forever.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<RemoteNode> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(RemoteNode {
            addr,
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            obs: None,
            trace: None,
        })
    }

    /// Attach the registry that records this connection's wire spans
    /// (typically the *caller's* registry — the coordinator's, not the
    /// server's — so the client half of the trace lands in the caller's
    /// recorder).
    #[must_use]
    pub fn with_obs(mut self, obs: ObsRegistry) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Scope subsequent calls under `(trace_id, parent_span_id)`: each
    /// call opens a `wire:<op>` child span and propagates its context on
    /// the wire. `None` reverts to the thread-local scope (the innermost
    /// live span on the calling thread, if any — how a coordinator's
    /// direct calls attach to its elastic root spans). The explicit form
    /// exists because coordinator fan-outs run their per-node calls on
    /// scoped worker threads, where the spawning span's thread-local
    /// stack is out of reach.
    pub fn set_trace(&mut self, trace: Option<(u64, u64)>) {
        self.trace = trace;
    }

    /// Bound how long any single response read may block (`None` removes
    /// the bound).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One request/response exchange through the reused buffers; the
    /// returned body borrows from the connection's read buffer.
    fn call(&mut self, req: &Request) -> io::Result<(Status, &[u8])> {
        // The wire span covers write → response fully read; it is the
        // per-node child of a coordinator fan-out and the minuend of the
        // "network" share in critical-path breakdowns (wire − srv).
        let scope = match &self.obs {
            Some(_) => self.trace.or_else(ecc_obs::current_span),
            None => None,
        };
        let span = match (&self.obs, scope) {
            (Some(obs), Some((trace_id, parent))) => Some((
                obs.span_start(wire_span_kind(req.op()), trace_id, parent),
                parent,
            )),
            _ => None,
        };
        if let Some((span, parent)) = &span {
            let ctx = TraceContext {
                trace_id: span.trace_id(),
                span_id: span.id(),
                parent_span_id: *parent,
                sampled: true,
            };
            write_frame_buffered(&mut self.stream, &mut self.wbuf, |b| {
                encode_traced_into(&ctx, req, b)
            })?;
        } else {
            write_frame_buffered(&mut self.stream, &mut self.wbuf, |b| req.encode_into(b))?;
        }
        let read = read_frame_into(&mut self.stream, &mut self.rbuf);
        drop(span);
        read?;
        let (&status_byte, body) = self
            .rbuf
            .split_first()
            .ok_or_else(|| bad_frame("empty response frame"))?;
        let status =
            Status::from_u8(status_byte).ok_or_else(|| bad_frame("bad response status"))?;
        if status == Status::Busy {
            // The server is at its connection bound; it sent this one
            // frame and closed. Surface it as a refusal, not a payload.
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "server at connection capacity",
            ));
        }
        Ok((status, body))
    }

    /// Look up a key.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        let (status, body) = self.call(&Request::Get { key })?;
        Ok(match status {
            Status::Ok => Some(body.to_vec()),
            _ => None,
        })
    }

    /// Store a record; returns the server's verdict (`Ok` or `Overflow`).
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> io::Result<Status> {
        let (status, _) = self.call(&Request::Put {
            key,
            value: value.into(),
        })?;
        Ok(status)
    }

    /// Remove a key; `true` if it was present.
    pub fn remove(&mut self, key: u64) -> io::Result<bool> {
        Ok(self.call(&Request::Remove { key })?.0 == Status::Ok)
    }

    /// Store a batch of records in one frame. Returns the server's
    /// per-item verdicts (`Ok` / `Overflow`) in request order; a refused
    /// item never fails the batch or the connection.
    pub fn put_many(&mut self, items: Vec<(u64, Bytes)>) -> io::Result<Vec<Status>> {
        let expected = items.len();
        let (status, body) = self.call(&Request::PutMany { items })?;
        if status != Status::Ok {
            return Err(bad_frame("put-many rejected"));
        }
        let statuses = decode_statuses(body).ok_or_else(|| bad_frame("bad put-many body"))?;
        if statuses.len() != expected {
            return Err(bad_frame("put-many status count mismatch"));
        }
        Ok(statuses)
    }

    /// Look up a batch of keys in one frame; entries are in request order.
    pub fn get_many(&mut self, keys: &[u64]) -> io::Result<Vec<Option<Vec<u8>>>> {
        let (status, body) = self.call(&Request::GetMany {
            keys: keys.to_vec(),
        })?;
        if status != Status::Ok {
            return Err(bad_frame("get-many rejected"));
        }
        let entries = decode_get_many(body).ok_or_else(|| bad_frame("bad get-many body"))?;
        if entries.len() != keys.len() {
            return Err(bad_frame("get-many entry count mismatch"));
        }
        Ok(entries)
    }

    /// Remove a batch of keys in one frame; per-key verdicts (`Ok` =
    /// removed, `NotFound` = absent) in request order.
    pub fn evict_many(&mut self, keys: &[u64]) -> io::Result<Vec<Status>> {
        let (status, body) = self.call(&Request::EvictMany {
            keys: keys.to_vec(),
        })?;
        if status != Status::Ok {
            return Err(bad_frame("evict-many rejected"));
        }
        let statuses = decode_statuses(body).ok_or_else(|| bad_frame("bad evict-many body"))?;
        if statuses.len() != keys.len() {
            return Err(bad_frame("evict-many status count mismatch"));
        }
        Ok(statuses)
    }

    /// Destructively read all records in `[lo, hi]`.
    pub fn sweep(&mut self, lo: u64, hi: u64) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let (status, body) = self.call(&Request::Sweep { lo, hi })?;
        if status != Status::Ok {
            return Err(bad_frame("sweep rejected"));
        }
        decode_records(body).ok_or_else(|| bad_frame("bad sweep body"))
    }

    /// List keys in `[lo, hi]`.
    pub fn keys(&mut self, lo: u64, hi: u64) -> io::Result<Vec<u64>> {
        let (status, body) = self.call(&Request::Keys { lo, hi })?;
        if status != Status::Ok {
            return Err(bad_frame("keys rejected"));
        }
        decode_keys(body).ok_or_else(|| bad_frame("bad keys body"))
    }

    /// `(bytes, records)` resident in `[lo, hi]`.
    pub fn range_stats(&mut self, lo: u64, hi: u64) -> io::Result<(u64, u64)> {
        let (status, body) = self.call(&Request::RangeStats { lo, hi })?;
        if status != Status::Ok {
            return Err(bad_frame("range-stats rejected"));
        }
        decode_range_stats(body).ok_or_else(|| bad_frame("bad range-stats body"))
    }

    /// `(used_bytes, record_count, capacity_bytes)`.
    pub fn stats(&mut self) -> io::Result<(u64, u64, u64)> {
        let (status, body) = self.call(&Request::Stats)?;
        if status != Status::Ok {
            return Err(bad_frame("stats rejected"));
        }
        decode_stats(body).ok_or_else(|| bad_frame("bad stats body"))
    }

    /// Fetch the node's observability snapshot (flight-recorder events +
    /// latency histograms).
    pub fn obs_dump(&mut self) -> io::Result<ecc_obs::ObsSnapshot> {
        let (status, body) = self.call(&Request::ObsDump)?;
        if status != Status::Ok {
            return Err(bad_frame("obs-dump rejected"));
        }
        ecc_obs::decode_dump(body).ok_or_else(|| bad_frame("bad obs-dump body"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.call(&Request::Ping)?.0 == Status::Ok)
    }

    /// Ask the server to stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let _ = self.call(&Request::Shutdown)?;
        Ok(())
    }
}

/// A pipelining connection: many requests in flight at once.
///
/// [`RemoteNode`] is strictly request/response — every call pays a full
/// round trip plus two syscalls each way. `PipelinedConn` decouples the
/// two halves: [`enqueue`](PipelinedConn::enqueue) buffers encoded request
/// frames, [`flush`](PipelinedConn::flush) ships the whole batch in one
/// write, and [`recv`](PipelinedConn::recv) pops responses in request
/// order, reading the socket in bulk through a [`FrameAssembler`] (one
/// `read` can deliver a whole burst of responses). With depth D in
/// flight, per-request syscall cost approaches 2/D.
pub struct PipelinedConn {
    stream: TcpStream,
    asm: FrameAssembler,
    wbuf: Vec<u8>,
    in_flight: usize,
}

impl PipelinedConn {
    /// Connect, with `timeout` bounding the connect and every subsequent
    /// blocking read.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<PipelinedConn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(PipelinedConn {
            stream,
            asm: FrameAssembler::new(),
            wbuf: Vec::new(),
            in_flight: 0,
        })
    }

    /// Requests enqueued or flushed whose responses have not been
    /// received yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Buffer one request frame; nothing hits the socket until
    /// [`flush`](PipelinedConn::flush).
    pub fn enqueue(&mut self, req: &Request) -> io::Result<()> {
        self.enqueue_traced(req, None)
    }

    /// [`enqueue`](PipelinedConn::enqueue), optionally wrapping the frame
    /// in a trace extension: the sampled-request path of the load
    /// generator, whose root `req` span's context rides to the server.
    pub fn enqueue_traced(&mut self, req: &Request, ctx: Option<&TraceContext>) -> io::Result<()> {
        match ctx {
            Some(ctx) => append_frame(&mut self.wbuf, |b| encode_traced_into(ctx, req, b))?,
            None => append_frame(&mut self.wbuf, |b| req.encode_into(b))?,
        }
        self.in_flight += 1;
        Ok(())
    }

    /// Ship every buffered request in one write.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Receive the next response in request order: `(status, body)`, the
    /// body borrowing the connection's read buffer. Blocks (bounded by
    /// the connect timeout) until a full frame arrives; a `Busy` status
    /// maps to [`io::ErrorKind::ConnectionRefused`] like
    /// [`RemoteNode::call`]. Flushes buffered requests first — a `recv`
    /// can never deadlock against its own unsent request.
    pub fn recv(&mut self) -> io::Result<(Status, &[u8])> {
        self.flush()?;
        while !self.asm.has_frame()? {
            if self.asm.fill_from(&mut self.stream)? == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
        }
        let frame = match self.asm.next_frame()? {
            Some(f) => f,
            None => return Err(bad_frame("assembler lost a probed frame")),
        };
        let (&status_byte, body) = frame
            .split_first()
            .ok_or_else(|| bad_frame("empty response frame"))?;
        let status =
            Status::from_u8(status_byte).ok_or_else(|| bad_frame("bad response status"))?;
        if status == Status::Busy {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "server at connection capacity",
            ));
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        Ok((status, body))
    }
}
