//! Client handle to one remote cache node.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{
    decode_keys, decode_range_stats, decode_records, decode_stats, read_frame, write_frame,
    Request, Response, Status,
};

/// A persistent connection to a cache server.
#[derive(Debug)]
pub struct RemoteNode {
    addr: SocketAddr,
    stream: TcpStream,
}

impl RemoteNode {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<RemoteNode> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RemoteNode { addr, stream })
    }

    /// Connect with a connection timeout and the same bound on every
    /// subsequent read, so a node that accepts but never answers surfaces
    /// as a [`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`]
    /// error instead of hanging the caller forever.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<RemoteNode> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(RemoteNode { addr, stream })
    }

    /// Bound how long any single response read may block (`None` removes
    /// the bound).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn call(&mut self, req: Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let frame = read_frame(&mut self.stream)?;
        Response::decode(frame)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad response frame"))
    }

    /// Look up a key.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        let resp = self.call(Request::Get { key })?;
        Ok(match resp.status {
            Status::Ok => Some(resp.body.to_vec()),
            _ => None,
        })
    }

    /// Store a record; returns the server's verdict (`Ok` or `Overflow`).
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> io::Result<Status> {
        let resp = self.call(Request::Put {
            key,
            value: value.into(),
        })?;
        Ok(resp.status)
    }

    /// Remove a key; `true` if it was present.
    pub fn remove(&mut self, key: u64) -> io::Result<bool> {
        Ok(self.call(Request::Remove { key })?.status == Status::Ok)
    }

    /// Destructively read all records in `[lo, hi]`.
    pub fn sweep(&mut self, lo: u64, hi: u64) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let resp = self.call(Request::Sweep { lo, hi })?;
        decode_records(resp.body)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad sweep body"))
    }

    /// List keys in `[lo, hi]`.
    pub fn keys(&mut self, lo: u64, hi: u64) -> io::Result<Vec<u64>> {
        let resp = self.call(Request::Keys { lo, hi })?;
        decode_keys(resp.body)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad keys body"))
    }

    /// `(bytes, records)` resident in `[lo, hi]`.
    pub fn range_stats(&mut self, lo: u64, hi: u64) -> io::Result<(u64, u64)> {
        let resp = self.call(Request::RangeStats { lo, hi })?;
        decode_range_stats(resp.body)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad range-stats body"))
    }

    /// `(used_bytes, record_count, capacity_bytes)`.
    pub fn stats(&mut self) -> io::Result<(u64, u64, u64)> {
        let resp = self.call(Request::Stats)?;
        decode_stats(resp.body)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad stats body"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.call(Request::Ping)?.status == Status::Ok)
    }

    /// Ask the server to stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let _ = self.call(Request::Shutdown)?;
        Ok(())
    }
}
