//! The live coordinator: GBA over real sockets.
//!
//! Mirrors [`ecc_core::ElasticCache`]'s control logic, but every node is a
//! TCP cache server and every migration travels the wire. Spawning a server
//! thread stands in for booting an EC2 instance.
//!
//! Single-writer assumption: one coordinator owns the ring and is the only
//! writer, as in the paper (queries are "first sent to a coordinating
//! compute node").

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;

use bytes::Bytes;
use ecc_chash::HashRing;
use ecc_core::SlidingWindow;
use ecc_obs::{ObsEvent, ObsRegistry, ObsSnapshot, TimeSource};

use crate::client::RemoteNode;
use crate::protocol::Status;
use crate::server::{CacheServer, DEFAULT_MAX_CONNECTIONS};

/// Flush a migration/merge `PutMany` batch once it holds this many items…
const PUT_BATCH_MAX_ITEMS: usize = 512;
/// …or this many payload bytes, whichever comes first (keeps frames well
/// under [`crate::protocol::MAX_FRAME`]).
const PUT_BATCH_MAX_BYTES: usize = 1 << 20;

/// One managed node: the in-process server plus the coordinator's client
/// connection to it.
struct ManagedNode {
    server: CacheServer,
    client: RemoteNode,
}

/// A violated coordinator-internal invariant, surfaced as a typed
/// [`io::Error`] on the operation that found it (the coordinator keeps
/// serving; nothing panics).
fn internal(what: &str) -> io::Error {
    io::Error::other(format!("coordinator invariant violated: {what}"))
}

/// Send one `PutMany` frame and fail with `what` on any per-item refusal.
fn flush_put_batch(
    client: &mut RemoteNode,
    batch: Vec<(u64, Bytes)>,
    what: &str,
) -> io::Result<()> {
    for status in client.put_many(batch)? {
        if status != Status::Ok {
            return Err(io::Error::other(format!("{what}: {status:?}")));
        }
    }
    Ok(())
}

/// The live elastic-cache coordinator.
pub struct LiveCoordinator {
    ring: HashRing<usize>,
    nodes: Vec<Option<ManagedNode>>,
    ring_range: u64,
    capacity_bytes: u64,
    btree_order: usize,
    /// Contraction threshold (fraction of one node's capacity).
    pub merge_fill_threshold: f64,
    /// Eviction window (optional, as in the simulated cache).
    window: Option<SlidingWindow>,
    /// Contraction cadence in slice expirations.
    pub contraction_epsilon: u64,
    expirations: u64,
    /// Nodes spawned over the coordinator's lifetime.
    pub nodes_spawned: usize,
    /// Bucket splits performed.
    pub splits: usize,
    /// Node merges performed.
    pub merges: usize,
    /// Coordinator-side flight recorder + latency histograms.
    obs: ObsRegistry,
    /// Clock epoch shared by the coordinator and every node it spawns, so
    /// span intervals from different recorders are comparable after a
    /// `cluster_obs` merge.
    time: TimeSource,
}

impl LiveCoordinator {
    /// Start a coordinator with one cache server of the given capacity.
    pub fn start(ring_range: u64, capacity_bytes: u64) -> io::Result<LiveCoordinator> {
        let time = TimeSource::real();
        let obs = ObsRegistry::new(time.clone());
        // Span-id origins: the coordinator allocates from origin 0, node
        // `id` from origin `id + 1` — distinct per recorder, so merged
        // span ids never collide.
        let mut coord = LiveCoordinator {
            ring: HashRing::new(ring_range),
            nodes: Vec::new(),
            ring_range,
            capacity_bytes,
            btree_order: 64,
            merge_fill_threshold: 0.65,
            window: None,
            contraction_epsilon: 1,
            expirations: 0,
            nodes_spawned: 0,
            splits: 0,
            merges: 0,
            obs,
            time,
        };
        let first = coord.spawn_node()?;
        coord
            .ring
            .insert_bucket(ring_range - 1, first)
            .map_err(|_| internal("fresh ring has a colliding bucket"))?;
        Ok(coord)
    }

    /// Enable sliding-window eviction (`m`, `α`, `T_λ`).
    pub fn enable_window(&mut self, m: usize, alpha: f64, threshold: f64) {
        self.window = Some(SlidingWindow::new(m, alpha, threshold));
    }

    /// Number of live cache servers.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Read-only view of the hash ring (load generators route with it).
    pub fn ring(&self) -> &HashRing<usize> {
        &self.ring
    }

    /// The coordinator's own observability registry (structural events,
    /// fan-out and migration latency histograms).
    pub fn obs(&self) -> &ObsRegistry {
        &self.obs
    }

    /// Cluster-wide observability snapshot: fan out `ObsDump` to every
    /// node, then merge the per-node snapshots with the coordinator's own
    /// (histograms add bucket-wise, events interleave by timestamp).
    pub fn cluster_obs(&mut self) -> io::Result<ObsSnapshot> {
        let mut merged = self.obs.snapshot();
        for (_, snap) in self.fan_out(|_, client| client.obs_dump())? {
            merged.merge(&snap);
        }
        Ok(merged)
    }

    /// Address of node `id`'s cache server, if it is active.
    pub fn node_addr(&self, id: usize) -> Option<SocketAddr> {
        self.nodes
            .get(id)
            .and_then(Option::as_ref)
            .map(|n| n.server.addr())
    }

    /// Total `(bytes, records)` across nodes, collected with one
    /// concurrent stats fan-out instead of sequential round-trips.
    pub fn totals(&mut self) -> io::Result<(u64, u64)> {
        let stats = self.fan_out(|_, client| client.stats())?;
        let mut bytes = 0;
        let mut records = 0;
        for (_, (b, r, _)) in stats {
            bytes += b;
            records += r;
        }
        Ok((bytes, records))
    }

    /// Run `f` against every active node's client concurrently (one scoped
    /// thread per node) and collect `(node_id, result)` pairs. The first
    /// node error wins; all threads are joined either way.
    ///
    /// When the calling thread has a live span (an elastic operation in
    /// progress), the whole fan-out gets a `coord_fanout` child span and
    /// every worker's wire ops attach under it — the worker threads cannot
    /// see the coordinator's thread-local stack, so the scope is handed to
    /// each client explicitly. With no live span the fan-out is untraced
    /// (`cluster_obs` in particular must stay untraced: a traced `ObsDump`
    /// would dump its own server span mid-flight, start without end).
    fn fan_out<T, F>(&mut self, f: F) -> io::Result<Vec<(usize, T)>>
    where
        T: Send,
        F: Fn(usize, &mut RemoteNode) -> io::Result<T> + Sync,
    {
        let fanout = self.obs.span_follow("coord_fanout");
        let scope = fanout.as_ref().map(|s| (s.trace_id(), s.id()));
        let f = &f;
        let mut out = Vec::new();
        let t0 = self.obs.now_us();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .nodes
                .iter_mut()
                .enumerate()
                .filter_map(|(id, slot)| slot.as_mut().map(|n| (id, &mut n.client)))
                .map(|(id, client)| {
                    s.spawn(move || {
                        client.set_trace(scope);
                        let res = f(id, client);
                        client.set_trace(None);
                        (id, res)
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((id, Ok(v))) => out.push((id, v)),
                    Ok((_, Err(e))) => return Err(e),
                    Err(_) => return Err(internal("fan-out worker panicked")),
                }
            }
            Ok(())
        })?;
        // Fan-out joins are quiescent points: no worker may leak a node
        // lock guard past its join. Debug-build check, no-op in release.
        ecc_core::lockorder::assert_quiescent();
        self.obs.record("coord_fanout_us", self.obs.now_us() - t0);
        Ok(out)
    }

    fn active_ids(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| i))
            .collect()
    }

    fn client(&mut self, id: usize) -> io::Result<&mut RemoteNode> {
        self.nodes
            .get_mut(id)
            .and_then(Option::as_mut)
            .map(|n| &mut n.client)
            .ok_or_else(|| internal("ring references an inactive node"))
    }

    fn spawn_node(&mut self) -> io::Result<usize> {
        let id = self.nodes.len();
        let server = CacheServer::spawn_clocked(
            ("127.0.0.1", 0),
            self.capacity_bytes,
            self.btree_order,
            DEFAULT_MAX_CONNECTIONS,
            None,
            self.time.clone(),
            id as u32 + 1,
        )?;
        let client = RemoteNode::connect(server.addr())?.with_obs(self.obs.clone());
        self.nodes.push(Some(ManagedNode { server, client }));
        self.nodes_spawned += 1;
        self.obs.emit(ObsEvent::NodeAlloc {
            at_us: self.obs.now_us(),
            node: id as u32,
        });
        Ok(id)
    }

    /// Look up `key` on the owning node.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        if let Some(w) = &mut self.window {
            w.note_query(key);
        }
        let nid = *self
            .ring
            .node_for_key(key)
            .ok_or_else(|| internal("ring has no buckets"))?;
        self.client(nid)?.get(key)
    }

    /// Store `value` under `key`, splitting buckets / spawning servers as
    /// needed (GBA).
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> io::Result<()> {
        if key >= self.ring_range {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key outside hash line",
            ));
        }
        if value.len() as u64 > self.capacity_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record exceeds node capacity",
            ));
        }
        for _ in 0..64 {
            let nid = *self
                .ring
                .node_for_key(key)
                .ok_or_else(|| internal("ring has no buckets"))?;
            match self.client(nid)?.put(key, value.clone())? {
                Status::Ok => return Ok(()),
                Status::Overflow => self.split_node(nid)?,
                s => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected put status {s:?}"),
                    ))
                }
            }
        }
        Err(io::Error::other("GBA split loop exceeded bound"))
    }

    /// Algorithm 1 lines 8–15, over the wire.
    fn split_node(&mut self, nid: usize) -> io::Result<()> {
        // First-class root span: every wire op below (bucket sizing,
        // key listing, the migration itself) attaches under it via the
        // thread-local scope.
        let _split = self.obs.span_root("elastic_split");
        let buckets = self.ring.buckets_of_node(&nid);
        // Fullest bucket by resident bytes.
        let Some(&first) = buckets.first() else {
            return Err(internal("active node owns no bucket"));
        };
        let mut b_max = first;
        let mut best = 0u64;
        for &b in &buckets {
            let mut bytes = 0;
            for (lo, hi) in self.spans_of_bucket(b)? {
                bytes += self.client(nid)?.range_stats(lo, hi)?.0;
            }
            if bytes >= best {
                best = bytes;
                b_max = b;
            }
        }
        let spans = self.spans_of_bucket(b_max)?;
        let mut keys = Vec::new();
        for &(lo, hi) in &spans {
            keys.extend(self.client(nid)?.keys(lo, hi)?);
        }
        if keys.len() < 2 {
            // Whole-bucket relocation fallback (see the simulated cache).
            if buckets.len() < 2 {
                return Err(io::Error::other("single unsplittable bucket"));
            }
            let dest = self.migrate(nid, &spans)?;
            self.ring
                .remap_bucket(b_max, dest)
                .map_err(|_| internal("bucket vanished while relocating it"))?;
            self.splits += 1;
            self.obs.emit(ObsEvent::BucketSplit {
                at_us: self.obs.now_us(),
                node: nid as u32,
                new_node: dest as u32,
                bucket: b_max,
            });
            return Ok(());
        }
        let mut mu_idx = keys.len() / 2;
        while mu_idx > 0 && self.ring.node_of_bucket(keys[mu_idx]).is_some() {
            mu_idx -= 1;
        }
        let k_mu = keys[mu_idx];
        if self.ring.node_of_bucket(k_mu).is_some() {
            return Err(io::Error::other("no split position"));
        }
        let mut move_spans = Vec::new();
        for &(lo, hi) in &spans {
            if (lo..=hi).contains(&k_mu) {
                move_spans.push((lo, k_mu));
                break;
            }
            move_spans.push((lo, hi));
        }
        let dest = self.migrate(nid, &move_spans)?;
        // Collision with an existing bucket was ruled out when k^µ was
        // chosen above.
        self.ring
            .insert_bucket(k_mu, dest)
            .map_err(|_| internal("split bucket position already occupied"))?;
        self.splits += 1;
        self.obs.emit(ObsEvent::BucketSplit {
            at_us: self.obs.now_us(),
            node: nid as u32,
            new_node: dest as u32,
            bucket: k_mu,
        });
        Ok(())
    }

    /// Algorithm 2 over the wire: sweep `spans` off `src` and put them on
    /// the least-loaded other node (or a freshly spawned one). The sweep
    /// travels back as record batches and lands on `dest` as chunked
    /// `PutMany` frames instead of one round-trip per record.
    fn migrate(&mut self, src: usize, spans: &[(u64, u64)]) -> io::Result<usize> {
        let mut total = 0u64;
        for &(lo, hi) in spans {
            total += self.client(src)?.range_stats(lo, hi)?.0;
        }
        // Least-loaded other node, by one concurrent stats fan-out.
        let mut dest: Option<(usize, u64)> = None;
        for (id, (used, _, _)) in self.fan_out(|_, client| client.stats())? {
            if id == src {
                continue;
            }
            if dest.is_none_or(|(_, best)| used < best) {
                dest = Some((id, used));
            }
        }
        let (dest, allocated) = match dest {
            Some((id, used)) if used + total <= self.capacity_bytes => (id, false),
            _ => (self.spawn_node()?, true),
        };
        let t0 = self.obs.now_us();
        let mut moved_records = 0u64;
        let mut moved_bytes = 0u64;
        for &(lo, hi) in spans {
            // One span per migration chunk: the source sweep and the
            // chunked PutMany replay onto the destination, nested under
            // the enclosing elastic operation.
            let _chunk = self.obs.span_follow("migrate_chunk");
            let records = self.client(src)?.sweep(lo, hi)?;
            moved_records += records.len() as u64;
            moved_bytes += records.iter().map(|(_, v)| v.len() as u64).sum::<u64>();
            self.put_all(dest, records, "migration put failed")?;
        }
        let duration_us = self.obs.now_us() - t0;
        self.obs.record("coord_migrate_us", duration_us);
        self.obs.emit(ObsEvent::SweepMigrate {
            at_us: t0,
            src: src as u32,
            dest: dest as u32,
            records: moved_records,
            bytes: moved_bytes,
            duration_us,
            allocated,
        });
        Ok(dest)
    }

    /// Push `records` onto node `dest` as chunked `PutMany` frames; any
    /// per-item refusal aborts with `what` (migration and merges move
    /// records the destination was sized to hold, so refusal is a bug).
    fn put_all(&mut self, dest: usize, records: Vec<(u64, Vec<u8>)>, what: &str) -> io::Result<()> {
        let client = self.client(dest)?;
        let mut batch: Vec<(u64, Bytes)> = Vec::new();
        let mut batch_bytes = 0usize;
        for (k, v) in records {
            batch_bytes += v.len();
            batch.push((k, Bytes::from(v)));
            if batch.len() >= PUT_BATCH_MAX_ITEMS || batch_bytes >= PUT_BATCH_MAX_BYTES {
                flush_put_batch(client, std::mem::take(&mut batch), what)?;
                batch_bytes = 0;
            }
        }
        if !batch.is_empty() {
            flush_put_batch(client, batch, what)?;
        }
        Ok(())
    }

    /// Close a time slice: evict expired keys, contract every `ε`
    /// expirations.
    pub fn end_time_step(&mut self) -> io::Result<()> {
        let Some(w) = &mut self.window else {
            return Ok(());
        };
        let Some(expired) = w.end_slice() else {
            return Ok(());
        };
        self.expirations += 1;
        // First-class root span over the whole slice close: victim
        // scoring, the eviction fan-out, and the contraction probe all
        // attach under it.
        let _expire = self.obs.span_root("elastic_slice_expire");
        // Score against the window that remains, then drop its borrow
        // before talking to the nodes.
        let victims = match &self.window {
            Some(w) => w.victims(&expired),
            None => Vec::new(),
        };
        self.obs.emit(ObsEvent::SliceExpire {
            at_us: self.obs.now_us(),
            expiration: self.expirations,
            victims: victims.len() as u64,
        });
        // Group victims by owning node: O(nodes) batched `EvictMany`
        // frames fanned out concurrently, instead of one blocking
        // round-trip per victim.
        let mut batches: HashMap<usize, Vec<u64>> = HashMap::new();
        for key in victims {
            if let Some(&nid) = self.ring.node_for_key(key) {
                batches.entry(nid).or_default().push(key);
            }
        }
        if !batches.is_empty() {
            {
                let batches = &batches;
                self.fan_out(|id, client| match batches.get(&id) {
                    Some(keys) => client.evict_many(keys).map(|_| ()),
                    None => Ok(()),
                })?;
            }
            let at_us = self.obs.now_us();
            for (nid, keys) in batches {
                self.obs.emit(ObsEvent::EvictBatch {
                    at_us,
                    node: nid as u32,
                    keys,
                });
            }
        }
        if self.expirations.is_multiple_of(self.contraction_epsilon) {
            self.try_contract()?;
        }
        Ok(())
    }

    /// Merge the two least-loaded nodes when their data fits the threshold.
    pub fn try_contract(&mut self) -> io::Result<()> {
        let mut loads: Vec<(u64, usize)> = self
            .fan_out(|_, client| client.stats())?
            .into_iter()
            .map(|(id, (used, _, _))| (used, id))
            .collect();
        if loads.len() < 2 {
            return Ok(());
        }
        loads.sort();
        let (a_used, a) = loads[0];
        let (b_used, b) = loads[1];
        let limit = (self.merge_fill_threshold * self.capacity_bytes as f64) as u64;
        if a_used + b_used > limit {
            return Ok(());
        }
        // First-class root span for the merge proper (the stats probe
        // above runs on every contraction check and stays outside it).
        let _merge = self.obs.span_root("elastic_merge");
        // Drain a into b, as one migration chunk.
        let t0 = self.obs.now_us();
        let hi = self.ring_range - 1;
        let moved;
        {
            let _chunk = self.obs.span_follow("migrate_chunk");
            let records = self.client(a)?.sweep(0, hi)?;
            moved = records.len() as u64;
            self.put_all(b, records, "merge put failed")?;
        }
        self.obs.record("coord_migrate_us", self.obs.now_us() - t0);
        for bucket in self.ring.buckets_of_node(&a) {
            self.ring
                .remap_bucket(bucket, b)
                .map_err(|_| internal("bucket vanished during merge"))?;
        }
        // Coalesce redundant buckets (see the simulated coordinator).
        for bucket in self.ring.buckets_of_node(&b) {
            if self.ring.len() <= 1 {
                break;
            }
            let Ok(succ) = self.ring.successor(bucket) else {
                break;
            };
            if succ != bucket && self.ring.node_of_bucket(succ) == Some(&b) {
                self.ring
                    .remove_bucket(bucket)
                    .map_err(|_| internal("bucket vanished while coalescing"))?;
            }
        }
        self.obs.emit(ObsEvent::NodeMerge {
            at_us: t0,
            src: a as u32,
            dest: b as u32,
            records: moved,
        });
        if let Some(mut dead) = self.nodes[a].take() {
            let _ = dead.client.shutdown();
            dead.server.stop();
        }
        self.obs.emit(ObsEvent::NodeDealloc {
            at_us: self.obs.now_us(),
            node: a as u32,
        });
        self.merges += 1;
        Ok(())
    }

    /// Audit coordinator-wide invariants: the ring partitions the hash
    /// line, every bucket maps to a live server, every live server owns at
    /// least one bucket, and no server reports more resident bytes than its
    /// capacity. Returns a typed [`io::Error`] on the first violation (the
    /// simulation harness promotes this to a hard failure after every
    /// event).
    pub fn check_invariants(&mut self) -> io::Result<()> {
        self.ring
            .check_invariants()
            .map_err(|e| internal(&format!("ring audit: {e}")))?;
        let active = self.active_ids();
        for (pos, &nid) in self.ring.buckets() {
            if !active.contains(&nid) {
                return Err(internal(&format!(
                    "bucket {pos} references inactive node {nid}"
                )));
            }
        }
        for id in active {
            if self.ring.buckets_of_node(&id).is_empty() {
                return Err(internal(&format!("live node {id} owns no bucket")));
            }
        }
        for (id, (used, _, cap)) in self.fan_out(|_, client| client.stats())? {
            if used > cap {
                return Err(internal(&format!(
                    "node {id} holds {used} B over its {cap} B capacity"
                )));
            }
        }
        Ok(())
    }

    /// Stop every cache server.
    pub fn shutdown(&mut self) -> io::Result<()> {
        for slot in &mut self.nodes {
            if let Some(mut node) = slot.take() {
                let _ = node.client.shutdown();
                node.server.stop();
            }
        }
        Ok(())
    }

    /// Circular spans of the arc owned by bucket `b`.
    fn spans_of_bucket(&self, b: u64) -> io::Result<Vec<(u64, u64)>> {
        let pred = self
            .ring
            .predecessor(b)
            .map_err(|_| internal("bucket vanished while computing its arc"))?;
        let r = self.ring_range;
        Ok(if pred == b {
            if b == r - 1 {
                vec![(0, r - 1)]
            } else {
                vec![(b + 1, r - 1), (0, b)]
            }
        } else if pred < b {
            vec![(pred + 1, b)]
        } else if pred == r - 1 {
            vec![(0, b)]
        } else {
            vec![(pred + 1, r - 1), (0, b)]
        })
    }
}

impl Drop for LiveCoordinator {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut c = LiveCoordinator::start(1 << 16, 100_000).unwrap();
        c.put(1, b"one".to_vec()).unwrap();
        c.put(2, b"two".to_vec()).unwrap();
        assert_eq!(c.get(1).unwrap(), Some(b"one".to_vec()));
        assert_eq!(c.get(2).unwrap(), Some(b"two".to_vec()));
        assert_eq!(c.get(3).unwrap(), None);
        c.shutdown().unwrap();
    }

    #[test]
    fn grows_across_real_servers_under_load() {
        // Room for ~10 x 100 B records per node; insert 64 keys.
        let mut c = LiveCoordinator::start(1 << 16, 1000).unwrap();
        for k in 0..64u64 {
            c.put(k * 1000 + 5, vec![k as u8; 100]).unwrap();
        }
        assert!(c.node_count() >= 6, "only {} nodes", c.node_count());
        assert!(c.splits >= 5);
        // Every record is still reachable through the ring.
        for k in 0..64u64 {
            assert_eq!(
                c.get(k * 1000 + 5).unwrap(),
                Some(vec![k as u8; 100]),
                "key {k} lost"
            );
        }
        let (bytes, records) = c.totals().unwrap();
        assert_eq!(records, 64);
        // Each 100-byte payload occupies a 136-byte slab slot.
        assert_eq!(bytes, 64 * 136);
        c.shutdown().unwrap();
    }

    #[test]
    fn eviction_and_contraction_over_the_wire() {
        let mut c = LiveCoordinator::start(1 << 16, 1000).unwrap();
        c.enable_window(2, 0.99, 0.99f64.powi(1));
        for k in 0..32u64 {
            if c.get(k * 999).unwrap().is_none() {
                c.put(k * 999, vec![1; 100]).unwrap();
            }
        }
        let grown = c.node_count();
        assert!(grown >= 3);
        for _ in 0..8 {
            c.end_time_step().unwrap();
        }
        let (_, records) = c.totals().unwrap();
        assert_eq!(records, 0, "eviction should have emptied the cache");
        assert!(c.node_count() < grown, "no contraction");
        assert!(c.merges >= 1);
        c.shutdown().unwrap();
    }

    #[test]
    fn cluster_obs_merges_nodes_and_coordinator() {
        let mut c = LiveCoordinator::start(1 << 16, 1000).unwrap();
        c.enable_window(2, 0.99, 0.99f64.powi(1));
        for k in 0..32u64 {
            if c.get(k * 999).unwrap().is_none() {
                c.put(k * 999, vec![1; 100]).unwrap();
            }
        }
        for _ in 0..8 {
            c.end_time_step().unwrap();
        }
        let snap = c.cluster_obs().unwrap();
        let counts = snap.event_counts();
        // The grow phase split buckets and spawned nodes; the shrink phase
        // evicted and merged. Every structural family must be on record.
        assert!(counts.get("bucket_split").copied().unwrap_or(0) >= 1);
        assert!(counts.get("node_alloc").copied().unwrap_or(0) >= 2);
        assert!(counts.get("node_merge").copied().unwrap_or(0) >= 1);
        assert!(counts.get("evict_batch").copied().unwrap_or(0) >= 1);
        // Every merge pairs with a dealloc of the drained node.
        assert_eq!(
            counts.get("node_merge"),
            counts.get("node_dealloc"),
            "merge/dealloc pairing broken: {counts:?}"
        );
        // Per-node server histograms merged in. The data path is batched
        // (put_many), and only survivors of the contraction still hold
        // their registries, so assert on ops the survivor served.
        let names: Vec<&String> = snap.hists.keys().collect();
        assert!(
            snap.hist("server_op_us:put_many").is_some(),
            "hists: {names:?}"
        );
        assert!(snap.hist("coord_fanout_us").is_some());
        // The exposition renders and carries quantiles + events.
        let text = snap.render_prometheus();
        assert!(text.contains("ecc_server_op_us{op=\"put_many\",quantile=\"0.99\"}"));
        assert!(text.contains("ecc_events_total{type=\"node_merge\"}"));
        // Events interleave in timestamp order after the merge.
        let times: Vec<u64> = snap.events.iter().map(|e| e.at_us()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        c.shutdown().unwrap();
    }

    #[test]
    fn elastic_operations_trace_as_complete_root_span_trees() {
        let mut c = LiveCoordinator::start(1 << 16, 1000).unwrap();
        c.enable_window(2, 0.99, 0.99f64.powi(1));
        for k in 0..32u64 {
            if c.get(k * 999).unwrap().is_none() {
                c.put(k * 999, vec![1; 100]).unwrap();
            }
        }
        for _ in 0..8 {
            c.end_time_step().unwrap();
        }
        let (splits, merges) = (c.splits, c.merges);
        assert!(splits >= 1 && merges >= 1, "run exercised no elasticity");
        let snap = c.cluster_obs().unwrap();
        let stats = ecc_obs::verify_spans(&snap.events).expect("cluster span stream well-formed");
        assert!(
            stats.roots >= splits + merges,
            "{} roots for {splits} splits + {merges} merges",
            stats.roots
        );
        // Each root span's id doubles as its trace id: one trace per root.
        assert_eq!(stats.roots, stats.traces);
        let spans = ecc_obs::build_spans(&snap.events).unwrap();
        let count = |k: &str| spans.iter().filter(|s| s.kind == k).count();
        assert_eq!(count("elastic_split"), splits);
        assert_eq!(count("elastic_merge"), merges);
        assert!(count("elastic_slice_expire") >= 1);
        assert!(count("coord_fanout") >= 1);
        assert!(count("migrate_chunk") >= splits + merges);
        assert!(count("wire:sweep") >= 1);
        // Surviving nodes dumped the server halves of the traced wire ops.
        assert!(count("srv") >= 1, "no node-side spans in the cluster dump");
        // Fan-out wire ops hang under the coord_fanout span, not the root.
        let fanouts: Vec<u64> = spans
            .iter()
            .filter(|s| s.kind == "coord_fanout")
            .map(|s| s.span)
            .collect();
        assert!(spans
            .iter()
            .any(|s| s.kind.starts_with("wire:") && fanouts.contains(&s.parent)));
        c.shutdown().unwrap();
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut c = LiveCoordinator::start(1024, 500).unwrap();
        assert!(c.put(5000, vec![1]).is_err());
        assert!(c.put(1, vec![0; 501]).is_err());
        c.shutdown().unwrap();
    }
}
