//! The cache-server binary logic: a TCP listener owning one node's index.
//!
//! "The cache server is automatically fetched from a remote location on the
//! startup of a new Cloud instance" (paper §III-A) — here, spawning a
//! server thread plays the role of booting that instance.
//!
//! The node serves "a litany of simultaneous queries" (§III) through the
//! event-driven engine in [`crate::reactor`]: an acceptor thread enforces
//! the connection bound (one [`Status::Busy`] frame past it) and hands
//! admitted sockets round-robin to N reactor threads, each sweeping its
//! owned connections with nonblocking reads, pipelined decode/execute
//! against the shared [`ShardedNode`], and one gathered flush per sweep.
//! Response bodies are refcounted [`bytes::Bytes`] views of the stored
//! records: a GET never memcpys the payload.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ecc_core::{PutOutcome, ShardedNode, DEFAULT_STRIPES};
use ecc_obs::{encode_dump, ObsRegistry, TimeSource};

use crate::protocol::{
    encode_get_many, encode_keys, encode_range_stats, encode_records, encode_stats,
    encode_statuses, write_frame_buffered, Op, Request, Response, Status,
};
use crate::reactor::{spawn_reactors, ReactorPool, ReactorShared};

/// Default bound on concurrent client connections. Above it the accept
/// loop answers with a single [`Status::Busy`] frame and closes, so a
/// connection flood degrades into clean refusals instead of unbounded
/// thread spawning.
pub const DEFAULT_MAX_CONNECTIONS: u64 = 256;

/// A running cache server (one node of the cooperative cache).
pub struct CacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    halt: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    refused: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
    reactors: Option<ReactorPool>,
    obs: ObsRegistry,
}

/// Decrements the live-connection gauge when its connection is dropped by
/// the owning reactor, however it closes.
pub(crate) struct ConnSlot(Arc<AtomicU64>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl CacheServer {
    /// Bind a listener on `127.0.0.1:0` (an ephemeral loopback port) and
    /// serve a node with the given capacity and index order.
    pub fn spawn(capacity_bytes: u64, btree_order: usize) -> io::Result<CacheServer> {
        Self::spawn_on(("127.0.0.1", 0), capacity_bytes, btree_order)
    }

    /// Bind a listener on an explicit address (deployment entry point; see
    /// the `cache_server` binary) with the default connection bound.
    pub fn spawn_on<A: std::net::ToSocketAddrs>(
        addr: A,
        capacity_bytes: u64,
        btree_order: usize,
    ) -> io::Result<CacheServer> {
        Self::spawn_bounded(addr, capacity_bytes, btree_order, DEFAULT_MAX_CONNECTIONS)
    }

    /// Bind a listener with an explicit bound on concurrent connections.
    /// Connections past the bound receive one [`Status::Busy`] frame and
    /// are closed without being served (and without counting as accepted).
    pub fn spawn_bounded<A: std::net::ToSocketAddrs>(
        addr: A,
        capacity_bytes: u64,
        btree_order: usize,
        max_connections: u64,
    ) -> io::Result<CacheServer> {
        Self::spawn_with(addr, capacity_bytes, btree_order, max_connections, None)
    }

    /// [`CacheServer::spawn_bounded`] with an explicit reactor-thread
    /// count (`None` = one per core, capped at
    /// [`crate::reactor::DEFAULT_REACTOR_THREADS`]). Tests use this to
    /// exercise multi-reactor handoff regardless of host core count.
    pub fn spawn_with<A: std::net::ToSocketAddrs>(
        addr: A,
        capacity_bytes: u64,
        btree_order: usize,
        max_connections: u64,
        reactor_threads: Option<usize>,
    ) -> io::Result<CacheServer> {
        Self::spawn_clocked(
            addr,
            capacity_bytes,
            btree_order,
            max_connections,
            reactor_threads,
            TimeSource::real(),
            0,
        )
    }

    /// [`CacheServer::spawn_with`] with an injected clock epoch and span
    /// origin. Tracing deployments pass every node the SAME [`TimeSource`]
    /// (and a distinct `origin`) so span timestamps from different
    /// recorders are comparable after an `ObsDump` merge — cross-node
    /// parent/child interval nesting is only meaningful on a shared epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_clocked<A: std::net::ToSocketAddrs>(
        addr: A,
        capacity_bytes: u64,
        btree_order: usize,
        max_connections: u64,
        reactor_threads: Option<usize>,
        time: TimeSource,
        origin: u32,
    ) -> io::Result<CacheServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let halt = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let refused = Arc::new(AtomicU64::new(0));
        let obs = ObsRegistry::new(time);
        obs.set_origin(origin);
        let node = Arc::new(
            ShardedNode::new(capacity_bytes, btree_order, DEFAULT_STRIPES).with_obs(obs.clone()),
        );

        let shared = ReactorShared {
            node,
            obs: obs.clone(),
            shutdown: Arc::clone(&shutdown),
            halt: Arc::clone(&halt),
        };
        let n_reactors = crate::reactor::effective_reactors(reactor_threads);
        let (mut handoff, pool) = spawn_reactors(n_reactors, addr.port(), &shared)?;

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_count = Arc::clone(&connections);
        let refused_count = Arc::clone(&refused);
        let live = Arc::new(AtomicU64::new(0));
        let max_connections = max_connections.max(1);
        let accept_thread = std::thread::Builder::new()
            .name(format!("ecc-server-{}", addr.port()))
            .spawn(move || {
                for conn in listener.incoming() {
                    // Acquire pairs with the Release/AcqRel writers of the
                    // shutdown flag; the accept loop only needs to observe
                    // the flag and everything published before it was set.
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // Request/response framing interacts badly with Nagle +
                    // delayed ACK (~40 ms per exchange); flush eagerly.
                    let _ = stream.set_nodelay(true);
                    // Reserve a connection slot before handing off; on
                    // refusal send one Busy frame so the client sees a
                    // protocol answer, not a silent hangup.
                    if live.fetch_add(1, Ordering::AcqRel) >= max_connections {
                        let _slot = ConnSlot(Arc::clone(&live));
                        refused_count.fetch_add(1, Ordering::Relaxed);
                        let mut buf = Vec::new();
                        let _ = write_frame_buffered(&mut stream, &mut buf, |b| {
                            Response::status(Status::Busy).encode_into(b)
                        });
                        continue;
                    }
                    let slot = ConnSlot(Arc::clone(&live));
                    accept_count.fetch_add(1, Ordering::Relaxed);
                    handoff.dispatch(stream, slot);
                }
            })?;

        Ok(CacheServer {
            addr,
            shutdown,
            halt,
            connections,
            refused,
            accept_thread: Some(accept_thread),
            reactors: Some(pool),
            obs,
        })
    }

    /// This node's observability registry (shared with its connection
    /// threads; the same store the wire `ObsDump` op snapshots).
    pub fn obs(&self) -> &ObsRegistry {
        &self.obs
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many client connections the listener has accepted so far —
    /// lets tests verify that clients actually reuse connections instead
    /// of reconnecting per request. Refused connections are not counted.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// How many connections were refused with a `Busy` frame because the
    /// concurrent-connection bound was reached.
    pub fn connections_refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain the reactors, and join every server thread.
    /// Idempotent. If a wire `Shutdown` already set the flag, the reactors
    /// wind down on their own as their connections close (mirroring the
    /// old detached connection threads), and `stop()` does not wait.
    pub fn stop(&mut self) {
        // AcqRel: the swap both publishes the stop (Release, seen by the
        // accept loop's Acquire load) and observes a concurrent stop()
        // (Acquire), making the join-once idempotence race-free.
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Release pairs with the reactors' Acquire loads; everything the
        // server did is published before they observe the halt.
        self.halt.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(mut pool) = self.reactors.take() {
            pool.join();
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Execute one request against the node. Point ops take only the key's
/// stripe lock; Stats reads atomics with no lock at all; range ops
/// (Sweep/Keys/RangeStats) serialize behind the structural lock. Called
/// from the reactor threads, one pipelined frame at a time.
pub(crate) fn handle(
    req: Request,
    node: &ShardedNode,
    shutdown: &AtomicBool,
    obs: &ObsRegistry,
) -> Response {
    match req {
        Request::Get { key } => match node.get(key) {
            // The body shares the stored record's allocation: the only
            // payload copy on a GET is the kernel socket write.
            Some(rec) => Response::ok(rec.bytes()),
            None => Response::status(Status::NotFound),
        },
        Request::Put { key, value } => Response::status(put_record(node, key, value)),
        Request::Remove { key } => match node.remove(key) {
            Some(_) => Response::status(Status::Ok),
            None => Response::status(Status::NotFound),
        },
        Request::PutMany { items } => {
            // Per-item verdicts: a refused item never aborts the rest of
            // the batch.
            let statuses: Vec<Status> = items
                .into_iter()
                .map(|(key, value)| put_record(node, key, value))
                .collect();
            Response::ok(encode_statuses(&statuses))
        }
        Request::GetMany { keys } => {
            let entries: Vec<Option<bytes::Bytes>> = keys
                .iter()
                .map(|&k| node.get(k).map(|r| r.bytes()))
                .collect();
            Response::ok(encode_get_many(&entries))
        }
        Request::EvictMany { keys } => {
            let statuses: Vec<Status> = keys
                .iter()
                .map(|&k| {
                    if node.remove(k).is_some() {
                        Status::Ok
                    } else {
                        Status::NotFound
                    }
                })
                .collect();
            Response::ok(encode_statuses(&statuses))
        }
        Request::Sweep { lo, hi } => {
            let records: Vec<(u64, bytes::Bytes)> = node
                .drain_range(lo, hi)
                .into_iter()
                .map(|(k, r)| (k, r.bytes()))
                .collect();
            Response::ok(encode_records(&records))
        }
        Request::Keys { lo, hi } => Response::ok(encode_keys(&node.keys_in_range(lo, hi))),
        Request::RangeStats { lo, hi } => {
            let (bytes, records) = node.range_stats(lo, hi);
            Response::ok(encode_range_stats(bytes, records))
        }
        Request::Stats => Response::ok(encode_stats(
            node.used_bytes(),
            node.record_count(),
            node.capacity_bytes(),
        )),
        Request::Ping => Response::status(Status::Ok),
        Request::ObsDump => {
            let snap = obs.snapshot();
            Response::ok(bytes::Bytes::from(encode_dump(&snap)))
        }
        Request::Shutdown => {
            // Release pairs with the accept loop's Acquire load; no
            // total order with unrelated atomics is needed.
            shutdown.store(true, Ordering::Release);
            Response::status(Status::Ok)
        }
    }
}

/// Static per-op histogram name (`server_op_us:<op>`), so the hot path
/// never allocates a label string.
pub(crate) fn op_hist_name(op: Option<Op>) -> &'static str {
    match op {
        Some(Op::Get) => "server_op_us:get",
        Some(Op::Put) => "server_op_us:put",
        Some(Op::Remove) => "server_op_us:remove",
        Some(Op::Sweep) => "server_op_us:sweep",
        Some(Op::Keys) => "server_op_us:keys",
        Some(Op::Stats) => "server_op_us:stats",
        Some(Op::Ping) => "server_op_us:ping",
        Some(Op::Shutdown) => "server_op_us:shutdown",
        Some(Op::RangeStats) => "server_op_us:range_stats",
        Some(Op::PutMany) => "server_op_us:put_many",
        Some(Op::GetMany) => "server_op_us:get_many",
        Some(Op::EvictMany) => "server_op_us:evict_many",
        Some(Op::ObsDump) => "server_op_us:obs_dump",
        None => "server_op_us:bad",
    }
}

/// Store one record under the capacity rule shared by `Put` and
/// `PutMany`: a replacement frees the old record's footprint, so only
/// the footprint *growth* counts against capacity; a growing replacement
/// that no longer fits is refused like any other overflow. The decoded
/// value lands in the node's slab arena — the one ingest copy moves the
/// bytes off the connection buffer into a recycled size-class slot, so
/// steady-state churn never touches the global allocator.
fn put_record(node: &ShardedNode, key: u64, value: bytes::Bytes) -> Status {
    match node.put_slice(key, &value) {
        PutOutcome::Stored => Status::Ok,
        PutOutcome::Overflow => Status::Overflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteNode;

    #[test]
    fn server_serves_basic_operations() {
        let mut server = CacheServer::spawn(10_000, 16).unwrap();
        let mut client = RemoteNode::connect(server.addr()).unwrap();
        assert!(client.ping().unwrap());
        assert_eq!(client.get(5).unwrap(), None);
        assert_eq!(client.put(5, b"abc".to_vec()).unwrap(), Status::Ok);
        assert_eq!(client.get(5).unwrap(), Some(b"abc".to_vec()));
        // `used` is the record's true slab footprint (a 64-byte slot for
        // a 3-byte payload), not its payload length.
        let (used, count, cap) = client.stats().unwrap();
        assert_eq!((used, count, cap), (64, 1, 10_000));
        assert!(client.remove(5).unwrap());
        assert!(!client.remove(5).unwrap());
        server.stop();
    }

    #[test]
    fn malformed_frames_get_bad_request_and_connection_survives() {
        use crate::protocol::{read_frame, write_frame, Status};

        let mut server = CacheServer::spawn(10_000, 16).unwrap();
        let mut raw = TcpStream::connect(server.addr()).unwrap();

        // Unknown opcode.
        write_frame(&mut raw, &[0xFF, 1, 2, 3]).unwrap();
        let resp = read_frame(&mut raw).unwrap();
        assert_eq!(Status::from_u8(resp[0]), Some(Status::BadRequest));

        // Known opcode (Get) with a truncated body.
        write_frame(&mut raw, &[0x01, 0xAB]).unwrap();
        let resp = read_frame(&mut raw).unwrap();
        assert_eq!(Status::from_u8(resp[0]), Some(Status::BadRequest));

        // Empty payload.
        write_frame(&mut raw, &[]).unwrap();
        let resp = read_frame(&mut raw).unwrap();
        assert_eq!(Status::from_u8(resp[0]), Some(Status::BadRequest));

        // The same connection still serves well-formed requests, and the
        // node is untouched.
        let req = Request::Ping.encode();
        write_frame(&mut raw, &req).unwrap();
        let resp = read_frame(&mut raw).unwrap();
        assert_eq!(Status::from_u8(resp[0]), Some(Status::Ok));

        let mut client = RemoteNode::connect(server.addr()).unwrap();
        let (used, count, _) = client.stats().unwrap();
        assert_eq!((used, count), (0, 0), "garbage must not create records");
        server.stop();
    }

    #[test]
    fn overflow_is_reported_not_stored() {
        // Footprints: a 60-byte value occupies an 80-byte slot, a 90-byte
        // value a 104-byte slot.
        let mut server = CacheServer::spawn(150, 8).unwrap();
        let mut client = RemoteNode::connect(server.addr()).unwrap();
        assert_eq!(client.put(1, vec![0; 60]).unwrap(), Status::Ok);
        assert_eq!(client.put(2, vec![0; 60]).unwrap(), Status::Overflow);
        assert_eq!(client.get(2).unwrap(), None);
        // Replacement growth within budget (80 → 104) is accepted.
        assert_eq!(client.put(1, vec![0; 90]).unwrap(), Status::Ok);
        server.stop();
    }

    #[test]
    fn replacement_growth_past_capacity_overflows() {
        // Regression (simtest proto/6, live/16): the Put handler used to
        // treat any replacement as free, letting a record grow past the
        // node's capacity. Growth within budget stays Ok; growth past it
        // must be refused and leave the old record intact.
        // Footprints: 60 → 80-byte slot, 150 → 176, 200 → 224.
        let mut server = CacheServer::spawn(200, 8).unwrap();
        let mut client = RemoteNode::connect(server.addr()).unwrap();
        assert_eq!(client.put(1, vec![7; 60]).unwrap(), Status::Ok);
        assert_eq!(client.put(1, vec![7; 150]).unwrap(), Status::Ok);
        assert_eq!(client.put(1, vec![7; 200]).unwrap(), Status::Overflow);
        assert_eq!(client.get(1).unwrap(), Some(vec![7; 150]));
        let (used, count, _) = client.stats().unwrap();
        assert_eq!((used, count), (176, 1));
        server.stop();
    }

    #[test]
    fn sweep_drains_a_range_over_the_wire() {
        let mut server = CacheServer::spawn(1_000_000, 16).unwrap();
        let mut client = RemoteNode::connect(server.addr()).unwrap();
        for k in 0..50u64 {
            client.put(k, vec![k as u8; 4]).unwrap();
        }
        let swept = client.sweep(10, 19).unwrap();
        assert_eq!(swept.len(), 10);
        assert_eq!(swept[0], (10, vec![10u8; 4]));
        assert_eq!(client.get(10).unwrap(), None);
        assert_eq!(client.get(9).unwrap(), Some(vec![9u8; 4]));
        assert_eq!(client.keys(0, 100).unwrap().len(), 40);
        server.stop();
    }

    #[test]
    fn concurrent_clients_are_serialized_safely() {
        let server = CacheServer::spawn(1_000_000, 16).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = RemoteNode::connect(addr).unwrap();
                    for i in 0..100u64 {
                        let key = t * 1000 + i;
                        c.put(key, key.to_le_bytes().to_vec()).unwrap();
                        assert_eq!(c.get(key).unwrap(), Some(key.to_le_bytes().to_vec()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = RemoteNode::connect(addr).unwrap();
        let (_, count, _) = c.stats().unwrap();
        assert_eq!(count, 400);
    }

    #[test]
    fn connections_past_the_bound_get_a_busy_frame() {
        use crate::protocol::read_frame;

        let mut server = CacheServer::spawn_bounded(("127.0.0.1", 0), 10_000, 16, 2).unwrap();
        let mut a = RemoteNode::connect(server.addr()).unwrap();
        let mut b = RemoteNode::connect(server.addr()).unwrap();
        assert!(a.ping().unwrap());
        assert!(b.ping().unwrap());

        // Third connection: one Busy frame, then EOF.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        let frame = read_frame(&mut raw).unwrap();
        assert_eq!(Status::from_u8(frame[0]), Some(Status::Busy));
        assert_eq!(frame.len(), 1);
        assert_eq!(
            read_frame(&mut raw).map_err(|e| e.kind()).err(),
            Some(io::ErrorKind::UnexpectedEof)
        );

        assert_eq!(server.connections_accepted(), 2);
        assert_eq!(server.connections_refused(), 1);

        // Admitted connections are unaffected, and closing one frees the
        // slot for a new client.
        assert!(a.ping().unwrap());
        drop(b);
        let admitted = (0..50).find_map(|_| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut c = RemoteNode::connect(server.addr()).ok()?;
            c.ping().ok()
        });
        assert_eq!(admitted, Some(true), "freed slot must admit a new client");
        server.stop();
    }

    #[test]
    fn client_maps_busy_to_connection_refused() {
        let mut server = CacheServer::spawn_bounded(("127.0.0.1", 0), 10_000, 16, 1).unwrap();
        let mut a = RemoteNode::connect(server.addr()).unwrap();
        assert!(a.ping().unwrap());
        let mut b = RemoteNode::connect(server.addr()).unwrap();
        let err = b.ping().expect_err("refused connection must error");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        server.stop();
    }

    #[test]
    fn obs_dump_reports_per_op_latency_and_frame_events() {
        let mut server = CacheServer::spawn(10_000, 16).unwrap();
        let mut client = RemoteNode::connect(server.addr()).unwrap();
        client.put(1, b"abc".to_vec()).unwrap();
        client.get(1).unwrap();
        client.get(2).unwrap();
        let snap = client.obs_dump().unwrap();
        assert_eq!(snap.hist("server_op_us:put").map(|h| h.count()), Some(1));
        assert_eq!(snap.hist("server_op_us:get").map(|h| h.count()), Some(2));
        // The sharded node records its lock waits into the same registry.
        assert!(
            snap.hist("lock_wait_us:stripe")
                .map(|h| h.count())
                .unwrap_or(0)
                > 0
        );
        let counts = snap.event_counts();
        // Rx events for put + 2 gets + the dump itself; Tx lags by the
        // in-flight dump response.
        assert_eq!(counts.get("frame_rx"), Some(&4));
        assert_eq!(counts.get("frame_tx"), Some(&3));
        server.stop();
    }

    #[test]
    fn traced_requests_build_complete_cross_recorder_span_trees() {
        // Client and server share ONE clock epoch (spawn_clocked) so the
        // merged trace's parent/child interval nesting is checkable.
        let time = TimeSource::real();
        let mut server =
            CacheServer::spawn_clocked(("127.0.0.1", 0), 10_000, 16, 256, None, time.clone(), 1)
                .unwrap();
        let client_obs = ObsRegistry::new(time);
        client_obs.set_origin(99);
        let mut client = RemoteNode::connect(server.addr())
            .unwrap()
            .with_obs(client_obs.clone());

        client.set_trace(Some((0x77, 0)));
        client.put(1, b"abc".to_vec()).unwrap();
        client.get(1).unwrap();
        client.set_trace(None);

        // A traceless peer interoperates with the tracing server on the
        // same socket lifetime as the traced one.
        let mut plain = RemoteNode::connect(server.addr()).unwrap();
        assert_eq!(plain.get(1).unwrap(), Some(b"abc".to_vec()));

        let snap = client.obs_dump().unwrap();
        let server_counts = snap.event_counts();
        // 2 × (srv, srv_queue, srv_exec, lock_wait).
        assert_eq!(server_counts.get("span_start"), Some(&8));
        assert_eq!(server_counts.get("span_end"), Some(&8));

        // Merge both recorders and verify the full trees: every start
        // ended, no orphans, child intervals nested. The put and get each
        // form wire → srv → {srv_queue, srv_exec} (lock_wait spans live
        // under srv_exec when the node records them).
        let mut events = client_obs.snapshot().events;
        events.extend(snap.events);
        let stats = ecc_obs::verify_spans(&events).expect("merged trace is well-formed");
        assert_eq!(stats.roots, 2, "one root per traced client call");
        assert_eq!(stats.traces, 1);
        assert!(stats.spans >= 8, "spans: {}", stats.spans);
        server.stop();
    }

    #[test]
    fn pipelined_burst_on_one_connection_answers_in_order() {
        use crate::protocol::{read_frame, Status};
        use std::io::Write;

        let mut server = CacheServer::spawn(1 << 20, 16).unwrap();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.set_nodelay(true).unwrap();

        // 50 puts + 50 gets written as ONE burst before any response is
        // read: the reactor must decode every frame that arrived, execute
        // them in order, and answer all 100.
        let mut burst = Vec::new();
        for k in 0..50u64 {
            crate::protocol::append_frame(&mut burst, |b| {
                Request::Put {
                    key: k,
                    value: bytes::Bytes::from(k.to_le_bytes().to_vec()),
                }
                .encode_into(b)
            })
            .unwrap();
        }
        for k in 0..50u64 {
            crate::protocol::append_frame(&mut burst, |b| Request::Get { key: k }.encode_into(b))
                .unwrap();
        }
        raw.write_all(&burst).unwrap();

        for _ in 0..50 {
            let resp = read_frame(&mut raw).unwrap();
            assert_eq!(Status::from_u8(resp[0]), Some(Status::Ok));
            assert_eq!(resp.len(), 1);
        }
        for k in 0..50u64 {
            let resp = read_frame(&mut raw).unwrap();
            assert_eq!(Status::from_u8(resp[0]), Some(Status::Ok));
            assert_eq!(&resp[1..], k.to_le_bytes());
        }
        server.stop();
    }

    #[test]
    fn multi_reactor_handoff_serves_every_connection() {
        // More reactors than cores and more connections than reactors:
        // round-robin ownership must serve them all concurrently.
        let server = CacheServer::spawn_with(("127.0.0.1", 0), 1 << 20, 16, 256, Some(3)).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..6)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = RemoteNode::connect(addr).unwrap();
                    for i in 0..50u64 {
                        let key = t * 1000 + i;
                        assert_eq!(c.put(key, vec![t as u8; 8]).unwrap(), Status::Ok);
                        assert_eq!(c.get(key).unwrap(), Some(vec![t as u8; 8]));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.connections_accepted(), 6);
    }

    #[test]
    fn reactor_histograms_decompose_wire_latency() {
        let mut server = CacheServer::spawn(1 << 20, 16).unwrap();
        let mut client = RemoteNode::connect(server.addr()).unwrap();
        for k in 0..20u64 {
            client.put(k, vec![1; 16]).unwrap();
            client.get(k).unwrap();
        }
        let snap = client.obs_dump().unwrap();
        // Every request-bearing wakeup records a dispatch sample...
        let dispatch = snap
            .hist("reactor_dispatch_us")
            .map(|h| h.count())
            .unwrap_or(0);
        assert!(dispatch >= 40, "dispatch samples: {dispatch}");
        // ...and a burst-size sample (sequential client → depth-1 wakes).
        let wakes = snap
            .hist("reactor_frames_per_wake")
            .map(|h| h.count())
            .unwrap_or(0);
        assert!(wakes >= 40, "frames-per-wake samples: {wakes}");
        server.stop();
    }

    #[test]
    fn stop_is_idempotent() {
        let mut server = CacheServer::spawn(1000, 8).unwrap();
        server.stop();
        server.stop();
    }
}
