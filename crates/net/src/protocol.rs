//! The length-prefixed binary wire protocol.
//!
//! Every message is `[u32 len][payload]` with `len = payload.len()`. A
//! request payload starts with a one-byte opcode; a response payload starts
//! with a one-byte status. Integers are little-endian.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame size (guards against corrupt length prefixes).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Look up one key.
    Get = 0x01,
    /// Store one record.
    Put = 0x02,
    /// Remove one key.
    Remove = 0x03,
    /// Destructively read all records in an inclusive key range
    /// (the migration sweep).
    Sweep = 0x04,
    /// List keys in an inclusive range (split planning).
    Keys = 0x05,
    /// Report `used_bytes`, `record_count`, `capacity_bytes`.
    Stats = 0x06,
    /// Liveness probe.
    Ping = 0x07,
    /// Stop the server.
    Shutdown = 0x08,
    /// Report `(bytes, records)` resident in an inclusive key range — the
    /// coordinator's split planning (bucket fullness `||b||`).
    RangeStats = 0x09,
}

impl Op {
    /// Parse an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Get,
            0x02 => Op::Put,
            0x03 => Op::Remove,
            0x04 => Op::Sweep,
            0x05 => Op::Keys,
            0x06 => Op::Stats,
            0x07 => Op::Ping,
            0x08 => Op::Shutdown,
            0x09 => Op::RangeStats,
            _ => return None,
        })
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success (body depends on the request).
    Ok = 0x00,
    /// Key not present.
    NotFound = 0x01,
    /// PUT refused: the record would overflow this node (the coordinator
    /// reacts with a GBA split).
    Overflow = 0x02,
    /// Malformed request.
    BadRequest = 0x03,
}

impl Status {
    /// Parse a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0x00 => Status::Ok,
            0x01 => Status::NotFound,
            0x02 => Status::Overflow,
            0x03 => Status::BadRequest,
            _ => return None,
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up `key`.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Store `value` under `key`.
    Put {
        /// Key to store under.
        key: u64,
        /// Payload bytes.
        value: Bytes,
    },
    /// Remove `key`.
    Remove {
        /// Key to remove.
        key: u64,
    },
    /// Destructively read `[lo, hi]`.
    Sweep {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// List keys in `[lo, hi]`.
    Keys {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Node statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop the server.
    Shutdown,
    /// Bytes/records resident in `[lo, hi]`.
    RangeStats {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl Request {
    /// Serialize to a frame payload (opcode + body).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Request::Get { key } => {
                b.put_u8(Op::Get as u8);
                b.put_u64_le(*key);
            }
            Request::Put { key, value } => {
                b.put_u8(Op::Put as u8);
                b.put_u64_le(*key);
                b.put_slice(value);
            }
            Request::Remove { key } => {
                b.put_u8(Op::Remove as u8);
                b.put_u64_le(*key);
            }
            Request::Sweep { lo, hi } => {
                b.put_u8(Op::Sweep as u8);
                b.put_u64_le(*lo);
                b.put_u64_le(*hi);
            }
            Request::Keys { lo, hi } => {
                b.put_u8(Op::Keys as u8);
                b.put_u64_le(*lo);
                b.put_u64_le(*hi);
            }
            Request::RangeStats { lo, hi } => {
                b.put_u8(Op::RangeStats as u8);
                b.put_u64_le(*lo);
                b.put_u64_le(*hi);
            }
            Request::Stats => b.put_u8(Op::Stats as u8),
            Request::Ping => b.put_u8(Op::Ping as u8),
            Request::Shutdown => b.put_u8(Op::Shutdown as u8),
        }
        b.freeze()
    }

    /// Parse a frame payload.
    pub fn decode(mut payload: Bytes) -> Option<Request> {
        if payload.is_empty() {
            return None;
        }
        let op = Op::from_u8(payload.get_u8())?;
        Some(match op {
            Op::Get => {
                if payload.remaining() != 8 {
                    return None;
                }
                Request::Get {
                    key: payload.get_u64_le(),
                }
            }
            Op::Put => {
                if payload.remaining() < 8 {
                    return None;
                }
                let key = payload.get_u64_le();
                Request::Put {
                    key,
                    value: payload,
                }
            }
            Op::Remove => {
                if payload.remaining() != 8 {
                    return None;
                }
                Request::Remove {
                    key: payload.get_u64_le(),
                }
            }
            Op::Sweep => {
                if payload.remaining() != 16 {
                    return None;
                }
                Request::Sweep {
                    lo: payload.get_u64_le(),
                    hi: payload.get_u64_le(),
                }
            }
            Op::Keys => {
                if payload.remaining() != 16 {
                    return None;
                }
                Request::Keys {
                    lo: payload.get_u64_le(),
                    hi: payload.get_u64_le(),
                }
            }
            Op::RangeStats => {
                if payload.remaining() != 16 {
                    return None;
                }
                Request::RangeStats {
                    lo: payload.get_u64_le(),
                    hi: payload.get_u64_le(),
                }
            }
            Op::Stats => Request::Stats,
            Op::Ping => Request::Ping,
            Op::Shutdown => Request::Shutdown,
        })
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: Status,
    /// Status-specific body.
    pub body: Bytes,
}

impl Response {
    /// A bare-status response.
    pub fn status(status: Status) -> Self {
        Self {
            status,
            body: Bytes::new(),
        }
    }

    /// An `Ok` response with a body.
    pub fn ok(body: Bytes) -> Self {
        Self {
            status: Status::Ok,
            body,
        }
    }

    /// Serialize to a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(1 + self.body.len());
        b.put_u8(self.status as u8);
        b.put_slice(&self.body);
        b.freeze()
    }

    /// Parse a frame payload.
    pub fn decode(mut payload: Bytes) -> Option<Response> {
        if payload.is_empty() {
            return None;
        }
        let status = Status::from_u8(payload.get_u8())?;
        Some(Response {
            status,
            body: payload,
        })
    }
}

/// Encode a record batch (sweep response body): `u32` count, then per
/// record `u64 key`, `u32 len`, bytes.
pub fn encode_records(records: &[(u64, Vec<u8>)]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(records.len() as u32);
    for (k, v) in records {
        b.put_u64_le(*k);
        b.put_u32_le(v.len() as u32);
        b.put_slice(v);
    }
    b.freeze()
}

/// Decode a record batch.
pub fn decode_records(mut body: Bytes) -> Option<Vec<(u64, Vec<u8>)>> {
    if body.remaining() < 4 {
        return None;
    }
    let count = body.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if body.remaining() < 12 {
            return None;
        }
        let key = body.get_u64_le();
        let len = body.get_u32_le() as usize;
        if body.remaining() < len {
            return None;
        }
        out.push((key, body.copy_to_bytes(len).to_vec()));
    }
    if body.has_remaining() {
        return None;
    }
    Some(out)
}

/// Encode a key list (keys response body).
pub fn encode_keys(keys: &[u64]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + keys.len() * 8);
    b.put_u32_le(keys.len() as u32);
    for k in keys {
        b.put_u64_le(*k);
    }
    b.freeze()
}

/// Decode a key list.
pub fn decode_keys(mut body: Bytes) -> Option<Vec<u64>> {
    if body.remaining() < 4 {
        return None;
    }
    let count = body.get_u32_le() as usize;
    if body.remaining() != count * 8 {
        return None;
    }
    Some((0..count).map(|_| body.get_u64_le()).collect())
}

/// Encode range statistics.
pub fn encode_range_stats(bytes: u64, records: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u64_le(bytes);
    b.put_u64_le(records);
    b.freeze()
}

/// Decode range statistics as `(bytes, records)`.
pub fn decode_range_stats(mut body: Bytes) -> Option<(u64, u64)> {
    if body.remaining() != 16 {
        return None;
    }
    Some((body.get_u64_le(), body.get_u64_le()))
}

/// Encode node statistics.
pub fn encode_stats(used: u64, count: u64, capacity: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(24);
    b.put_u64_le(used);
    b.put_u64_le(count);
    b.put_u64_le(capacity);
    b.freeze()
}

/// Decode node statistics as `(used, count, capacity)`.
pub fn decode_stats(mut body: Bytes) -> Option<(u64, u64, u64)> {
    if body.remaining() != 24 {
        return None;
    }
    Some((body.get_u64_le(), body.get_u64_le(), body.get_u64_le()))
}

/// Write one `[u32 len][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one `[u32 len][payload]` frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Bytes> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::Get { key: 7 },
            Request::Put {
                key: 9,
                value: Bytes::from_static(b"hello"),
            },
            Request::Remove { key: u64::MAX },
            Request::Sweep { lo: 3, hi: 99 },
            Request::Keys { lo: 0, hi: 0 },
            Request::RangeStats { lo: 5, hi: 6 },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in cases {
            let enc = req.encode();
            assert_eq!(Request::decode(enc), Some(req));
        }
    }

    #[test]
    fn responses_roundtrip() {
        for status in [
            Status::Ok,
            Status::NotFound,
            Status::Overflow,
            Status::BadRequest,
        ] {
            let resp = Response {
                status,
                body: Bytes::from_static(b"xyz"),
            };
            assert_eq!(Response::decode(resp.encode()), Some(resp));
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Request::decode(Bytes::new()), None);
        assert_eq!(Request::decode(Bytes::from_static(&[0xFF])), None);
        // GET with a short key.
        assert_eq!(Request::decode(Bytes::from_static(&[0x01, 1, 2])), None);
        assert_eq!(Response::decode(Bytes::new()), None);
        assert_eq!(Response::decode(Bytes::from_static(&[9])), None);
    }

    #[test]
    fn record_batches_roundtrip() {
        let records = vec![
            (1u64, vec![1, 2, 3]),
            (2, vec![]),
            (u64::MAX, vec![0; 1000]),
        ];
        let enc = encode_records(&records);
        assert_eq!(decode_records(enc), Some(records));
        assert_eq!(decode_records(Bytes::new()), None);
        // Truncated batch.
        let enc = encode_records(&[(1, vec![9; 10])]);
        assert_eq!(decode_records(enc.slice(0..enc.len() - 1)), None);
    }

    #[test]
    fn key_lists_roundtrip() {
        let keys = vec![1u64, 5, 9, u64::MAX];
        assert_eq!(decode_keys(encode_keys(&keys)), Some(keys));
        assert_eq!(decode_keys(encode_keys(&[])), Some(vec![]));
        assert_eq!(decode_keys(Bytes::from_static(&[1, 0, 0, 0])), None);
    }

    #[test]
    fn stats_roundtrip() {
        assert_eq!(decode_stats(encode_stats(10, 2, 100)), Some((10, 2, 100)));
        assert_eq!(decode_stats(Bytes::from_static(&[0; 23])), None);
    }

    #[test]
    fn frames_roundtrip_over_a_pipe() {
        let payload = b"some payload bytes";
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), &payload[..]);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
