//! The length-prefixed binary wire protocol.
//!
//! Every message is `[u32 len][payload]` with `len = payload.len()`. A
//! request payload starts with a one-byte opcode; a response payload starts
//! with a one-byte status. Integers are little-endian.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
pub use ecc_obs::TraceContext;

/// Maximum accepted frame size (guards against corrupt length prefixes).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Look up one key.
    Get = 0x01,
    /// Store one record.
    Put = 0x02,
    /// Remove one key.
    Remove = 0x03,
    /// Destructively read all records in an inclusive key range
    /// (the migration sweep).
    Sweep = 0x04,
    /// List keys in an inclusive range (split planning).
    Keys = 0x05,
    /// Report `used_bytes`, `record_count`, `capacity_bytes`.
    Stats = 0x06,
    /// Liveness probe.
    Ping = 0x07,
    /// Stop the server.
    Shutdown = 0x08,
    /// Report `(bytes, records)` resident in an inclusive key range — the
    /// coordinator's split planning (bucket fullness `||b||`).
    RangeStats = 0x09,
    /// Store a batch of records in one frame; per-item status response.
    PutMany = 0x0A,
    /// Look up a batch of keys in one frame; per-item value response.
    GetMany = 0x0B,
    /// Remove a batch of keys in one frame (the coordinator's batched
    /// slice-expiry eviction); per-item status response.
    EvictMany = 0x0C,
    /// Dump the node's observability snapshot (flight-recorder events +
    /// latency histograms) as a versioned `ecc-obs` wire blob.
    ObsDump = 0x0D,
}

impl Op {
    /// Stable lowercase name (histogram labels, trace pretty-printing).
    pub fn name(self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::Put => "put",
            Op::Remove => "remove",
            Op::Sweep => "sweep",
            Op::Keys => "keys",
            Op::Stats => "stats",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
            Op::RangeStats => "range_stats",
            Op::PutMany => "put_many",
            Op::GetMany => "get_many",
            Op::EvictMany => "evict_many",
            Op::ObsDump => "obs_dump",
        }
    }

    /// Parse an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Get,
            0x02 => Op::Put,
            0x03 => Op::Remove,
            0x04 => Op::Sweep,
            0x05 => Op::Keys,
            0x06 => Op::Stats,
            0x07 => Op::Ping,
            0x08 => Op::Shutdown,
            0x09 => Op::RangeStats,
            0x0A => Op::PutMany,
            0x0B => Op::GetMany,
            0x0C => Op::EvictMany,
            0x0D => Op::ObsDump,
            _ => return None,
        })
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success (body depends on the request).
    Ok = 0x00,
    /// Key not present.
    NotFound = 0x01,
    /// PUT refused: the record would overflow this node (the coordinator
    /// reacts with a GBA split).
    Overflow = 0x02,
    /// Malformed request.
    BadRequest = 0x03,
    /// Connection refused: the server is at its concurrent-connection
    /// limit. Sent once as the only frame on the refused connection,
    /// before any request is read, then the connection is closed.
    Busy = 0x04,
}

impl Status {
    /// Parse a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0x00 => Status::Ok,
            0x01 => Status::NotFound,
            0x02 => Status::Overflow,
            0x03 => Status::BadRequest,
            0x04 => Status::Busy,
            _ => return None,
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up `key`.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Store `value` under `key`.
    Put {
        /// Key to store under.
        key: u64,
        /// Payload bytes.
        value: Bytes,
    },
    /// Remove `key`.
    Remove {
        /// Key to remove.
        key: u64,
    },
    /// Destructively read `[lo, hi]`.
    Sweep {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// List keys in `[lo, hi]`.
    Keys {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Node statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop the server.
    Shutdown,
    /// Bytes/records resident in `[lo, hi]`.
    RangeStats {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Store a batch of records. The response is `Ok` with one status byte
    /// per item (`Ok` / `Overflow`): a refused item never fails the batch.
    PutMany {
        /// `(key, value)` pairs, applied in order.
        items: Vec<(u64, Bytes)>,
    },
    /// Look up a batch of keys. The response is `Ok` with one
    /// present/absent entry per key, in request order.
    GetMany {
        /// Keys to look up.
        keys: Vec<u64>,
    },
    /// Remove a batch of keys. The response is `Ok` with one status byte
    /// per key (`Ok` = removed, `NotFound` = absent).
    EvictMany {
        /// Keys to remove.
        keys: Vec<u64>,
    },
    /// Dump the node's observability snapshot. The response is `Ok` with a
    /// versioned `ecc_obs::wire` blob (see `OBS_DUMP_VERSION`); the body is
    /// dynamic — histogram contents depend on traffic since startup.
    ObsDump,
}

impl Request {
    /// The opcode this request encodes as.
    pub fn op(&self) -> Op {
        match self {
            Request::Get { .. } => Op::Get,
            Request::Put { .. } => Op::Put,
            Request::Remove { .. } => Op::Remove,
            Request::Sweep { .. } => Op::Sweep,
            Request::Keys { .. } => Op::Keys,
            Request::Stats => Op::Stats,
            Request::Ping => Op::Ping,
            Request::Shutdown => Op::Shutdown,
            Request::RangeStats { .. } => Op::RangeStats,
            Request::PutMany { .. } => Op::PutMany,
            Request::GetMany { .. } => Op::GetMany,
            Request::EvictMany { .. } => Op::EvictMany,
            Request::ObsDump => Op::ObsDump,
        }
    }

    /// Serialize to a frame payload (opcode + body).
    pub fn encode(&self) -> Bytes {
        let mut b = Vec::new();
        self.encode_into(&mut b);
        Bytes::from(b)
    }

    /// Append the frame payload to a caller-owned buffer — the allocation-
    /// free path used by the per-connection write buffers.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        match self {
            Request::Get { key } => {
                b.put_u8(Op::Get as u8);
                b.put_u64_le(*key);
            }
            Request::Put { key, value } => {
                b.put_u8(Op::Put as u8);
                b.put_u64_le(*key);
                b.put_slice(value);
            }
            Request::Remove { key } => {
                b.put_u8(Op::Remove as u8);
                b.put_u64_le(*key);
            }
            Request::Sweep { lo, hi } => {
                b.put_u8(Op::Sweep as u8);
                b.put_u64_le(*lo);
                b.put_u64_le(*hi);
            }
            Request::Keys { lo, hi } => {
                b.put_u8(Op::Keys as u8);
                b.put_u64_le(*lo);
                b.put_u64_le(*hi);
            }
            Request::RangeStats { lo, hi } => {
                b.put_u8(Op::RangeStats as u8);
                b.put_u64_le(*lo);
                b.put_u64_le(*hi);
            }
            Request::Stats => b.put_u8(Op::Stats as u8),
            Request::Ping => b.put_u8(Op::Ping as u8),
            Request::Shutdown => b.put_u8(Op::Shutdown as u8),
            Request::ObsDump => b.put_u8(Op::ObsDump as u8),
            Request::PutMany { items } => {
                b.put_u8(Op::PutMany as u8);
                b.put_u32_le(items.len() as u32);
                for (k, v) in items {
                    b.put_u64_le(*k);
                    b.put_u32_le(v.len() as u32);
                    b.put_slice(v);
                }
            }
            Request::GetMany { keys } => {
                b.put_u8(Op::GetMany as u8);
                b.put_u32_le(keys.len() as u32);
                for k in keys {
                    b.put_u64_le(*k);
                }
            }
            Request::EvictMany { keys } => {
                b.put_u8(Op::EvictMany as u8);
                b.put_u32_le(keys.len() as u32);
                for k in keys {
                    b.put_u64_le(*k);
                }
            }
        }
    }

    /// Parse a frame payload. Generic over [`Buf`] so the server can
    /// decode straight out of its reused per-connection read buffer
    /// (`&frame[..]`) as well as from an owned [`Bytes`].
    pub fn decode<B: Buf>(mut payload: B) -> Option<Request> {
        if !payload.has_remaining() {
            return None;
        }
        let op = Op::from_u8(payload.get_u8())?;
        Some(match op {
            Op::Get => {
                if payload.remaining() != 8 {
                    return None;
                }
                Request::Get {
                    key: payload.get_u64_le(),
                }
            }
            Op::Put => {
                if payload.remaining() < 8 {
                    return None;
                }
                let key = payload.get_u64_le();
                let len = payload.remaining();
                Request::Put {
                    key,
                    value: payload.copy_to_bytes(len),
                }
            }
            Op::Remove => {
                if payload.remaining() != 8 {
                    return None;
                }
                Request::Remove {
                    key: payload.get_u64_le(),
                }
            }
            Op::Sweep => {
                if payload.remaining() != 16 {
                    return None;
                }
                Request::Sweep {
                    lo: payload.get_u64_le(),
                    hi: payload.get_u64_le(),
                }
            }
            Op::Keys => {
                if payload.remaining() != 16 {
                    return None;
                }
                Request::Keys {
                    lo: payload.get_u64_le(),
                    hi: payload.get_u64_le(),
                }
            }
            Op::RangeStats => {
                if payload.remaining() != 16 {
                    return None;
                }
                Request::RangeStats {
                    lo: payload.get_u64_le(),
                    hi: payload.get_u64_le(),
                }
            }
            Op::Stats => Request::Stats,
            Op::Ping => Request::Ping,
            Op::Shutdown => Request::Shutdown,
            Op::ObsDump => {
                if payload.has_remaining() {
                    return None;
                }
                Request::ObsDump
            }
            Op::PutMany => {
                if payload.remaining() < 4 {
                    return None;
                }
                let count = payload.get_u32_le() as usize;
                // A corrupt length prefix cannot demand more items than the
                // remaining bytes could possibly hold (12 B per item floor),
                // so a hostile count never drives a huge allocation.
                if count > payload.remaining() / 12 {
                    return None;
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    if payload.remaining() < 12 {
                        return None;
                    }
                    let key = payload.get_u64_le();
                    let len = payload.get_u32_le() as usize;
                    if payload.remaining() < len {
                        return None;
                    }
                    items.push((key, payload.copy_to_bytes(len)));
                }
                if payload.has_remaining() {
                    return None;
                }
                Request::PutMany { items }
            }
            Op::GetMany => Request::GetMany {
                keys: decode_key_batch(&mut payload)?,
            },
            Op::EvictMany => Request::EvictMany {
                keys: decode_key_batch(&mut payload)?,
            },
        })
    }
}

/// Frame-extension marker for trace-context propagation. Deliberately NOT
/// an [`Op`]: a traced frame is `[0x0E][ver u8][ext_len u8][ext bytes]`
/// followed by an ordinary request payload, so the 13 pinned opcodes keep
/// their exact byte layouts and a traceless peer's frames are untouched.
/// An old server that does not know `0x0E` rejects the frame as
/// `BadRequest` — interop only requires that *traceless* clients keep
/// working against tracing servers, which they do unchanged.
pub const TRACE_EXT_OPCODE: u8 = 0x0E;

/// Current trace-extension version. v1 carries
/// `[flags u8][trace_id u64][span_id u64][parent_span_id u64]` (25 bytes,
/// little-endian; flags bit 0 = sampled). A decoder skips the extension of
/// any *newer* version via `ext_len` and still parses the inner request,
/// so adding fields later is a non-breaking change.
pub const TRACE_EXT_VERSION: u8 = 1;

/// Byte length of the v1 trace extension body.
const TRACE_EXT_V1_LEN: u8 = 25;

/// Append a traced frame payload: the `0x0E` extension header carrying
/// `ctx`, then the ordinary encoding of `req`.
pub fn encode_traced_into(ctx: &TraceContext, req: &Request, b: &mut Vec<u8>) {
    b.put_u8(TRACE_EXT_OPCODE);
    b.put_u8(TRACE_EXT_VERSION);
    b.put_u8(TRACE_EXT_V1_LEN);
    b.put_u8(u8::from(ctx.sampled));
    b.put_u64_le(ctx.trace_id);
    b.put_u64_le(ctx.span_id);
    b.put_u64_le(ctx.parent_span_id);
    req.encode_into(b);
}

/// Encode a traced frame payload into an owned buffer.
pub fn encode_traced(ctx: &TraceContext, req: &Request) -> Bytes {
    let mut b = Vec::new();
    encode_traced_into(ctx, req, &mut b);
    Bytes::from(b)
}

/// Parse a frame payload that may carry a leading trace extension.
///
/// * Plain frames (first byte is a pinned opcode) decode exactly as
///   [`Request::decode`] and return no context.
/// * A v1 `0x0E` frame yields `(Some(ctx), request)`.
/// * A `0x0E` frame with a *newer* version has its extension skipped via
///   `ext_len`; the inner request still decodes (context is dropped, the
///   request is served — forward compatibility).
/// * Malformed extensions (truncated header, wrong v1 length, version 0)
///   are `None`, like any other malformed payload.
pub fn decode_with_trace<B: Buf>(mut payload: B) -> Option<(Option<TraceContext>, Request)> {
    if !payload.has_remaining() || payload.chunk()[0] != TRACE_EXT_OPCODE {
        return Request::decode(payload).map(|req| (None, req));
    }
    payload.advance(1);
    if payload.remaining() < 2 {
        return None;
    }
    let version = payload.get_u8();
    let ext_len = payload.get_u8() as usize;
    if version == 0 || payload.remaining() < ext_len {
        return None;
    }
    if version > TRACE_EXT_VERSION {
        payload.advance(ext_len);
        return Request::decode(payload).map(|req| (None, req));
    }
    if ext_len != TRACE_EXT_V1_LEN as usize {
        return None;
    }
    let flags = payload.get_u8();
    let ctx = TraceContext {
        trace_id: payload.get_u64_le(),
        span_id: payload.get_u64_le(),
        parent_span_id: payload.get_u64_le(),
        sampled: flags & 1 != 0,
    };
    Request::decode(payload).map(|req| (Some(ctx), req))
}

/// Parse a `u32 count` + `count × u64` key batch, rejecting length
/// prefixes that disagree with the actual payload size.
fn decode_key_batch<B: Buf>(payload: &mut B) -> Option<Vec<u64>> {
    if payload.remaining() < 4 {
        return None;
    }
    let count = payload.get_u32_le() as usize;
    if payload.remaining() != count.checked_mul(8)? {
        return None;
    }
    Some((0..count).map(|_| payload.get_u64_le()).collect())
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: Status,
    /// Status-specific body.
    pub body: Bytes,
}

impl Response {
    /// A bare-status response.
    pub fn status(status: Status) -> Self {
        Self {
            status,
            body: Bytes::new(),
        }
    }

    /// An `Ok` response with a body.
    pub fn ok(body: Bytes) -> Self {
        Self {
            status: Status::Ok,
            body,
        }
    }

    /// Serialize to a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(1 + self.body.len());
        b.put_u8(self.status as u8);
        b.put_slice(&self.body);
        b.freeze()
    }

    /// Append the frame payload to a caller-owned buffer — the allocation-
    /// free path used by the per-connection write buffers.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        b.put_u8(self.status as u8);
        b.put_slice(&self.body);
    }

    /// Parse a frame payload.
    pub fn decode(mut payload: Bytes) -> Option<Response> {
        if payload.is_empty() {
            return None;
        }
        let status = Status::from_u8(payload.get_u8())?;
        Some(Response {
            status,
            body: payload,
        })
    }
}

/// Encode a record batch (sweep response body): `u32` count, then per
/// record `u64 key`, `u32 len`, bytes. Generic over the payload's borrow
/// so callers can encode straight from `Record`/`Bytes` views without an
/// intermediate `Vec<u8>` copy per record.
pub fn encode_records<T: AsRef<[u8]>>(records: &[(u64, T)]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(records.len() as u32);
    for (k, v) in records {
        b.put_u64_le(*k);
        b.put_u32_le(v.as_ref().len() as u32);
        b.put_slice(v.as_ref());
    }
    b.freeze()
}

/// Decode a record batch. Generic over [`Buf`] so callers can decode from
/// an owned [`Bytes`] or borrow straight out of a reused read buffer
/// (`&frame[..]`).
pub fn decode_records<B: Buf>(mut body: B) -> Option<Vec<(u64, Vec<u8>)>> {
    if body.remaining() < 4 {
        return None;
    }
    let count = body.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if body.remaining() < 12 {
            return None;
        }
        let key = body.get_u64_le();
        let len = body.get_u32_le() as usize;
        if body.remaining() < len {
            return None;
        }
        out.push((key, body.copy_to_bytes(len).to_vec()));
    }
    if body.has_remaining() {
        return None;
    }
    Some(out)
}

/// Encode a key list (keys response body).
pub fn encode_keys(keys: &[u64]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + keys.len() * 8);
    b.put_u32_le(keys.len() as u32);
    for k in keys {
        b.put_u64_le(*k);
    }
    b.freeze()
}

/// Decode a key list.
pub fn decode_keys<B: Buf>(mut body: B) -> Option<Vec<u64>> {
    decode_key_batch(&mut body)
}

/// Encode range statistics.
pub fn encode_range_stats(bytes: u64, records: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u64_le(bytes);
    b.put_u64_le(records);
    b.freeze()
}

/// Decode range statistics as `(bytes, records)`.
pub fn decode_range_stats<B: Buf>(mut body: B) -> Option<(u64, u64)> {
    if body.remaining() != 16 {
        return None;
    }
    Some((body.get_u64_le(), body.get_u64_le()))
}

/// Encode node statistics.
pub fn encode_stats(used: u64, count: u64, capacity: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(24);
    b.put_u64_le(used);
    b.put_u64_le(count);
    b.put_u64_le(capacity);
    b.freeze()
}

/// Decode node statistics as `(used, count, capacity)`.
pub fn decode_stats<B: Buf>(mut body: B) -> Option<(u64, u64, u64)> {
    if body.remaining() != 24 {
        return None;
    }
    Some((body.get_u64_le(), body.get_u64_le(), body.get_u64_le()))
}

/// Encode a per-item status list (the `PutMany`/`EvictMany` response
/// body): `u32` count, then one status byte per item in request order.
pub fn encode_statuses(statuses: &[Status]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + statuses.len());
    b.put_u32_le(statuses.len() as u32);
    for s in statuses {
        b.put_u8(*s as u8);
    }
    b.freeze()
}

/// Decode a per-item status list.
pub fn decode_statuses<B: Buf>(mut body: B) -> Option<Vec<Status>> {
    if body.remaining() < 4 {
        return None;
    }
    let count = body.get_u32_le() as usize;
    if body.remaining() != count {
        return None;
    }
    (0..count).map(|_| Status::from_u8(body.get_u8())).collect()
}

/// Encode a `GetMany` response body: `u32` count, then per entry a
/// status byte (`Ok` = present, `NotFound` = absent) followed — only
/// when present — by `u32 len` and the value bytes. Generic over the
/// payload's borrow so the server encodes straight from `Bytes` views.
pub fn encode_get_many<T: AsRef<[u8]>>(entries: &[Option<T>]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(entries.len() as u32);
    for e in entries {
        match e {
            Some(v) => {
                b.put_u8(Status::Ok as u8);
                b.put_u32_le(v.as_ref().len() as u32);
                b.put_slice(v.as_ref());
            }
            None => b.put_u8(Status::NotFound as u8),
        }
    }
    b.freeze()
}

/// Decode a `GetMany` response body; entries are in request order.
pub fn decode_get_many<B: Buf>(mut body: B) -> Option<Vec<Option<Vec<u8>>>> {
    if body.remaining() < 4 {
        return None;
    }
    let count = body.get_u32_le() as usize;
    // Each entry consumes at least its status byte.
    if count > body.remaining() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if !body.has_remaining() {
            return None;
        }
        match Status::from_u8(body.get_u8())? {
            Status::Ok => {
                if body.remaining() < 4 {
                    return None;
                }
                let len = body.get_u32_le() as usize;
                if body.remaining() < len {
                    return None;
                }
                out.push(Some(body.copy_to_bytes(len).to_vec()));
            }
            Status::NotFound => out.push(None),
            _ => return None,
        }
    }
    if body.has_remaining() {
        return None;
    }
    Some(out)
}

/// Write one `[u32 len][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one `[u32 len][payload]` frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Bytes> {
    let mut buf = Vec::new();
    read_frame_into(r, &mut buf)?;
    Ok(Bytes::from(buf))
}

/// Read one frame's payload into a caller-owned buffer, reusing its
/// allocation across frames. The buffer is resized to the payload length.
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    buf.resize(len as usize, 0);
    r.read_exact(buf)
}

/// Incremental frame extraction from a byte stream that arrives in
/// arbitrary chunks — the nonblocking counterpart of [`read_frame_into`].
///
/// The reactor and the pipelined client both read whatever the socket has
/// (`fill_from`) and then pop every complete `[u32 len][payload]` frame
/// (`next_frame`); a frame split across reads simply stays buffered until
/// its tail arrives. The internal buffer is reused across frames: steady
/// state performs no allocations, and consumed bytes are reclaimed by
/// shifting only when the dead prefix dominates the buffer.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Backing storage; `buf[start..filled]` is unconsumed stream data.
    /// The vec's full length is initialized capacity (never shrunk), so
    /// refilling zeroes memory only when the buffer actually grows.
    buf: Vec<u8>,
    filled: usize,
    start: usize,
}

/// Minimum spare room guaranteed to [`FrameAssembler::fill_from`]'s read
/// call, so short reads near the end of the buffer don't degenerate into
/// byte-sized syscalls.
const MIN_READ_SPARE: usize = 16 * 1024;

impl FrameAssembler {
    /// An empty assembler (no allocation until the first fill).
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Unconsumed bytes currently buffered (complete or partial frames).
    pub fn buffered(&self) -> usize {
        self.filled - self.start
    }

    /// One `read` into the spare tail of the buffer. Returns the byte
    /// count (`Ok(0)` = EOF); on a nonblocking source, "nothing to read"
    /// surfaces as the source's `WouldBlock` error, with the buffer
    /// unchanged. Never blocks beyond the underlying `read`.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.fill_from_hinted(r).map(|(n, _)| n)
    }

    /// [`FrameAssembler::fill_from`] plus a drained hint: the second field
    /// is `true` when the read came up short of its window, meaning the
    /// socket had nothing more buffered at that instant. A readiness loop
    /// can then skip the terminal `WouldBlock` probe — one syscall per
    /// sweep — because level polling re-discovers any bytes that land
    /// later. A full-window read returns `false`: more may be pending.
    pub fn fill_from_hinted<R: Read>(&mut self, r: &mut R) -> io::Result<(usize, bool)> {
        self.compact();
        if self.buf.len() - self.filled < MIN_READ_SPARE {
            let grown = (self.buf.len() * 2).max(self.filled + MIN_READ_SPARE);
            self.buf.resize(grown, 0);
        }
        let window = self.buf.len() - self.filled;
        let n = r.read(&mut self.buf[self.filled..])?;
        self.filled += n;
        Ok((n, n < window))
    }

    /// Whether a complete frame is buffered, without consuming it — the
    /// blocking-caller probe ("do I need another read?"). Shares
    /// [`FrameAssembler::next_frame`]'s oversized-prefix error.
    pub fn has_frame(&self) -> io::Result<bool> {
        let pending = &self.buf[self.start..self.filled];
        if pending.len() < 4 {
            return Ok(false);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        Ok(pending.len() >= 4 + len as usize)
    }

    /// Pop the next complete frame's payload, if one has fully arrived.
    /// A length prefix exceeding [`MAX_FRAME`] is an `InvalidData` error
    /// (the stream is unrecoverable — framing is lost).
    pub fn next_frame(&mut self) -> io::Result<Option<&[u8]>> {
        let pending = &self.buf[self.start..self.filled];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        let end = 4 + len as usize;
        if pending.len() < end {
            return Ok(None);
        }
        let at = self.start;
        self.start += end;
        Ok(Some(&self.buf[at + 4..at + end]))
    }

    /// Reclaim the consumed prefix: free when everything was consumed,
    /// otherwise a single `copy_within` once the dead prefix outweighs the
    /// live tail (amortized O(1) per byte).
    fn compact(&mut self) {
        if self.start == self.filled {
            self.start = 0;
            self.filled = 0;
        } else if self.start > self.buf.len() / 2 {
            self.buf.copy_within(self.start..self.filled, 0);
            self.filled -= self.start;
            self.start = 0;
        }
    }
}

/// Assemble `[u32 len][payload]` in a reusable scratch buffer and write it
/// with a single `write_all` — the allocation-free counterpart of
/// [`write_frame`]. `fill` appends the payload bytes to the (cleared)
/// scratch buffer after the 4-byte length placeholder; the prefix is
/// back-filled once the payload length is known.
pub fn write_frame_buffered<W: Write>(
    w: &mut W,
    scratch: &mut Vec<u8>,
    fill: impl FnOnce(&mut Vec<u8>),
) -> io::Result<()> {
    scratch.clear();
    scratch.extend_from_slice(&[0u8; 4]);
    fill(scratch);
    let len = (scratch.len() - 4) as u32;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    scratch[..4].copy_from_slice(&len.to_le_bytes());
    w.write_all(scratch)?;
    w.flush()
}

/// Append one `[u32 len][payload]` frame to a caller-owned buffer without
/// clearing it — the batching counterpart of [`write_frame_buffered`],
/// used by the reactor's per-connection write queue and the pipelined
/// client to coalesce many frames into one socket write. `fill` appends
/// the payload after a 4-byte placeholder that is back-filled with the
/// measured length.
pub fn append_frame(buf: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
    let at = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    fill(buf);
    let len = (buf.len() - at - 4) as u32;
    if len > MAX_FRAME {
        buf.truncate(at);
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::Get { key: 7 },
            Request::Put {
                key: 9,
                value: Bytes::from_static(b"hello"),
            },
            Request::Remove { key: u64::MAX },
            Request::Sweep { lo: 3, hi: 99 },
            Request::Keys { lo: 0, hi: 0 },
            Request::RangeStats { lo: 5, hi: 6 },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::ObsDump,
        ];
        for req in cases {
            let enc = req.encode();
            assert_eq!(Request::decode(enc), Some(req));
        }
    }

    fn sample_ctx() -> TraceContext {
        TraceContext {
            trace_id: 0xDEAD_BEEF,
            span_id: (3u64 << 40) | 17,
            parent_span_id: 3u64 << 40,
            sampled: true,
        }
    }

    #[test]
    fn traced_frames_roundtrip() {
        let reqs = vec![
            Request::Get { key: 7 },
            Request::Put {
                key: 9,
                value: Bytes::from_static(b"hello"),
            },
            Request::GetMany { keys: vec![1, 2] },
            Request::Ping,
        ];
        for req in reqs {
            let enc = encode_traced(&sample_ctx(), &req);
            let (ctx, back) = decode_with_trace(enc).unwrap();
            assert_eq!(ctx, Some(sample_ctx()));
            assert_eq!(back, req);
        }
    }

    #[test]
    fn unsampled_flag_survives_the_wire() {
        let ctx = TraceContext {
            sampled: false,
            ..sample_ctx()
        };
        let enc = encode_traced(&ctx, &Request::Ping);
        let (back, _) = decode_with_trace(enc).unwrap();
        assert!(!back.unwrap().sampled);
    }

    #[test]
    fn plain_frames_decode_without_context() {
        let req = Request::Sweep { lo: 3, hi: 99 };
        let (ctx, back) = decode_with_trace(req.encode()).unwrap();
        assert_eq!(ctx, None);
        assert_eq!(back, req);
    }

    #[test]
    fn future_extension_versions_are_skipped_not_rejected() {
        // A v2 peer with a 30-byte extension this build has never seen:
        // the extension is skipped and the inner request still serves.
        let mut b = Vec::new();
        b.put_u8(TRACE_EXT_OPCODE);
        b.put_u8(2);
        b.put_u8(30);
        b.extend_from_slice(&[0xAB; 30]);
        Request::Get { key: 42 }.encode_into(&mut b);
        let (ctx, req) = decode_with_trace(Bytes::from(b)).unwrap();
        assert_eq!(ctx, None);
        assert_eq!(req, Request::Get { key: 42 });
    }

    #[test]
    fn malformed_trace_extensions_are_rejected() {
        // Truncated header.
        assert!(decode_with_trace(Bytes::from_static(&[0x0E])).is_none());
        assert!(decode_with_trace(Bytes::from_static(&[0x0E, 1])).is_none());
        // Version 0 is invalid.
        assert!(decode_with_trace(Bytes::from_static(&[0x0E, 0, 0, 0x07])).is_none());
        // v1 with the wrong ext_len.
        let mut b = vec![0x0E, 1, 3, 0, 0, 0];
        b.push(Op::Ping as u8);
        assert!(decode_with_trace(Bytes::from(b)).is_none());
        // ext_len longer than the remaining payload.
        assert!(decode_with_trace(Bytes::from_static(&[0x0E, 1, 200, 1, 2])).is_none());
        // Well-formed extension but malformed inner request (GET with a
        // truncated key).
        let mut b = Vec::new();
        encode_traced_into(&sample_ctx(), &Request::Get { key: 7 }, &mut b);
        b.pop();
        assert!(decode_with_trace(Bytes::from(b)).is_none());
    }

    #[test]
    fn responses_roundtrip() {
        for status in [
            Status::Ok,
            Status::NotFound,
            Status::Overflow,
            Status::BadRequest,
            Status::Busy,
        ] {
            let resp = Response {
                status,
                body: Bytes::from_static(b"xyz"),
            };
            assert_eq!(Response::decode(resp.encode()), Some(resp));
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Request::decode(Bytes::new()), None);
        assert_eq!(Request::decode(Bytes::from_static(&[0xFF])), None);
        // GET with a short key.
        assert_eq!(Request::decode(Bytes::from_static(&[0x01, 1, 2])), None);
        assert_eq!(Response::decode(Bytes::new()), None);
        assert_eq!(Response::decode(Bytes::from_static(&[9])), None);
    }

    #[test]
    fn record_batches_roundtrip() {
        let records = vec![
            (1u64, vec![1, 2, 3]),
            (2, vec![]),
            (u64::MAX, vec![0; 1000]),
        ];
        let enc = encode_records(&records);
        assert_eq!(decode_records(enc), Some(records));
        assert_eq!(decode_records(Bytes::new()), None);
        // Truncated batch.
        let enc = encode_records(&[(1, vec![9; 10])]);
        assert_eq!(decode_records(enc.slice(0..enc.len() - 1)), None);
    }

    #[test]
    fn key_lists_roundtrip() {
        let keys = vec![1u64, 5, 9, u64::MAX];
        assert_eq!(decode_keys(encode_keys(&keys)), Some(keys));
        assert_eq!(decode_keys(encode_keys(&[])), Some(vec![]));
        assert_eq!(decode_keys(Bytes::from_static(&[1, 0, 0, 0])), None);
    }

    #[test]
    fn stats_roundtrip() {
        assert_eq!(decode_stats(encode_stats(10, 2, 100)), Some((10, 2, 100)));
        assert_eq!(decode_stats(Bytes::from_static(&[0; 23])), None);
    }

    #[test]
    fn batch_requests_roundtrip() {
        let cases = vec![
            Request::PutMany {
                items: vec![
                    (1, Bytes::from_static(b"a")),
                    (2, Bytes::new()),
                    (u64::MAX, Bytes::from_static(b"abcdef")),
                ],
            },
            Request::PutMany { items: vec![] },
            Request::GetMany {
                keys: vec![3, 1, 4, 1, 5],
            },
            Request::GetMany { keys: vec![] },
            Request::EvictMany {
                keys: vec![9, u64::MAX],
            },
        ];
        for req in cases {
            let enc = req.encode();
            assert_eq!(Request::decode(enc), Some(req));
        }
    }

    #[test]
    fn malformed_batches_rejected() {
        // Truncated PutMany: count says 2 but only one item follows.
        let one = Request::PutMany {
            items: vec![(7, Bytes::from_static(b"xy"))],
        }
        .encode();
        let mut forged = one.to_vec();
        forged[1..5].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(Request::decode(Bytes::from(forged)), None);

        // Hostile count prefix far larger than the payload could hold:
        // must reject before allocating.
        let mut huge = vec![Op::PutMany as u8];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(Bytes::from(huge.clone())), None);
        huge[0] = Op::GetMany as u8;
        assert_eq!(Request::decode(Bytes::from(huge.clone())), None);
        huge[0] = Op::EvictMany as u8;
        assert_eq!(Request::decode(Bytes::from(huge)), None);

        // Trailing garbage after a well-formed batch.
        let mut trailing = Request::EvictMany { keys: vec![1] }.encode().to_vec();
        trailing.push(0);
        assert_eq!(Request::decode(Bytes::from(trailing)), None);

        // Item length prefix overruns the payload.
        let mut overrun = vec![Op::PutMany as u8];
        overrun.extend_from_slice(&1u32.to_le_bytes());
        overrun.extend_from_slice(&5u64.to_le_bytes());
        overrun.extend_from_slice(&100u32.to_le_bytes());
        overrun.extend_from_slice(b"short");
        assert_eq!(Request::decode(Bytes::from(overrun)), None);
    }

    #[test]
    fn status_lists_roundtrip() {
        let statuses = vec![Status::Ok, Status::Overflow, Status::NotFound];
        assert_eq!(decode_statuses(encode_statuses(&statuses)), Some(statuses));
        assert_eq!(decode_statuses(encode_statuses(&[])), Some(vec![]));
        // Count prefix disagrees with the body length.
        assert_eq!(decode_statuses(Bytes::from_static(&[2, 0, 0, 0, 0])), None);
        // Unknown status byte.
        assert_eq!(
            decode_statuses(Bytes::from_static(&[1, 0, 0, 0, 0xEE])),
            None
        );
    }

    #[test]
    fn get_many_bodies_roundtrip() {
        let entries = vec![Some(vec![1u8, 2, 3]), None, Some(vec![]), None];
        let enc = encode_get_many(&entries);
        assert_eq!(decode_get_many(enc.clone()), Some(entries));
        assert_eq!(
            decode_get_many(encode_get_many::<Vec<u8>>(&[])),
            Some(vec![])
        );
        // Truncated mid-value.
        assert_eq!(decode_get_many(enc.slice(0..enc.len() - 1)), None);
        // Hostile count prefix.
        assert_eq!(
            decode_get_many(Bytes::from_static(&[0xFF, 0xFF, 0xFF, 0xFF])),
            None
        );
    }

    #[test]
    fn buffered_frame_io_roundtrips() {
        let mut wire = Vec::new();
        let mut scratch = vec![0xAA; 64]; // dirty scratch must not leak
        write_frame_buffered(&mut wire, &mut scratch, |b| {
            b.extend_from_slice(b"first");
        })
        .unwrap();
        write_frame_buffered(&mut wire, &mut scratch, |b| {
            b.extend_from_slice(b"second payload");
        })
        .unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        read_frame_into(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, b"first");
        read_frame_into(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, b"second payload");
    }

    #[test]
    fn frames_roundtrip_over_a_pipe() {
        let payload = b"some payload bytes";
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), &payload[..]);
    }

    #[test]
    fn assembler_reassembles_frames_split_at_every_byte_boundary() {
        // Two frames back to back, delivered in two chunks split at every
        // possible position: the assembler must yield exactly the two
        // payloads regardless of where the split lands.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first payload").unwrap();
        write_frame(&mut wire, b"2nd").unwrap();
        for split in 0..=wire.len() {
            let mut asm = FrameAssembler::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for chunk in [&wire[..split], &wire[split..]] {
                let mut cursor = std::io::Cursor::new(chunk);
                while asm.fill_from(&mut cursor).unwrap() > 0 {}
                while let Some(frame) = asm.next_frame().unwrap() {
                    got.push(frame.to_vec());
                }
            }
            assert_eq!(got, vec![b"first payload".to_vec(), b"2nd".to_vec()]);
            assert_eq!(asm.buffered(), 0);
        }
    }

    #[test]
    fn assembler_handles_empty_frames_and_bursts() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[]).unwrap();
        for i in 0..10u8 {
            write_frame(&mut wire, &[i; 3]).unwrap();
        }
        let mut asm = FrameAssembler::new();
        let mut cursor = std::io::Cursor::new(&wire);
        while asm.fill_from(&mut cursor).unwrap() > 0 {}
        let mut got = Vec::new();
        while let Some(frame) = asm.next_frame().unwrap() {
            got.push(frame.to_vec());
        }
        assert_eq!(got.len(), 11);
        assert_eq!(got[0], Vec::<u8>::new());
        assert_eq!(got[10], vec![9u8; 3]);
    }

    #[test]
    fn assembler_rejects_oversized_length_prefix() {
        let mut asm = FrameAssembler::new();
        let bad = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(&bad[..]);
        asm.fill_from(&mut cursor).unwrap();
        assert!(asm.next_frame().is_err());
    }

    #[test]
    fn append_frame_batches_without_clearing() {
        let mut buf = Vec::new();
        append_frame(&mut buf, |b| b.extend_from_slice(b"one")).unwrap();
        append_frame(&mut buf, |b| b.extend_from_slice(b"two2")).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), &b"one"[..]);
        assert_eq!(read_frame(&mut cursor).unwrap(), &b"two2"[..]);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
