//! Debug-build runtime lock-order auditor for the `ShardedNode` lock
//! hierarchy.
//!
//! The hierarchy (DESIGN.md §13, enforced statically by
//! `cargo xtask analyze`) is:
//!
//! 1. [`LockClass::Structural`] — the node-wide order point — is acquired
//!    first or not at all;
//! 2. [`LockClass::Stripe`]`(i)` locks are acquired in strictly ascending
//!    index order, and never before `Structural` on the same thread.
//!
//! The static pass proves the discipline for the textual idioms it can
//! see; this module closes the gap at runtime for everything else (new
//! call paths, refactors, the future reactor's worker threads). Each
//! thread keeps a thread-local stack of held lock classes; acquiring a
//! class whose rank is not strictly above every held class yields a typed
//! [`LockOrderViolation`] — and [`acquire`] panics on it under
//! `cfg(debug_assertions)`.
//!
//! **Release builds compile the auditor out completely**: the thread-local
//! is absent, [`LockToken`] is a zero-sized type with an empty `Drop`, and
//! every function body reduces to a constant. The bench-smoke envelope
//! check (`cargo xtask bench --smoke --check-envelope`) guards against the
//! auditor ever leaking into the release hot path.

use std::fmt;

#[cfg(debug_assertions)]
use std::cell::RefCell;

/// A lock's place in the `ShardedNode` hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// The node-wide structural `RwLock` — always first.
    Structural,
    /// The stripe lock with this index — after `Structural`, ascending.
    Stripe(usize),
    /// A slab class's page-list mutex — below every stripe (slab locks
    /// are leaves: record drops free slots while a stripe guard is held).
    SlabPage(usize),
    /// A slab class's freelist mutex — the lowest leaf (taken inside the
    /// page lock during `grow`).
    SlabFree(usize),
}

impl LockClass {
    /// Total order of the hierarchy: `Structural` below every stripe,
    /// stripes by index. An acquisition is legal iff its rank is strictly
    /// above every rank already held by the thread (equality would be a
    /// recursive acquisition, which deadlocks once a writer queues).
    /// Only the debug-build auditor calls this; release builds compile
    /// the checks out.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn rank(self) -> (u8, usize) {
        match self {
            LockClass::Structural => (0, 0),
            LockClass::Stripe(i) => (1, i),
            LockClass::SlabPage(c) => (2, c),
            LockClass::SlabFree(c) => (3, c),
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockClass::Structural => f.write_str("structural"),
            LockClass::Stripe(i) => write!(f, "stripe[{i}]"),
            LockClass::SlabPage(c) => write!(f, "slab-page[{c}]"),
            LockClass::SlabFree(c) => write!(f, "slab-free[{c}]"),
        }
    }
}

/// A lock-hierarchy inversion detected by the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderViolation {
    /// Lock classes the thread already held, in acquisition order.
    pub held: Vec<LockClass>,
    /// The class whose acquisition violated the hierarchy.
    pub acquiring: LockClass,
}

impl fmt::Display for LockOrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acquiring {} while holding [", self.acquiring)?;
        for (i, c) in self.held.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("] — the order is structural → stripes ascending")
    }
}

impl std::error::Error for LockOrderViolation {}

#[cfg(debug_assertions)]
thread_local! {
    /// Lock classes held by this thread, in acquisition order.
    static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
}

/// RAII witness of one audited acquisition: dropping it pops the class
/// from the thread's held stack. Zero-sized (and `Drop` is empty) in
/// release builds.
#[must_use]
#[derive(Debug)]
pub struct LockToken {
    #[cfg(debug_assertions)]
    class: Option<LockClass>,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if let Some(class) = self.class.take() {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&c| c == class) {
                    held.remove(pos);
                }
            });
        }
    }
}

/// True when the auditor is active (debug builds only).
#[inline]
pub const fn is_enabled() -> bool {
    cfg!(debug_assertions)
}

/// Record the acquisition of `class`, returning a typed violation if it
/// breaks the hierarchy. In release builds this always succeeds and does
/// nothing.
#[inline]
pub fn try_acquire(class: LockClass) -> Result<LockToken, LockOrderViolation> {
    #[cfg(debug_assertions)]
    {
        let conflict = HELD.with(|h| {
            let held = h.borrow();
            if held.iter().any(|c| c.rank() >= class.rank()) {
                Some(held.clone())
            } else {
                None
            }
        });
        if let Some(held) = conflict {
            return Err(LockOrderViolation {
                held,
                acquiring: class,
            });
        }
        HELD.with(|h| h.borrow_mut().push(class));
        Ok(LockToken { class: Some(class) })
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = class;
        Ok(LockToken {})
    }
}

/// Record the acquisition of `class`; panics on a hierarchy violation in
/// debug builds (compiled out in release). Call immediately *before* the
/// real lock call so the deadlock is reported instead of hit.
#[inline]
pub fn acquire(class: LockClass) -> LockToken {
    match try_acquire(class) {
        Ok(token) => token,
        Err(v) => {
            // Release builds cannot reach this arm: try_acquire is
            // infallible there.
            panic!("lock-order violation: {v}") // xtask: allow(no-panic) — debug-build auditor fails fast by design
        }
    }
}

/// Lock classes currently held by this thread (empty in release builds).
pub fn held() -> Vec<LockClass> {
    #[cfg(debug_assertions)]
    {
        HELD.with(|h| h.borrow().clone())
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Assert the thread holds no audited locks — request boundaries in the
/// server and fan-out joins in the coordinator are quiescent points; a
/// guard surviving one is a leak. No-op in release builds.
#[inline]
pub fn assert_quiescent() {
    #[cfg(debug_assertions)]
    {
        let leaked = held();
        if !leaked.is_empty() {
            panic!("lock guard(s) leaked across a quiescent point: {leaked:?}") // xtask: allow(no-panic) — debug-build auditor fails fast by design
        }
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_order_is_accepted() {
        let s = try_acquire(LockClass::Structural).expect("structural first");
        let a = try_acquire(LockClass::Stripe(0)).expect("stripe after structural");
        let b = try_acquire(LockClass::Stripe(3)).expect("ascending stripes");
        assert_eq!(
            held(),
            vec![
                LockClass::Structural,
                LockClass::Stripe(0),
                LockClass::Stripe(3)
            ]
        );
        drop(b);
        drop(a);
        drop(s);
        assert_quiescent();
    }

    #[test]
    fn inversion_yields_a_typed_violation() {
        // The seeded bug of the ISSUE-6 regression pair: a stripe guard
        // held, then `structural` — the same shape as the
        // `bad_lock_inversion.rs` fixture the static pass must flag.
        let stripe = try_acquire(LockClass::Stripe(1)).expect("stripe alone is fine");
        let err = try_acquire(LockClass::Structural).expect_err("inversion must be caught");
        assert_eq!(err.acquiring, LockClass::Structural);
        assert_eq!(err.held, vec![LockClass::Stripe(1)]);
        let msg = err.to_string();
        assert!(
            msg.contains("structural") && msg.contains("stripe[1]"),
            "{msg}"
        );
        drop(stripe);
        assert_quiescent();
    }

    #[test]
    fn descending_and_recursive_stripes_are_violations() {
        let hi = try_acquire(LockClass::Stripe(5)).expect("first stripe");
        assert!(try_acquire(LockClass::Stripe(3)).is_err(), "descending");
        assert!(try_acquire(LockClass::Stripe(5)).is_err(), "recursive");
        assert!(try_acquire(LockClass::Stripe(6)).is_ok(), "ascending");
        drop(hi);
    }

    #[test]
    fn acquire_panics_on_inversion() {
        let _structural_after = try_acquire(LockClass::Stripe(0)).expect("stripe");
        let result = std::panic::catch_unwind(|| acquire(LockClass::Structural));
        assert!(result.is_err(), "acquire must panic on inversion in debug");
    }

    #[test]
    fn tokens_pop_out_of_order_safely() {
        let s = try_acquire(LockClass::Structural).expect("structural");
        let a = try_acquire(LockClass::Stripe(0)).expect("stripe 0");
        drop(s); // dropped before the stripe token — still accounted
        assert_eq!(held(), vec![LockClass::Stripe(0)]);
        drop(a);
        assert_quiescent();
    }
}
