//! The elastic cooperative cache coordinator.
//!
//! This module implements the paper's §III in full:
//!
//! * **GBA-Insert** (Algorithm 1) — [`ElasticCache::insert`]: hash the key
//!   to its node; if the node would overflow, find the *fullest bucket
//!   referencing that node*, pick the bucket's median key `k^µ`, migrate
//!   the keys in `[min(b_max), k^µ]` away, thread a new bucket at
//!   `h'(k^µ)`, and retry.
//! * **Sweep-and-Migrate** (Algorithm 2) — [`ElasticCache`] internal
//!   `sweep_migrate`: pick the least-loaded *existing* node as the
//!   destination; only if the swept records would overflow it, allocate a
//!   brand-new cloud node (greedy, cost-conscious). The sweep itself is the
//!   B+-tree linked-leaf walk.
//! * **Eviction** (§III-B) — a global [`crate::SlidingWindow`]; when a time
//!   slice expires, keys scoring `λ(k) < T_λ` are removed from their nodes.
//! * **Contraction** (§III-B) — every `ε` slice expirations, merge the two
//!   least-loaded nodes if their combined data fits under the 65 %
//!   churn-avoidance threshold, then release the freed instance.
//!
//! All latencies (lookups, record transfers `T_net`, node boots) are
//! charged to the shared virtual clock, so the metrics reproduce the
//! paper's speedup and overhead figures.

use ecc_bptree::ByteSize;
use ecc_chash::HashRing;
use ecc_cloudsim::{Event, NetModel, PersistentStore, SimClock, SimCloud, US_PER_SEC};
use ecc_obs::{ObsEvent, ObsRegistry, TimeSource};

use crate::adaptive::WindowController;
use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::metrics::Metrics;
use crate::node::CacheNode;
use crate::record::Record;
use crate::warmpool::WarmPool;
use crate::window::SlidingWindow;

/// Index of a cache node within the coordinator's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Outcome of an injected node failure ([`ElasticCache::fail_node`]).
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureReport {
    /// Primaries on the failed node with no surviving copy.
    pub records_lost: usize,
    /// Primaries restored from best-effort replicas on survivors.
    pub records_recovered: usize,
}

/// A violated cross-structure invariant, found by
/// [`ElasticCache::check_invariants`]. Mirrors the style of
/// [`ecc_chash::RingAuditError`]: each variant carries enough context to
/// localise the corruption without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheAuditError {
    /// The consistent-hash ring's own structural audit failed.
    Ring(ecc_chash::RingAuditError),
    /// A resident key hashes to a different node than the one storing it —
    /// the "every cached key is owned by exactly one node" invariant.
    MisplacedKey {
        /// The key found in the wrong place.
        key: u64,
        /// The node physically holding the record.
        resident_on: NodeId,
        /// The node the ring resolves the key to (`None`: empty ring).
        owner: Option<NodeId>,
    },
    /// A ring bucket references a node that is no longer active.
    DeadNodeReferenced {
        /// The inactive node.
        node: NodeId,
    },
    /// An active node owns no bucket, making it unreachable by any key.
    NodeWithoutBucket {
        /// The orphaned node.
        node: NodeId,
    },
    /// A node's cached byte accounting disagrees with the sum of its
    /// resident record sizes.
    ByteAccountingMismatch {
        /// The node with the stale counter.
        node: NodeId,
        /// Bytes counted by walking every record.
        counted: u64,
        /// Bytes the node's accounting reports.
        recorded: u64,
    },
    /// A node holds more primary bytes than its configured capacity.
    NodeOverCapacity {
        /// The overfull node.
        node: NodeId,
        /// Resident primary bytes.
        used: u64,
        /// The node's capacity.
        capacity: u64,
    },
    /// The sliding window's internal structure is corrupt.
    Window {
        /// What the window self-check found.
        what: &'static str,
    },
}

impl std::fmt::Display for CacheAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Ring(e) => write!(f, "ring audit failed: {e}"),
            Self::MisplacedKey {
                key,
                resident_on,
                owner,
            } => write!(
                f,
                "key {key} resident on {resident_on} but owned by {owner:?}"
            ),
            Self::DeadNodeReferenced { node } => {
                write!(f, "ring references inactive node {node}")
            }
            Self::NodeWithoutBucket { node } => {
                write!(f, "active node {node} owns no bucket")
            }
            Self::ByteAccountingMismatch {
                node,
                counted,
                recorded,
            } => write!(
                f,
                "node {node} accounting says {recorded} B but records sum to {counted} B"
            ),
            Self::NodeOverCapacity {
                node,
                used,
                capacity,
            } => write!(f, "node {node} holds {used} B over capacity {capacity} B"),
            Self::Window { what } => write!(f, "sliding window corrupt: {what}"),
        }
    }
}

impl std::error::Error for CacheAuditError {}

/// Bytes of a lookup request on the wire (key + framing).
const LOOKUP_REQ_BYTES: u64 = 32;
/// Bytes of a negative lookup response.
const MISS_RESP_BYTES: u64 = 8;
/// Per-record key/framing overhead charged on migration transfers.
const RECORD_WIRE_OVERHEAD: u64 = 16;
/// Sanity bound on GBA's split-and-retry recursion.
const MAX_SPLIT_RETRIES: u32 = 64;

/// The coordinator of the elastic cooperative cache.
pub struct ElasticCache {
    cfg: CacheConfig,
    clock: SimClock,
    cloud: SimCloud,
    net: NetModel,
    ring: HashRing<NodeId>,
    nodes: Vec<Option<CacheNode>>,
    window: Option<SlidingWindow>,
    metrics: Metrics,
    expirations: u64,
    time_steps: u64,
    warm_pool: WarmPool,
    controller: Option<WindowController>,
    tier: Option<PersistentStore>,
    /// Queries observed in the slice currently being recorded.
    slice_queries: u64,
    /// Flight recorder + latency histograms, stamped off the virtual clock.
    obs: ObsRegistry,
}

impl ElasticCache {
    /// Build a cache with one initial node (pre-provisioned, so time zero
    /// starts with a usable cache, as in the paper's cold-cache setup).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let clock = SimClock::new();
        Self::with_clock(cfg, clock)
    }

    /// Build against an externally owned clock (shared with other
    /// simulation components).
    pub fn with_clock(cfg: CacheConfig, clock: SimClock) -> Self {
        cfg.validate();
        let mut cloud = SimCloud::new(clock.clone(), cfg.seed, cfg.boot_latency);
        let window = cfg
            .window
            .as_ref()
            .map(|w| SlidingWindow::new(w.slices, w.alpha, w.effective_threshold()));
        // Initial node: bucket at the top of the line owns everything.
        let receipt = cloud.allocate(cfg.instance_type.clone());
        let node = CacheNode::new(receipt.id, cfg.node_capacity_bytes, cfg.btree_order);
        let mut ring = HashRing::new(cfg.ring_range);
        let seeded = ring.insert_bucket(cfg.ring_range - 1, NodeId(0));
        debug_assert!(seeded.is_ok(), "a fresh ring has no bucket to collide with");
        let net = cfg.net;
        let mut warm_pool = WarmPool::new(cfg.warm_pool);
        warm_pool.replenish(&mut cloud, &cfg.instance_type);
        let controller = cfg.adaptive_window.map(WindowController::new);
        let tier = cfg.overflow_tier.clone().map(PersistentStore::new);
        let obs = ObsRegistry::new(TimeSource::Sim(clock.clone()));
        obs.emit(ObsEvent::NodeAlloc {
            at_us: clock.now_us(),
            node: 0,
        });
        Self {
            cfg,
            clock,
            cloud,
            net,
            ring,
            nodes: vec![Some(node)],
            window,
            metrics: Metrics::new(),
            expirations: 0,
            time_steps: 0,
            warm_pool,
            controller,
            tier,
            slice_queries: 0,
            obs,
        }
    }

    // ------------------------------------------------------------ accessors

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The cloud provider (billing, instance table, event trace).
    pub fn cloud(&self) -> &SimCloud {
        &self.cloud
    }

    /// The observability registry (flight recorder + latency histograms).
    pub fn obs(&self) -> &ObsRegistry {
        &self.obs
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &HashRing<NodeId> {
        &self.ring
    }

    /// The eviction window, if one is configured.
    pub fn window(&self) -> Option<&SlidingWindow> {
        self.window.as_ref()
    }

    /// Number of currently active cache nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Total records resident across all nodes.
    pub fn total_records(&self) -> usize {
        self.nodes
            .iter()
            .flatten()
            .map(CacheNode::record_count)
            .sum()
    }

    /// Total payload bytes resident across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().flatten().map(CacheNode::used_bytes).sum()
    }

    /// Iterate over `(id, node)` for every active node.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &CacheNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i as u32), n)))
    }

    /// Completed time steps (slice closures).
    pub fn time_steps(&self) -> u64 {
        self.time_steps
    }

    /// Slice expirations seen so far.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// The node `id`, or `None` if it is inactive (failed or merged away)
    /// or out of table bounds.
    fn node_at(&self, id: NodeId) -> Option<&CacheNode> {
        self.nodes.get(id.0 as usize).and_then(Option::as_ref)
    }

    fn node_at_mut(&mut self, id: NodeId) -> Option<&mut CacheNode> {
        self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Fallible dereference for typed-error paths: the ring resolving to an
    /// inactive node is a coordinator bug, reported as
    /// [`CacheError::Internal`] rather than a panic.
    fn try_node(&self, id: NodeId) -> Result<&CacheNode, CacheError> {
        self.node_at(id).ok_or(CacheError::Internal {
            what: "ring references an inactive node",
        })
    }

    fn try_node_mut(&mut self, id: NodeId) -> Result<&mut CacheNode, CacheError> {
        self.node_at_mut(id).ok_or(CacheError::Internal {
            what: "ring references an inactive node",
        })
    }

    // -------------------------------------------------------------- queries

    /// Full cached-service query: look up `key`; on a miss run `miss` (the
    /// backing service), charge its execution time, and cache the result.
    ///
    /// `uncached_us` is what the service would cost without the cache (the
    /// baseline the speedup figures divide by); for a miss it is also the
    /// time actually charged for the service execution.
    pub fn query(&mut self, key: u64, uncached_us: u64, miss: impl FnOnce() -> Record) -> Record {
        let t0 = self.clock.now_us();
        self.metrics.baseline_us += uncached_us;
        let found = self.lookup_inner(key);
        if let Some(rec) = found {
            let dt = self.clock.now_us() - t0;
            self.metrics.observed_us += dt;
            self.obs.record("cache_query_us:hit", dt);
            return rec;
        }
        // Memory miss: the persistent overflow tier (if any) may still
        // hold an evicted copy — a tier fetch beats re-running the 23 s
        // service by orders of magnitude (§IV-D trade-off).
        if let Some(tier) = &mut self.tier {
            let (found, dur_us) = tier.get(self.clock.now_us(), key);
            self.clock.advance_us(dur_us);
            if let Some(bytes) = found {
                let rec = Record::from_bytes(bytes);
                self.metrics.tier_hits += 1;
                match self.insert(key, rec.clone()) {
                    Ok(()) | Err(CacheError::RecordTooLarge { .. }) => {}
                    // A failed re-admission must not kill the query path;
                    // the record is served uncached and the fault counted.
                    Err(_) => {
                        self.metrics.insert_errors += 1;
                        self.obs.emit(ObsEvent::InsertError {
                            at_us: self.clock.now_us(),
                            key,
                        });
                    }
                }
                let dt = self.clock.now_us() - t0;
                self.metrics.observed_us += dt;
                self.obs.record("cache_query_us:tier", dt);
                return rec;
            }
        }
        // Execute the service.
        let rec = miss();
        self.clock.advance_us(uncached_us);
        self.metrics.service_us += uncached_us;
        match self.insert(key, rec.clone()) {
            Ok(()) => {}
            // A record bigger than a node can never be cached; serve it
            // uncached rather than dying. Any other failure is a coordinator
            // fault — likewise served uncached, and counted so it shows up.
            Err(CacheError::RecordTooLarge { .. }) => {}
            Err(_) => {
                self.metrics.insert_errors += 1;
                self.obs.emit(ObsEvent::InsertError {
                    at_us: self.clock.now_us(),
                    key,
                });
            }
        }
        let dt = self.clock.now_us() - t0;
        self.metrics.observed_us += dt;
        self.obs.record("cache_query_us:miss", dt);
        rec
    }

    /// Look up `key`, charging the lookup path and recording hit/miss.
    pub fn lookup(&mut self, key: u64) -> Option<Record> {
        let t0 = self.clock.now_us();
        let r = self.lookup_inner(key);
        self.metrics.observed_us += self.clock.now_us() - t0;
        r
    }

    fn lookup_inner(&mut self, key: u64) -> Option<Record> {
        self.metrics.queries += 1;
        self.slice_queries += 1;
        if let Some(w) = &mut self.window {
            w.note_query(key);
        }
        // The ring always has a bucket by construction; an empty ring or a
        // dangling owner degrades to a miss instead of tearing down the
        // whole cache.
        let rec = self
            .ring
            .node_for_key(key)
            .copied()
            .and_then(|nid| self.node_at(nid))
            .and_then(|n| n.get(key).cloned());
        self.clock.advance_us(self.cfg.lookup_overhead_us);
        match rec {
            Some(rec) => {
                self.clock
                    .advance_us(self.net.rtt_us(LOOKUP_REQ_BYTES, rec.len() as u64));
                self.metrics.hits += 1;
                Some(rec)
            }
            None => {
                self.clock
                    .advance_us(self.net.rtt_us(LOOKUP_REQ_BYTES, MISS_RESP_BYTES));
                self.metrics.misses += 1;
                None
            }
        }
    }

    // ------------------------------------------------------- GBA insertion

    /// Algorithm 1: GBA-Insert. Inserts `record` under `key`, splitting
    /// buckets and (as a last resort) allocating cloud nodes until the
    /// owning node can hold it.
    pub fn insert(&mut self, key: u64, record: Record) -> Result<(), CacheError> {
        // Capacity decisions charge the record's true slot footprint; the
        // wire transfer below is charged its raw payload length.
        let size = record.byte_size() as u64;
        if size > self.cfg.node_capacity_bytes {
            return Err(CacheError::RecordTooLarge {
                size,
                capacity: self.cfg.node_capacity_bytes,
            });
        }
        if key >= self.ring.range() {
            return Err(CacheError::KeyOutOfRange {
                key,
                r: self.ring.range(),
            });
        }
        // Charge the put transfer once (the record travels to whichever
        // node finally stores it).
        self.clock.advance_us(
            self.net
                .transfer_us(record.len() as u64 + RECORD_WIRE_OVERHEAD),
        );
        for _ in 0..MAX_SPLIT_RETRIES {
            let nid = *self.ring.node_for_key(key).ok_or(CacheError::Internal {
                what: "ring has no buckets",
            })?;
            // A replacement is charged only for its byte *growth*: an
            // existing record's bytes are freed by the overwrite, so the
            // overflow test applies to `size - old_size`. A growing
            // replacement that no longer fits triggers a split like any
            // other overflow.
            let node = self.try_node(nid)?;
            let old_size = node.get(key).map(|r| r.byte_size() as u64).unwrap_or(0);
            if node.fits(size.saturating_sub(old_size)) {
                self.try_node_mut(nid)?.insert(key, record.clone());
                self.place_replica(key, &record);
                #[cfg(debug_assertions)]
                self.validate();
                return Ok(());
            }
            // Overflow: split the fullest bucket referencing this node.
            self.split_node(nid)?;
        }
        Err(CacheError::SplitLoopExceeded)
    }

    /// The node holding best-effort replicas for `key`: the next *distinct*
    /// node along the bucket line after the primary's bucket. `None` when
    /// the fleet has a single node.
    fn replica_target(&self, key: u64) -> Option<NodeId> {
        let primary_bucket = self.ring.bucket_for_key(key)?;
        let primary = *self.ring.node_of_bucket(primary_bucket)?;
        let mut bucket = primary_bucket;
        for _ in 0..self.ring.len() {
            bucket = self.ring.successor(bucket).ok()?;
            let node = *self.ring.node_of_bucket(bucket)?;
            if node != primary {
                return Some(node);
            }
        }
        None
    }

    /// Best-effort replica placement after a primary insertion (no-op when
    /// replication is disabled or no distinct peer exists).
    fn place_replica(&mut self, key: u64, record: &Record) {
        if !self.cfg.replicate {
            return;
        }
        let Some(target) = self.replica_target(key) else {
            return;
        };
        // The target drifts as the ring splits and merges; copies placed at
        // earlier targets would otherwise linger and could be promoted over
        // a fresher primary on failure recovery. Sweep every node first —
        // including the target, so a replica that then fails to fit leaves
        // no copy rather than a stale one. The fleet is small.
        let active: Vec<NodeId> = self.nodes().map(|(id, _)| id).collect();
        for other in active {
            if let Some(n) = self.node_at_mut(other) {
                n.remove_replica(key);
            }
        }
        let wire = record.len() as u64 + RECORD_WIRE_OVERHEAD;
        self.clock.advance_us(self.net.t_net_us(wire));
        if let Some(node) = self.node_at_mut(target) {
            node.insert_replica(key, record.clone());
        }
    }

    /// Algorithm 1 lines 8–15: find `b_max`, compute `k^µ`, sweep-migrate
    /// the lower half and thread the new bucket.
    fn split_node(&mut self, nid: NodeId) -> Result<(), CacheError> {
        // Fullest bucket referencing nid, by resident bytes in its arc.
        let buckets = self.ring.buckets_of_node(&nid);
        if buckets.is_empty() {
            return Err(CacheError::Internal {
                what: "active node owns no bucket",
            });
        }
        let mut b_max = buckets[0];
        let mut best_bytes = 0u64;
        for &b in &buckets {
            let spans = self.spans_of_bucket(b)?;
            let node = self.try_node(nid)?;
            let bytes: u64 = spans
                .iter()
                .map(|&(lo, hi)| node.bytes_in_range(lo, hi))
                .sum();
            if bytes >= best_bytes {
                best_bytes = bytes;
                b_max = b;
            }
        }

        // Keys of b_max's arc in circular order (from min(b_max)).
        let spans = self.spans_of_bucket(b_max)?;
        let mut keys: Vec<u64> = Vec::new();
        {
            let node = self.try_node(nid)?;
            for &(lo, hi) in &spans {
                keys.extend(node.keys_in_range(lo, hi));
            }
        }
        if keys.len() < 2 {
            // The fullest bucket cannot be median-split (at most one key in
            // its arc — possible after merges fragment the line into many
            // small buckets). Relocate the whole bucket to another node
            // instead: same sweep, but the existing bucket is re-pointed
            // rather than a new one created.
            if buckets.len() < 2 {
                // A lone bucket with <= 1 key that still overflows the node
                // means a single record nearly fills capacity — hopeless.
                return Err(CacheError::CannotSplit { bucket: b_max });
            }
            let n_dest = self.sweep_migrate(nid, &spans)?;
            self.ring
                .remap_bucket(b_max, n_dest)
                .map_err(|_| CacheError::Internal {
                    what: "bucket vanished while relocating it",
                })?;
            self.metrics.splits += 1;
            self.obs.emit(ObsEvent::BucketSplit {
                at_us: self.clock.now_us(),
                node: nid.0,
                new_node: n_dest.0,
                bucket: b_max,
            });
            #[cfg(debug_assertions)]
            self.validate();
            return Ok(());
        }

        // k^µ: the median key; back off if its line position collides with
        // an existing bucket (the arc's own endpoint).
        let mut mu_idx = keys.len() / 2;
        while mu_idx > 0 && self.ring.node_of_bucket(keys[mu_idx]).is_some() {
            mu_idx -= 1;
        }
        let k_mu = keys[mu_idx];
        if self.ring.node_of_bucket(k_mu).is_some() {
            return Err(CacheError::CannotSplit { bucket: b_max });
        }

        // Migration ranges: circular spans from min(b_max) through k^µ.
        let move_spans = truncate_spans_at(&spans, k_mu).ok_or(CacheError::Internal {
            what: "median key not inside its own bucket's spans",
        })?;
        let n_dest = self.sweep_migrate(nid, &move_spans)?;

        // Update B and NodeMap: new bucket at h'(k^µ) references n_dest.
        // Collision with an existing bucket was ruled out when k^µ was
        // chosen above.
        self.ring
            .insert_bucket(k_mu, n_dest)
            .map_err(|_| CacheError::Internal {
                what: "split bucket position already occupied",
            })?;
        self.metrics.splits += 1;
        self.obs.emit(ObsEvent::BucketSplit {
            at_us: self.clock.now_us(),
            node: nid.0,
            new_node: n_dest.0,
            bucket: k_mu,
        });
        #[cfg(debug_assertions)]
        self.validate();
        Ok(())
    }

    /// Algorithm 2: move all records of `src` in `spans` to the least-
    /// loaded node that can take them, or a newly allocated one. Returns
    /// the destination. Charges `T_net` per record plus any boot latency.
    fn sweep_migrate(&mut self, src: NodeId, spans: &[(u64, u64)]) -> Result<NodeId, CacheError> {
        let total_bytes: u64 = {
            let node = self.try_node(src)?;
            spans
                .iter()
                .map(|&(lo, hi)| node.bytes_in_range(lo, hi))
                .sum()
        };

        // Least-loaded node other than the source, if the sweep fits there.
        let reuse = self
            .nodes()
            .filter(|(id, _)| *id != src)
            .min_by_key(|(_, n)| n.used_bytes())
            .and_then(|(id, n)| (n.used_bytes() + total_bytes <= n.capacity_bytes()).then_some(id));
        let (dest, allocated) = match reuse {
            Some(d) => (d, false),
            None => (self.alloc_node(), true),
        };

        let start_us = self.clock.now_us();
        let mut moved_records = 0u64;
        let mut moved_bytes = 0u64;
        for &(lo, hi) in spans {
            let batch = self.try_node_mut(src)?.drain_range(lo, hi);
            for (k, rec) in batch {
                let wire = rec.len() as u64 + RECORD_WIRE_OVERHEAD;
                self.clock.advance_us(self.net.t_net_us(wire));
                moved_records += 1;
                moved_bytes += rec.len() as u64;
                self.try_node_mut(dest)?.insert(k, rec);
            }
        }
        let duration_us = self.clock.now_us() - start_us;
        self.metrics.migration_us += duration_us;
        if allocated {
            self.metrics.splits_with_allocation += 1;
        }
        self.cloud.record(Event::Migration {
            at_us: start_us,
            records: moved_records,
            bytes: moved_bytes,
            duration_us,
            allocated_node: allocated,
        });
        self.obs.record("migration_sweep_us", duration_us);
        self.obs.emit(ObsEvent::SweepMigrate {
            at_us: start_us,
            src: src.0,
            dest: dest.0,
            records: moved_records,
            bytes: moved_bytes,
            duration_us,
            allocated,
        });
        Ok(dest)
    }

    /// Allocate a fresh cloud node (the last-resort branch of Algorithm 2,
    /// and the dominant overhead of Figure 4). With a warm pool configured,
    /// a pre-booted standby is handed over instantly and the pool refills
    /// in the background; otherwise the boot blocks the critical path.
    fn alloc_node(&mut self) -> NodeId {
        let instance = match self.warm_pool.take_ready(self.clock.now_us()) {
            Some(standby) => {
                // Asynchronous preloading: no boot on the critical path.
                self.warm_pool
                    .replenish(&mut self.cloud, &self.cfg.instance_type);
                standby
            }
            None => {
                let receipt = self.cloud.allocate(self.cfg.instance_type.clone());
                self.clock.advance_us(receipt.boot_us);
                self.metrics.alloc_us += receipt.boot_us;
                receipt.id
            }
        };
        let node = CacheNode::new(instance, self.cfg.node_capacity_bytes, self.cfg.btree_order);
        self.nodes.push(Some(node));
        let id = NodeId((self.nodes.len() - 1) as u32);
        self.obs.emit(ObsEvent::NodeAlloc {
            at_us: self.clock.now_us(),
            node: id.0,
        });
        id
    }

    /// Allocate a node whose boot proceeds in the (virtual) background —
    /// used by proactive splitting, where the allocation is by construction
    /// ahead of need. Neither the clock nor `alloc_us` (boot time blocked
    /// on the query path) advances.
    fn alloc_node_async(&mut self) -> NodeId {
        let receipt = self.cloud.allocate(self.cfg.instance_type.clone());
        let node = CacheNode::new(
            receipt.id,
            self.cfg.node_capacity_bytes,
            self.cfg.btree_order,
        );
        self.nodes.push(Some(node));
        let id = NodeId((self.nodes.len() - 1) as u32);
        self.obs.emit(ObsEvent::NodeAlloc {
            at_us: self.clock.now_us(),
            node: id.0,
        });
        id
    }

    /// Circular spans of the arc owned by bucket `b`, starting at
    /// `min(b)` — i.e. in sweep order.
    fn spans_of_bucket(&self, b: u64) -> Result<Vec<(u64, u64)>, CacheError> {
        let pred = self.ring.predecessor(b).map_err(|_| CacheError::Internal {
            what: "bucket vanished while computing its arc",
        })?;
        Ok(circular_spans(pred, b, self.ring.range()))
    }

    // ------------------------------------------------- eviction/contraction

    /// Close the current time slice (one experiment time step). Runs
    /// decay-scored eviction on the expired slice (if the window is full)
    /// and, every `ε` expirations, attempts contraction.
    pub fn end_time_step(&mut self) {
        self.time_steps += 1;
        let slice_queries = std::mem::take(&mut self.slice_queries);

        // Proactive splitting (§VI prefetching): relieve nodes close to
        // overflow off the query critical path. Each node is driven all the
        // way below the threshold in this one pass — a single bucket split
        // may shed only a small fraction of a node's bytes, and leaving the
        // node above threshold would re-trigger (and re-pay for) the scan
        // every step.
        if let Some(fill) = self.cfg.proactive_split_fill {
            let near_full: Vec<NodeId> = self
                .nodes()
                .filter(|(_, n)| n.fill() > fill)
                .map(|(id, _)| id)
                .collect();
            // Hysteresis: trigger above `fill`, relieve down to 90 % of it,
            // so a relieved node does not re-cross the trigger (and re-pay
            // the scan) a few insertions later.
            let relieve_to = fill * 0.9;
            for nid in near_full {
                for _ in 0..MAX_SPLIT_RETRIES {
                    match self.node_at(nid) {
                        Some(n) if n.fill() > relieve_to => {}
                        _ => break,
                    }
                    // If every peer is itself near the threshold, shuffling
                    // records around would only push the problem to the next
                    // step (migration ping-pong). Pre-allocate a fresh node
                    // instead — this *is* the prefetch: the boot proceeds in
                    // the background, and the split lands on the empty node.
                    let peer_headroom = self
                        .nodes()
                        .filter(|(id, _)| *id != nid)
                        .map(|(_, n)| n.fill())
                        .fold(f64::INFINITY, f64::min);
                    if peer_headroom >= relieve_to {
                        self.alloc_node_async();
                    }
                    // Best effort — an unsplittable node waits for GBA.
                    if self.split_node(nid).is_err() {
                        break;
                    }
                }
            }
        }

        let Some(window) = &mut self.window else {
            return;
        };
        let mut expired_slices = Vec::new();
        if let Some(expired) = window.end_slice() {
            expired_slices.push(expired);
        }

        // Dynamic window sizing (§VI): let the controller react to the
        // completed slice's rate; shrinking expires further slices now.
        if let Some(controller) = &mut self.controller {
            let current = window.slices();
            let next = controller.observe(slice_queries, current);
            if next != current {
                expired_slices.extend(window.set_slices(next));
            }
        }

        if expired_slices.is_empty() {
            return;
        }
        self.expirations += 1;
        // Score the expired slices against the window that remains, then
        // drop the window borrow before mutating nodes.
        let victims: Vec<u64> = match &self.window {
            Some(window) => expired_slices
                .iter()
                .flat_map(|expired| window.victims(expired))
                .collect(),
            None => Vec::new(),
        };
        self.obs.emit(ObsEvent::SliceExpire {
            at_us: self.clock.now_us(),
            expiration: self.expirations,
            victims: victims.len() as u64,
        });
        // Keys actually removed, grouped per node, for the EvictBatch
        // events the simtest differential oracle checks bit-exactly.
        let mut evicted_by_node: std::collections::BTreeMap<u32, Vec<u64>> =
            std::collections::BTreeMap::new();
        for key in victims {
            let Some(nid) = self.ring.node_for_key(key).copied() else {
                continue;
            };
            let removed = self.node_at_mut(nid).and_then(|n| n.remove(key));
            if let Some(rec) = removed {
                self.metrics.evictions += 1;
                evicted_by_node.entry(nid.0).or_default().push(key);
                // Write-behind to the overflow tier (off the query
                // path; the write proceeds between time steps).
                if let Some(tier) = &mut self.tier {
                    let dur = tier.put(self.clock.now_us(), key, rec.bytes());
                    self.clock.advance_us(dur);
                    self.metrics.tier_writes += 1;
                }
            }
            if self.cfg.replicate {
                // Replicas may have drifted across splits; sweep all
                // nodes (the fleet is small).
                let active: Vec<NodeId> = self.nodes().map(|(id, _)| id).collect();
                for other in active {
                    if let Some(n) = self.node_at_mut(other) {
                        n.remove_replica(key);
                    }
                }
            }
        }
        let evict_at_us = self.clock.now_us();
        for (node, keys) in evicted_by_node {
            self.obs.emit(ObsEvent::EvictBatch {
                at_us: evict_at_us,
                node,
                keys,
            });
        }
        if self
            .expirations
            .is_multiple_of(self.cfg.contraction_epsilon)
        {
            self.try_contract();
        }
        #[cfg(debug_assertions)]
        self.validate();
    }

    /// Merge the two least-loaded nodes if the coalesced data fits within
    /// `merge_fill_threshold` of one node's capacity; release the drained
    /// instance.
    fn try_contract(&mut self) {
        if self.node_count() <= self.cfg.min_nodes {
            return;
        }
        // Two least-loaded nodes: `a` (least) is drained into `b`.
        let mut active: Vec<(NodeId, u64)> =
            self.nodes().map(|(id, n)| (id, n.used_bytes())).collect();
        active.sort_by_key(|&(_, used)| used);
        let (a, a_used) = active[0];
        let (b, b_used) = active[1];
        let limit = (self.cfg.merge_fill_threshold * self.cfg.node_capacity_bytes as f64) as u64;
        if a_used + b_used > limit {
            return;
        }

        let start_us = self.clock.now_us();
        let records = match self.node_at_mut(a) {
            Some(n) => n.drain_all(),
            None => return,
        };
        let moved = records.len() as u64;
        for (k, rec) in records {
            let wire = rec.len() as u64 + RECORD_WIRE_OVERHEAD;
            self.clock.advance_us(self.net.t_net_us(wire));
            if let Some(n) = self.node_at_mut(b) {
                n.insert(k, rec);
            }
        }
        for bucket in self.ring.buckets_of_node(&a) {
            let remapped = self.ring.remap_bucket(bucket, b);
            debug_assert!(remapped.is_ok(), "bucket listed by buckets_of_node exists");
        }
        // Coalesce: a bucket whose successor belongs to the same node is
        // redundant — removing it hands its arc to that successor with no
        // data movement. This keeps the line from fragmenting into
        // unsplittable singleton buckets across grow/shrink cycles.
        self.coalesce_buckets(b);
        let duration_us = self.clock.now_us() - start_us;
        self.cloud.record(Event::Merge {
            at_us: start_us,
            records: moved,
            duration_us,
        });
        self.obs.record("migration_sweep_us", duration_us);
        self.obs.emit(ObsEvent::NodeMerge {
            at_us: start_us,
            src: a.0,
            dest: b.0,
            records: moved,
        });
        if let Some(n) = self.node_at(a) {
            let instance = n.instance;
            self.cloud.deallocate(instance);
        }
        self.nodes[a.0 as usize] = None;
        self.obs.emit(ObsEvent::NodeDealloc {
            at_us: self.clock.now_us(),
            node: a.0,
        });
        self.metrics.merges += 1;
        #[cfg(debug_assertions)]
        self.validate();
    }

    /// The warm standby pool (empty unless `warm_pool > 0`).
    pub fn warm_pool(&self) -> &WarmPool {
        &self.warm_pool
    }

    /// The persistent overflow tier, if configured.
    pub fn tier(&self) -> Option<&PersistentStore> {
        self.tier.as_ref()
    }

    /// Cost of the overflow tier so far in micro-dollars (0 without one).
    pub fn tier_cost_microdollars(&self) -> u64 {
        self.tier
            .as_ref()
            .map(|t| t.cost_microdollars(self.clock.now_us()))
            .unwrap_or(0)
    }

    /// Simulate the abrupt failure of a cache node (instance crash or
    /// unplanned termination). The node's buckets are re-pointed at the
    /// least-loaded survivor — its records are *lost*, as in any
    /// non-replicated cache, and will be re-derived on future misses.
    /// Returns the number of records lost.
    ///
    /// If the failed node was the last one, a replacement is allocated
    /// (blocking on its boot) so the cache stays operational.
    pub fn fail_node(&mut self, id: NodeId) -> FailureReport {
        debug_assert!(self.node_at(id).is_some(), "cannot fail inactive node {id}");
        let (resident, instance) = match self.node_at(id) {
            Some(n) => (n.record_count(), n.instance),
            // Failing an already-dead node is a no-op (debug builds flag
            // the caller bug via the assertion above).
            None => {
                return FailureReport {
                    records_lost: 0,
                    records_recovered: 0,
                }
            }
        };
        // The failed node's arcs, captured before the ring changes.
        let failed_spans: Vec<(u64, u64)> = self
            .ring
            .buckets_of_node(&id)
            .into_iter()
            .flat_map(|b| self.spans_of_bucket(b).unwrap_or_default())
            .collect();
        self.cloud.deallocate(instance);
        self.nodes[id.0 as usize] = None;
        self.obs.emit(ObsEvent::NodeDealloc {
            at_us: self.clock.now_us(),
            node: id.0,
        });

        let survivor = match self
            .nodes()
            .min_by_key(|(_, n)| n.used_bytes())
            .map(|(nid, _)| nid)
        {
            Some(nid) => nid,
            None => self.alloc_node(),
        };
        for bucket in self.ring.buckets_of_node(&id) {
            let remapped = self.ring.remap_bucket(bucket, survivor);
            debug_assert!(remapped.is_ok(), "bucket listed by buckets_of_node exists");
        }
        self.coalesce_buckets(survivor);

        // Replica recovery (§VI "data replication"): survivors may hold
        // best-effort copies of the dead arcs; promote them to primaries on
        // the new owner.
        let mut recovered = 0usize;
        if self.cfg.replicate {
            let holders: Vec<NodeId> = self.nodes().map(|(nid, _)| nid).collect();
            for holder in holders {
                for &(lo, hi) in &failed_spans {
                    let copies = match self.node_at_mut(holder) {
                        Some(n) => n.take_replicas_in_range(lo, hi),
                        None => continue,
                    };
                    for (k, rec) in copies {
                        let admits = self
                            .node_at(survivor)
                            .is_some_and(|n| n.get(k).is_none() && n.fits(rec.byte_size() as u64));
                        if admits {
                            let wire = rec.len() as u64 + RECORD_WIRE_OVERHEAD;
                            self.clock.advance_us(self.net.t_net_us(wire));
                            if let Some(n) = self.node_at_mut(survivor) {
                                n.insert(k, rec);
                                recovered += 1;
                            }
                        }
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        self.validate();
        FailureReport {
            records_lost: resident.saturating_sub(recovered),
            records_recovered: recovered,
        }
    }

    /// Remove buckets of `nid` whose ring successor also maps to `nid`
    /// (their arcs merge with no data movement).
    fn coalesce_buckets(&mut self, nid: NodeId) {
        for b in self.ring.buckets_of_node(&nid) {
            if self.ring.len() <= 1 {
                break;
            }
            let Ok(succ) = self.ring.successor(b) else {
                break;
            };
            if succ != b && self.ring.node_of_bucket(succ) == Some(&nid) {
                let removed = self.ring.remove_bucket(b);
                debug_assert!(removed.is_ok(), "bucket listed by buckets_of_node exists");
            }
        }
    }

    // ----------------------------------------------------------- validation

    /// Exhaustively check cross-structure invariants, returning the first
    /// violation as a typed [`CacheAuditError`] instead of panicking:
    ///
    /// * the ring's bucket list is itself sound (delegated to
    ///   [`ecc_chash::HashRing::check_invariants`]);
    /// * every resident record hashes to the node storing it, so each key
    ///   is owned by exactly one node;
    /// * per-node byte accounting matches the sum of resident record sizes
    ///   and stays within capacity;
    /// * the ring references only active nodes, and every active node owns
    ///   at least one bucket;
    /// * the sliding window's history and decay table are structurally
    ///   consistent.
    pub fn check_invariants(&self) -> Result<(), CacheAuditError> {
        self.ring
            .check_invariants()
            .map_err(CacheAuditError::Ring)?;
        for (id, node) in self.nodes() {
            let counted: u64 = node.iter().map(|(_, r)| r.byte_size() as u64).sum();
            if counted != node.used_bytes() {
                return Err(CacheAuditError::ByteAccountingMismatch {
                    node: id,
                    counted,
                    recorded: node.used_bytes(),
                });
            }
            if node.used_bytes() > node.capacity_bytes() {
                return Err(CacheAuditError::NodeOverCapacity {
                    node: id,
                    used: node.used_bytes(),
                    capacity: node.capacity_bytes(),
                });
            }
            for (&key, _) in node.iter() {
                let owner = self.ring.node_for_key(key).copied();
                if owner != Some(id) {
                    return Err(CacheAuditError::MisplacedKey {
                        key,
                        resident_on: id,
                        owner,
                    });
                }
            }
        }
        for (_, &nid) in self.ring.buckets() {
            if self.node_at(nid).is_none() {
                return Err(CacheAuditError::DeadNodeReferenced { node: nid });
            }
        }
        // Every active node is referenced by at least one bucket.
        for (id, _) in self.nodes() {
            if self.ring.buckets_of_node(&id).is_empty() {
                return Err(CacheAuditError::NodeWithoutBucket { node: id });
            }
        }
        if let Some(window) = &self.window {
            window
                .check_invariants()
                .map_err(|what| CacheAuditError::Window { what })?;
        }
        Ok(())
    }

    /// Panicking wrapper over [`ElasticCache::check_invariants`], used by
    /// the test suites and by the debug-build hooks that run after every
    /// mutating operation (insert, split, eviction, merge, failure).
    /// Additionally validates each node's B+-tree index.
    pub fn validate(&self) {
        for (_, node) in self.nodes() {
            node.validate();
        }
        if let Err(e) = self.check_invariants() {
            panic!("cache invariant violated: {e}"); // xtask: allow(no-panic) — validate() is the panicking audit wrapper
        }
    }

    /// Convenience: seconds of virtual time elapsed.
    pub fn elapsed_secs(&self) -> f64 {
        self.clock.now_us() as f64 / US_PER_SEC as f64
    }
}

/// The positions `(pred, pos]` on a circular line of range `r`, as inclusive
/// spans in *circular order* starting just after `pred`. `pred == pos`
/// denotes a single-bucket ring owning the full line.
fn circular_spans(pred: u64, pos: u64, r: u64) -> Vec<(u64, u64)> {
    if pred == pos {
        // Full circle starting after pos.
        if pos == r - 1 {
            vec![(0, r - 1)]
        } else {
            vec![(pos + 1, r - 1), (0, pos)]
        }
    } else if pred < pos {
        vec![(pred + 1, pos)]
    } else if pred == r - 1 {
        vec![(0, pos)]
    } else {
        vec![(pred + 1, r - 1), (0, pos)]
    }
}

/// Truncate circular spans at `k_mu` (inclusive): the migration range
/// `[min(b_max), k^µ]` of Algorithm 1. `None` when `k_mu` lies outside the
/// spans — a coordinator bug the caller reports as [`CacheError::Internal`].
fn truncate_spans_at(spans: &[(u64, u64)], k_mu: u64) -> Option<Vec<(u64, u64)>> {
    let mut out = Vec::with_capacity(spans.len());
    for &(lo, hi) in spans {
        if (lo..=hi).contains(&k_mu) {
            out.push((lo, k_mu));
            return Some(out);
        }
        out.push((lo, hi));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WindowConfig;

    /// Config with capacity for `cap` 100-byte records per node.
    /// A config whose nodes hold exactly `cap` of the 100-byte test
    /// records, in charged-footprint units (records are charged their
    /// slab slot size, not their raw length).
    fn cfg_records(cap: u64) -> CacheConfig {
        let mut c = CacheConfig::small_test();
        c.node_capacity_bytes = cap * crate::slab::footprint(100);
        c
    }

    fn rec() -> Record {
        Record::filler(100)
    }

    #[test]
    fn starts_with_one_node_owning_everything() {
        let cache = ElasticCache::new(CacheConfig::small_test());
        assert_eq!(cache.node_count(), 1);
        assert_eq!(cache.ring().len(), 1);
        cache.validate();
    }

    #[test]
    fn basic_hit_and_miss_accounting() {
        let mut cache = ElasticCache::new(CacheConfig::small_test());
        let r = cache.query(5, 1_000_000, || Record::filler(10));
        assert_eq!(r.len(), 10);
        let r2 = cache.query(5, 1_000_000, || unreachable!());
        assert_eq!(r2.len(), 10);
        let m = cache.metrics();
        assert_eq!((m.queries, m.hits, m.misses), (2, 1, 1));
        assert_eq!(m.baseline_us, 2_000_000);
        assert_eq!(m.service_us, 1_000_000);
        assert!(m.observed_us >= 1_000_000);
        assert!(m.speedup() > 1.0);
    }

    #[test]
    fn overflow_splits_and_allocates() {
        // 8 records per node; insert 20 distinct keys.
        let mut cache = ElasticCache::new(cfg_records(8));
        for k in 0..20u64 {
            cache.insert(k * 40, rec()).unwrap();
            cache.validate();
        }
        assert_eq!(cache.total_records(), 20);
        assert!(cache.node_count() >= 3, "got {} nodes", cache.node_count());
        assert!(cache.metrics().splits >= 2);
        // Everything is still readable.
        for k in 0..20u64 {
            assert!(cache.lookup(k * 40).is_some(), "key {} lost", k * 40);
        }
    }

    #[test]
    fn greedy_reuses_existing_space_before_allocating() {
        let mut cache = ElasticCache::new(cfg_records(16));
        // Fill node 0 exactly (16 records), then overflow it with a
        // low-range key: the split moves [0, k^µ] (9 records) to a new
        // node, leaving node 0 at 7.
        for k in 0..16u64 {
            cache.insert(k * 60, rec()).unwrap();
        }
        cache.insert(5, rec()).unwrap();
        assert_eq!(cache.node_count(), 2);
        assert_eq!(cache.metrics().splits_with_allocation, 1);
        // Now overflow the *new* node: its swept half (9 records) fits in
        // node 0's free space, so GBA must reuse it instead of allocating.
        for k in 0..6u64 {
            cache.insert(k * 60 + 13, rec()).unwrap();
        }
        cache.insert(19, rec()).unwrap();
        cache.validate();
        let m = cache.metrics();
        assert!(m.splits >= 2, "{m:?}");
        assert_eq!(
            m.splits_with_allocation, 1,
            "later splits should reuse the peer: {m:?}"
        );
        assert_eq!(cache.node_count(), 2);
    }

    #[test]
    fn records_remain_reachable_after_many_splits() {
        let mut cache = ElasticCache::new(cfg_records(16));
        let keys: Vec<u64> = (0..200u64).map(|i| (i * 37) % 1024).collect();
        for &k in &keys {
            cache.insert(k, rec()).unwrap();
        }
        cache.validate();
        for &k in &keys {
            assert!(cache.lookup(k).is_some(), "key {k} lost after splits");
        }
    }

    #[test]
    fn replacement_does_not_split() {
        let mut cache = ElasticCache::new(cfg_records(4));
        for k in 0..4u64 {
            cache.insert(k * 100, rec()).unwrap();
        }
        let splits_before = cache.metrics().splits;
        // Node is full; replacing an existing key must not overflow it.
        cache.insert(0, Record::filler(100)).unwrap();
        assert_eq!(cache.metrics().splits, splits_before);
        assert_eq!(cache.total_records(), 4);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut cache = ElasticCache::new(CacheConfig::small_test());
        let err = cache.insert(1, Record::filler(1_000_000)).unwrap_err();
        assert!(matches!(err, CacheError::RecordTooLarge { .. }));
    }

    #[test]
    fn out_of_range_key_rejected() {
        let mut cache = ElasticCache::new(CacheConfig::small_test());
        let err = cache.insert(1 << 20, rec()).unwrap_err();
        assert!(matches!(err, CacheError::KeyOutOfRange { .. }));
    }

    #[test]
    fn query_serves_uncacheable_records_without_caching() {
        let mut cache = ElasticCache::new(CacheConfig::small_test());
        let r = cache.query(3, 500, || Record::filler(1 << 20));
        assert_eq!(r.len(), 1 << 20);
        assert_eq!(cache.total_records(), 0);
        // Re-query misses again.
        let _ = cache.query(3, 500, || Record::filler(1 << 20));
        assert_eq!(cache.metrics().misses, 2);
    }

    fn windowed_cfg(cap: u64, m: usize) -> CacheConfig {
        let mut c = cfg_records(cap);
        c.window = Some(WindowConfig {
            slices: m,
            alpha: 0.99,
            threshold: None,
        });
        c.contraction_epsilon = 1;
        c
    }

    #[test]
    fn eviction_removes_stale_keys() {
        let mut cache = ElasticCache::new(windowed_cfg(64, 3));
        // Key 7 queried once, then never again for > m steps.
        cache.query(7, 100, rec);
        for _ in 0..4 {
            cache.end_time_step();
        }
        assert_eq!(cache.metrics().evictions, 1);
        assert_eq!(cache.total_records(), 0);
        cache.validate();
    }

    #[test]
    fn requeried_keys_survive_eviction() {
        let mut cache = ElasticCache::new(windowed_cfg(64, 3));
        cache.query(7, 100, rec);
        cache.end_time_step();
        cache.query(7, 100, || unreachable!("must hit"));
        cache.end_time_step();
        cache.end_time_step();
        cache.end_time_step(); // first insert's slice expires here
        assert_eq!(cache.metrics().evictions, 0);
        assert_eq!(cache.total_records(), 1);
    }

    #[test]
    fn contraction_merges_lightly_loaded_nodes() {
        let mut cache = ElasticCache::new(windowed_cfg(8, 2));
        // Force growth to multiple nodes. Queries (not bare inserts) so the
        // window tracks every key — only queried keys can expire.
        for k in 0..24u64 {
            cache.query(k * 40, 100, rec);
        }
        let grown = cache.node_count();
        assert!(grown >= 3);
        // Stop querying: everything expires and nodes merge pairwise.
        for _ in 0..20 {
            cache.end_time_step();
            cache.validate();
        }
        assert_eq!(cache.total_records(), 0);
        assert!(
            cache.node_count() < grown,
            "no contraction happened: still {grown} nodes"
        );
        assert!(cache.metrics().merges > 0);
        // min_nodes floor respected.
        assert!(cache.node_count() >= cache.config().min_nodes);
    }

    #[test]
    fn contraction_respects_merge_threshold() {
        let mut cache = ElasticCache::new(windowed_cfg(8, 2));
        for k in 0..16u64 {
            cache.insert(k * 60, rec()).unwrap();
        }
        let nodes_before = cache.node_count();
        // Keep every key warm: no evictions, nodes stay ~full, no merge
        // fits under 65 %.
        for _ in 0..10 {
            for k in 0..16u64 {
                cache.query(k * 60, 100, || unreachable!("warm"));
            }
            cache.end_time_step();
        }
        assert_eq!(cache.metrics().merges, 0);
        assert_eq!(cache.node_count(), nodes_before);
    }

    #[test]
    fn infinite_window_never_evicts() {
        let mut cache = ElasticCache::new(cfg_records(64)); // window: None
        for k in 0..10u64 {
            cache.query(k, 100, rec);
        }
        for _ in 0..100 {
            cache.end_time_step();
        }
        assert_eq!(cache.metrics().evictions, 0);
        assert_eq!(cache.total_records(), 10);
    }

    #[test]
    fn clock_charges_boot_on_allocation_path() {
        let mut c = cfg_records(4);
        c.boot_latency = ecc_cloudsim::BootLatency::fixed(1_000_000);
        let mut cache = ElasticCache::new(c);
        for k in 0..5u64 {
            cache.insert(k * 100, rec()).unwrap();
        }
        // One split with allocation: at least one boot second charged.
        assert!(cache.metrics().alloc_us >= 1_000_000);
        assert!(cache.clock().now_us() >= 1_000_000);
    }

    #[test]
    fn billing_reflects_fleet_growth() {
        let mut cache = ElasticCache::new(cfg_records(8));
        for k in 0..40u64 {
            cache.insert(k * 25, rec()).unwrap();
        }
        let billing = cache.cloud().billing();
        assert_eq!(billing.launched, cache.node_count());
        assert!(billing.microdollars > 0);
    }

    #[test]
    fn circular_spans_cases() {
        // Contiguous.
        assert_eq!(circular_spans(10, 20, 100), vec![(11, 20)]);
        // Wrapping.
        assert_eq!(circular_spans(90, 5, 100), vec![(91, 99), (0, 5)]);
        // Wrap with empty upper part.
        assert_eq!(circular_spans(99, 5, 100), vec![(0, 5)]);
        // Single bucket at r-1.
        assert_eq!(circular_spans(99, 99, 100), vec![(0, 99)]);
        // Single bucket mid-line.
        assert_eq!(circular_spans(40, 40, 100), vec![(41, 99), (0, 40)]);
    }

    #[test]
    fn truncate_spans_at_median() {
        assert_eq!(truncate_spans_at(&[(11, 20)], 15), Some(vec![(11, 15)]));
        assert_eq!(
            truncate_spans_at(&[(91, 99), (0, 5)], 3),
            Some(vec![(91, 99), (0, 3)])
        );
        assert_eq!(
            truncate_spans_at(&[(91, 99), (0, 5)], 95),
            Some(vec![(91, 95)])
        );
    }

    #[test]
    fn truncate_requires_containment() {
        assert_eq!(truncate_spans_at(&[(0, 5)], 10), None);
    }

    #[test]
    fn audit_passes_on_a_busy_cache() {
        let mut cache = ElasticCache::new(windowed_cfg(8, 3));
        for k in 0..30u64 {
            cache.query((k * 37) % 1024, 1000, rec);
        }
        for _ in 0..5 {
            cache.end_time_step();
        }
        cache
            .check_invariants()
            .expect("healthy cache audits clean");
    }

    #[test]
    fn audit_errors_render_with_context() {
        let misplaced = CacheAuditError::MisplacedKey {
            key: 9,
            resident_on: NodeId(1),
            owner: Some(NodeId(0)),
        };
        assert!(misplaced.to_string().contains("key 9"));
        let accounting = CacheAuditError::ByteAccountingMismatch {
            node: NodeId(2),
            counted: 10,
            recorded: 20,
        };
        assert!(accounting.to_string().contains("n2"));
        assert!(CacheAuditError::Window { what: "probe" }
            .to_string()
            .contains("probe"));
        assert!(CacheAuditError::NodeWithoutBucket { node: NodeId(3) }
            .to_string()
            .contains("n3"));
    }

    #[test]
    fn warm_pool_takes_boot_off_the_critical_path() {
        let boot = ecc_cloudsim::BootLatency::fixed(50_000_000);
        let run = |warm: usize| -> (u64, usize) {
            let mut c = cfg_records(4);
            c.boot_latency = boot;
            c.warm_pool = warm;
            let mut cache = ElasticCache::new(c);
            // Give background standbys time to boot (they boot at t=0).
            cache.clock().advance_us(60_000_000);
            let t0 = cache.clock().now_us();
            for k in 0..12u64 {
                cache.insert(k * 80, rec()).unwrap();
            }
            (cache.clock().now_us() - t0, cache.node_count())
        };
        let (blocking_us, nodes_a) = run(0);
        let (pooled_us, nodes_b) = run(2);
        assert_eq!(nodes_a, nodes_b, "same growth either way");
        assert!(
            blocking_us >= 2 * 50_000_000,
            "blocking boots must show up: {blocking_us}"
        );
        assert!(
            pooled_us < blocking_us / 2,
            "warm pool should hide boots: {pooled_us} vs {blocking_us}"
        );
    }

    #[test]
    fn warm_pool_standbys_appear_on_the_bill() {
        let mut c = cfg_records(64);
        c.warm_pool = 3;
        let cache = ElasticCache::new(c);
        assert_eq!(cache.warm_pool().len(), 3);
        // 1 active node + 3 standbys launched.
        assert_eq!(cache.cloud().total_launched(), 4);
    }

    #[test]
    fn proactive_split_relieves_nearly_full_nodes_between_steps() {
        let mut c = cfg_records(10);
        c.proactive_split_fill = Some(0.7);
        let mut cache = ElasticCache::new(c);
        for k in 0..8u64 {
            cache.insert(k * 100, rec()).unwrap();
        }
        assert_eq!(cache.node_count(), 1, "no overflow yet");
        cache.end_time_step(); // fill 0.8 > 0.7 -> proactive split
        assert_eq!(cache.node_count(), 2);
        assert!(cache.metrics().splits >= 1);
        cache.validate();
        // Records all still reachable.
        for k in 0..8u64 {
            assert!(cache.lookup(k * 100).is_some());
        }
    }

    #[test]
    fn adaptive_window_grows_on_surge_and_shrinks_when_quiet() {
        let mut c = cfg_records(64);
        c.window = Some(WindowConfig {
            slices: 8,
            alpha: 0.99,
            threshold: None,
        });
        c.adaptive_window = Some(crate::adaptive::AdaptiveWindowConfig {
            min_slices: 2,
            max_slices: 64,
            grow_ratio: 2.0,
            shrink_ratio: 0.5,
            step_frac: 0.5,
            ema_weight: 0.5,
        });
        let mut cache = ElasticCache::new(c);
        let m0 = cache.window().unwrap().slices();
        // Establish a low-rate trend.
        for _ in 0..6 {
            cache.query(1, 100, rec);
            cache.end_time_step();
        }
        // Surge: many queries in one step.
        for k in 0..200u64 {
            cache.query(k, 100, rec);
        }
        cache.end_time_step();
        let grown = cache.window().unwrap().slices();
        assert!(grown > m0, "window should widen on surge: {m0} -> {grown}");
        // Quiet steps shrink it back down.
        for _ in 0..30 {
            cache.end_time_step();
        }
        let shrunk = cache.window().unwrap().slices();
        assert!(
            shrunk < grown,
            "window should narrow when quiet: {grown} -> {shrunk}"
        );
        cache.validate();
    }

    #[test]
    fn adaptive_shrink_expires_and_evicts_immediately() {
        let mut c = cfg_records(64);
        c.window = Some(WindowConfig {
            slices: 16,
            alpha: 0.99,
            threshold: None,
        });
        c.adaptive_window = Some(crate::adaptive::AdaptiveWindowConfig {
            min_slices: 1,
            max_slices: 16,
            grow_ratio: 10.0,
            shrink_ratio: 0.9,
            step_frac: 1.0,
            ema_weight: 1.0,
        });
        let mut cache = ElasticCache::new(c);
        // Slice 1: a burst caches keys and seeds the trend.
        for k in 0..10u64 {
            cache.query(k, 100, rec);
        }
        cache.end_time_step();
        assert_eq!(cache.total_records(), 10);
        // Two quiet steps: the controller collapses m to 1; the burst slice
        // expires early and its keys are evicted without waiting 16 steps.
        cache.end_time_step();
        cache.end_time_step();
        assert_eq!(
            cache.total_records(),
            0,
            "shrink must expire old slices immediately"
        );
        cache.validate();
    }

    #[test]
    fn node_failure_loses_data_but_cache_recovers() {
        let mut cache = ElasticCache::new(cfg_records(8));
        for k in 0..20u64 {
            cache.query(k * 50, 1000, rec);
        }
        let nodes_before = cache.node_count();
        assert!(nodes_before >= 3);
        let victim = cache.nodes().next().map(|(id, _)| id).unwrap();
        let resident = cache.nodes().next().map(|(_, n)| n.record_count()).unwrap();
        let report = cache.fail_node(victim);
        assert_eq!(report.records_lost, resident);
        assert_eq!(report.records_recovered, 0, "no replication configured");
        assert_eq!(cache.node_count(), nodes_before - 1);
        cache.validate();
        // Every key is still servable: survivors hit, lost keys re-derive.
        let mut rederived = 0;
        for k in 0..20u64 {
            let before = cache.metrics().misses;
            cache.query(k * 50, 1000, rec);
            rederived += (cache.metrics().misses - before) as usize;
        }
        assert_eq!(
            rederived, report.records_lost,
            "exactly the lost records re-derive"
        );
        cache.validate();
    }

    #[test]
    fn replication_places_copies_on_a_distinct_peer() {
        let mut c = cfg_records(8);
        c.replicate = true;
        let mut cache = ElasticCache::new(c);
        // Single node: nowhere to replicate.
        cache.insert(5, rec()).unwrap();
        let replicas: usize = cache.nodes().map(|(_, n)| n.replica_count()).sum();
        assert_eq!(replicas, 0);
        // Grow to 2+ nodes; subsequent inserts replicate.
        for k in 0..12u64 {
            cache.insert(k * 80, rec()).unwrap();
        }
        assert!(cache.node_count() >= 2);
        let replicas: usize = cache.nodes().map(|(_, n)| n.replica_count()).sum();
        assert!(replicas > 0, "no replicas placed after growth");
        // A replica never sits on the node that owns the key.
        for (id, node) in cache.nodes() {
            for k in 0..=1024u64 {
                if node.get_replica(k).is_some() {
                    let owner = *cache.ring().node_for_key(k).unwrap();
                    assert_ne!(owner, id, "replica of {k} on its own primary");
                }
            }
        }
        cache.validate();
    }

    #[test]
    fn replication_recovers_most_records_after_failure() {
        let mut with = cfg_records(32);
        with.replicate = true;
        let mut cache = ElasticCache::new(with);
        for k in 0..40u64 {
            cache.query(k * 25, 1000, rec);
        }
        assert!(cache.node_count() >= 2);
        // Records inserted before the fleet grew had no peer to replicate
        // to; refresh them now that one exists (replacement inserts place
        // replicas too).
        for k in 0..40u64 {
            cache.insert(k * 25, rec()).unwrap();
        }
        let victim = cache.nodes().next().map(|(id, _)| id).unwrap();
        let resident = cache.nodes().next().map(|(_, n)| n.record_count()).unwrap();
        let report = cache.fail_node(victim);
        assert_eq!(report.records_lost + report.records_recovered, resident);
        assert!(
            report.records_recovered > 0,
            "replication recovered nothing: {report:?}"
        );
        cache.validate();
        // Recovered records hit without re-deriving.
        let mut missing = 0;
        for k in 0..40u64 {
            if cache.lookup(k * 25).is_none() {
                missing += 1;
            }
        }
        assert_eq!(missing, report.records_lost);
    }

    #[test]
    fn eviction_cleans_replicas_too() {
        let mut c = cfg_records(16);
        c.replicate = true;
        c.window = Some(WindowConfig {
            slices: 2,
            alpha: 0.99,
            threshold: None,
        });
        let mut cache = ElasticCache::new(c);
        for k in 0..24u64 {
            cache.query(k * 40, 1000, rec);
        }
        let replicas_before: usize = cache.nodes().map(|(_, n)| n.replica_count()).sum();
        assert!(replicas_before > 0);
        for _ in 0..4 {
            cache.end_time_step();
        }
        assert_eq!(cache.total_records(), 0);
        let replicas_after: usize = cache.nodes().map(|(_, n)| n.replica_count()).sum();
        assert_eq!(replicas_after, 0, "evicted keys left stale replicas");
        cache.validate();
    }

    #[test]
    fn overflow_tier_serves_evicted_records() {
        let mut c = cfg_records(64);
        c.window = Some(WindowConfig {
            slices: 2,
            alpha: 0.99,
            threshold: None,
        });
        c.overflow_tier = Some(ecc_cloudsim::StorageTier::s3_2010());
        let mut cache = ElasticCache::new(c);
        // Cache 5 keys, then let them expire.
        for k in 0..5u64 {
            cache.query(k, 23_000_000, || Record::filler(100));
        }
        for _ in 0..3 {
            cache.end_time_step();
        }
        assert_eq!(cache.total_records(), 0);
        assert_eq!(cache.metrics().tier_writes, 5);
        assert_eq!(cache.tier().unwrap().len(), 5);
        // Re-query: served from the tier, not the service; re-admitted.
        let t0 = cache.clock().now_us();
        let r = cache.query(3, 23_000_000, || unreachable!("tier must serve this"));
        let took = cache.clock().now_us() - t0;
        assert_eq!(r.len(), 100);
        assert_eq!(cache.metrics().tier_hits, 1);
        assert!(took < 1_000_000, "tier fetch should be ~ms, took {took} µs");
        assert_eq!(cache.total_records(), 1, "tier hit re-admits to memory");
        // And the next query is a plain memory hit.
        cache.query(3, 23_000_000, || unreachable!());
        assert_eq!(cache.metrics().hits, 1);
        assert!(cache.tier_cost_microdollars() > 0);
        cache.validate();
    }

    #[test]
    fn tier_misses_fall_through_to_the_service() {
        let mut c = cfg_records(64);
        c.overflow_tier = Some(ecc_cloudsim::StorageTier::s3_2010());
        let mut cache = ElasticCache::new(c);
        let r = cache.query(9, 1000, || Record::filler(7));
        assert_eq!(r.len(), 7);
        assert_eq!(cache.metrics().misses, 1);
        assert_eq!(cache.metrics().tier_hits, 0);
        // The tier was consulted (one GET) even though it was empty.
        assert_eq!(cache.tier().unwrap().gets(), 1);
    }

    #[test]
    fn growing_replacement_splits_instead_of_overflowing() {
        // Regression (simtest elastic/1): a replacement used to be accepted
        // unconditionally, pushing its node over capacity. Fill one node
        // exactly, then grow a resident record in place: the overflow must
        // trigger a split, and the audit must stay clean throughout.
        let mut cache = ElasticCache::new(cfg_records(8));
        for k in 0..8u64 {
            cache.insert(k * 100, rec()).unwrap();
        }
        assert_eq!(cache.node_count(), 1);
        cache.insert(0, Record::filler(300)).unwrap();
        assert!(cache.node_count() >= 2, "growth must split, not overflow");
        assert_eq!(cache.lookup(0).map(|r| r.len()), Some(300));
        cache.validate();
    }

    #[test]
    fn failure_recovery_never_promotes_a_stale_replica() {
        // Regression (simtest elastic/153): the replica target drifts as
        // the ring splits, so a replaced record's original copy survived on
        // a former target and failure recovery promoted the outdated
        // payload. After a replacement there must be at most one replica
        // copy fleet-wide, holding the fresh bytes.
        let mut c = cfg_records(8);
        c.replicate = true;
        let mut cache = ElasticCache::new(c);
        for k in 0..12u64 {
            cache.insert(k * 80, rec()).unwrap();
        }
        assert!(cache.node_count() >= 2);
        cache.insert(5, Record::filler(60)).unwrap();
        // More growth reshapes the ring and drifts key 5's replica target.
        for k in 0..12u64 {
            cache.insert(k * 80 + 40, rec()).unwrap();
        }
        cache.insert(5, Record::filler(90)).unwrap();
        let copies: Vec<usize> = cache
            .nodes()
            .filter_map(|(_, n)| n.get_replica(5).map(Record::len))
            .collect();
        assert!(copies.len() <= 1, "key 5 replicated {} times", copies.len());
        assert!(copies.iter().all(|&l| l == 90), "stale copy: {copies:?}");
        // Failing the primary serves the fresh bytes or nothing at all.
        let owner = *cache.ring().node_for_key(5).unwrap();
        let _ = cache.fail_node(owner);
        if let Some(r) = cache.lookup(5) {
            assert_eq!(r.len(), 90, "recovery promoted a stale replica");
        }
        cache.validate();
    }

    #[test]
    fn failing_the_last_node_allocates_a_replacement() {
        let mut cache = ElasticCache::new(cfg_records(64));
        cache.query(5, 100, rec);
        let only = cache.nodes().next().map(|(id, _)| id).unwrap();
        let _ = cache.fail_node(only);
        assert_eq!(cache.node_count(), 1);
        cache.validate();
        assert!(cache.lookup(5).is_none());
        cache.query(5, 100, rec);
        assert_eq!(cache.total_records(), 1);
    }
}
