//! The cached value type.

use bytes::Bytes;
use ecc_bptree::ByteSize;

use crate::slab::{SlabArena, SlabRef};

/// Where a record's payload bytes live.
#[derive(Debug, Clone)]
enum Payload {
    /// A one-off heap allocation behind a refcounted [`Bytes`] handle —
    /// wire-ingested values not yet slab-resident, and oversize payloads
    /// that bypass the arena's class table.
    Heap(Bytes),
    /// A slot in the node's slab arena (DESIGN.md §17) — the steady-state
    /// home of resident records; recycled, never individually freed.
    Slab(SlabRef),
}

/// A cached derived result: an immutable byte payload behind a refcounted
/// handle — either a [`Bytes`] heap allocation or a slab-arena slot — so
/// every clone (a hit returned to a caller, a replica placement, a
/// migration sweep, a wire response body) is a refcount bump, never a
/// memcpy of the payload.
#[derive(Debug, Clone)]
pub struct Record {
    data: Payload,
}

impl PartialEq for Record {
    /// Records are equal iff their payload bytes are — where the bytes
    /// live (heap vs. slab slot) is an engine detail, invisible to
    /// cache semantics and the differential oracles.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Record {}

impl Record {
    /// Wrap an owned payload (takes ownership of the allocation; no copy).
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self {
            data: Payload::Heap(Bytes::from(data)),
        }
    }

    /// Wrap an already-refcounted payload — the zero-copy ingestion path
    /// from the wire codecs, which decode values as [`Bytes`].
    pub fn from_bytes(data: Bytes) -> Self {
        Self {
            data: Payload::Heap(data),
        }
    }

    /// Copy `payload` into a slot of `arena`'s fitting size class — the
    /// slab ingest path ([`crate::ShardedNode::put_slice`]). Oversize
    /// payloads fall back to a plain heap allocation, so this always
    /// succeeds; `is_slab` reports which way it went.
    pub fn alloc_in(arena: &SlabArena, payload: &[u8]) -> Self {
        match arena.try_alloc(payload) {
            Some(slab) => Self {
                data: Payload::Slab(slab),
            },
            None => Self {
                data: Payload::Heap(Bytes::from(payload)),
            },
        }
    }

    /// A record of `len` identical filler bytes — synthetic workloads.
    pub fn filler(len: usize) -> Self {
        Self::from_vec(vec![0xAB; len])
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Payload::Heap(b) => b,
            Payload::Slab(s) => s.as_slice(),
        }
    }

    /// A refcounted view of the payload, sharing the backing allocation —
    /// the zero-copy egress path for wire response bodies. For a
    /// slab-resident record the returned [`Bytes`] owns a clone of the
    /// slot handle, so the slot stays live (and out of the freelist)
    /// until the response is written.
    pub fn bytes(&self) -> Bytes {
        match &self.data {
            Payload::Heap(b) => b.clone(),
            Payload::Slab(s) => Bytes::from_owner(s.clone()),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match &self.data {
            Payload::Heap(b) => b.len(),
            Payload::Slab(s) => s.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the payload is slab-resident (vs. a one-off heap
    /// allocation) — occupancy diagnostics and tests.
    pub fn is_slab(&self) -> bool {
        matches!(&self.data, Payload::Slab(_))
    }
}

/// A record is charged its **true footprint** — the slab slot size
/// [`crate::slab::footprint`] assigns its length — everywhere byte
/// accounting happens, whether the payload is currently slab-resident or
/// heap-backed. Charging by backing instead would make the simulated
/// cache ([`crate::ElasticCache`] stores heap records) and the live
/// sharded node (slab records) disagree on `||n||` for identical
/// contents, and the live/sim differential tests pin that equality.
impl ByteSize for Record {
    #[inline]
    fn byte_size(&self) -> usize {
        crate::slab::footprint(self.len()) as usize
    }
}

impl From<Vec<u8>> for Record {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<Bytes> for Record {
    fn from(b: Bytes) -> Self {
        Self::from_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_reports_payload_size() {
        let r = Record::from_vec(vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        // Charged the slab footprint (the minimum slot), not the raw len.
        assert_eq!(r.byte_size() as u64, crate::slab::footprint(3));
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert!(!r.is_empty());
        assert!(Record::from_vec(vec![]).is_empty());
    }

    #[test]
    fn clone_shares_the_payload() {
        let r = Record::filler(1000);
        let c = r.clone();
        assert!(std::ptr::eq(r.as_slice().as_ptr(), c.as_slice().as_ptr()));
        assert_eq!(r, c);
    }

    #[test]
    fn bytes_view_shares_the_payload() {
        let r = Record::filler(512);
        let b = r.bytes();
        assert!(std::ptr::eq(r.as_slice().as_ptr(), b.as_ref().as_ptr()));
        let roundtrip = Record::from_bytes(b);
        assert!(std::ptr::eq(
            r.as_slice().as_ptr(),
            roundtrip.as_slice().as_ptr()
        ));
    }

    #[test]
    fn filler_has_requested_length() {
        assert_eq!(Record::filler(77).len(), 77);
    }

    #[test]
    fn alloc_in_lands_in_the_arena_and_roundtrips() {
        let arena = SlabArena::new();
        let r = Record::alloc_in(&arena, &[9u8; 300]);
        assert!(r.is_slab());
        assert_eq!(r.len(), 300);
        assert!(r.as_slice().iter().all(|&b| b == 9));
        // ByteSize charges the true slot footprint, matching what the
        // shard charges via `slab::footprint`.
        assert_eq!(r.byte_size() as u64, crate::slab::footprint(300));
        // Clones share the slot.
        let c = r.clone();
        assert!(std::ptr::eq(r.as_slice().as_ptr(), c.as_slice().as_ptr()));
        assert_eq!(r, c);
    }

    #[test]
    fn slab_bytes_view_pins_the_slot() {
        let arena = SlabArena::new();
        let r = Record::alloc_in(&arena, b"pinned by the response body");
        let slot_ptr = r.as_slice().as_ptr();
        let b = r.bytes();
        assert!(
            std::ptr::eq(slot_ptr, b.as_ref().as_ptr()),
            "zero-copy view"
        );
        drop(r);
        // The Bytes owner still holds a SlabRef: the slot is not recycled.
        assert_eq!(&b[..], b"pinned by the response body");
        assert_eq!(arena.class_stats()[0].live_slots, 1);
        drop(b);
        assert_eq!(arena.class_stats()[0].live_slots, 0);
    }

    #[test]
    fn oversize_alloc_in_falls_back_to_heap() {
        let arena = SlabArena::new();
        let r = Record::alloc_in(&arena, &vec![1u8; 100_000]);
        assert!(!r.is_slab());
        assert_eq!(r.len(), 100_000);
        // Heap and slab records with equal bytes compare equal.
        let arena2 = SlabArena::new();
        let a = Record::alloc_in(&arena2, b"same bytes");
        let b = Record::from_vec(b"same bytes".to_vec());
        assert!(a.is_slab() && !b.is_slab());
        assert_eq!(a, b);
    }
}
