//! The cached value type.

use std::sync::Arc;

use ecc_bptree::ByteSize;

/// A cached derived result: an immutable byte payload behind an `Arc`, so
/// returning a hit to a caller never copies the data (only the simulated
/// network transfer is charged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    data: Arc<Vec<u8>>,
}

impl Record {
    /// Wrap a payload.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
        }
    }

    /// A record of `len` identical filler bytes — synthetic workloads.
    pub fn filler(len: usize) -> Self {
        Self::from_vec(vec![0xAB; len])
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl ByteSize for Record {
    #[inline]
    fn byte_size(&self) -> usize {
        self.data.len()
    }
}

impl From<Vec<u8>> for Record {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_reports_payload_size() {
        let r = Record::from_vec(vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.byte_size(), 3);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert!(!r.is_empty());
        assert!(Record::from_vec(vec![]).is_empty());
    }

    #[test]
    fn clone_shares_the_payload() {
        let r = Record::filler(1000);
        let c = r.clone();
        assert!(std::ptr::eq(r.as_slice().as_ptr(), c.as_slice().as_ptr()));
        assert_eq!(r, c);
    }

    #[test]
    fn filler_has_requested_length() {
        assert_eq!(Record::filler(77).len(), 77);
    }
}
