//! The cached value type.

use bytes::Bytes;
use ecc_bptree::ByteSize;

/// A cached derived result: an immutable byte payload behind a refcounted
/// [`Bytes`] handle, so every clone — a hit returned to a caller, a
/// replica placement, a migration sweep, a wire response body — is a
/// refcount bump, never a memcpy of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    data: Bytes,
}

impl Record {
    /// Wrap an owned payload (takes ownership of the allocation; no copy).
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self {
            data: Bytes::from(data),
        }
    }

    /// Wrap an already-refcounted payload — the zero-copy ingestion path
    /// from the wire codecs, which decode values as [`Bytes`].
    pub fn from_bytes(data: Bytes) -> Self {
        Self { data }
    }

    /// A record of `len` identical filler bytes — synthetic workloads.
    pub fn filler(len: usize) -> Self {
        Self::from_vec(vec![0xAB; len])
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// A refcounted view of the payload, sharing the backing allocation —
    /// the zero-copy egress path for wire response bodies.
    pub fn bytes(&self) -> Bytes {
        self.data.clone()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl ByteSize for Record {
    #[inline]
    fn byte_size(&self) -> usize {
        self.data.len()
    }
}

impl From<Vec<u8>> for Record {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<Bytes> for Record {
    fn from(b: Bytes) -> Self {
        Self::from_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_reports_payload_size() {
        let r = Record::from_vec(vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.byte_size(), 3);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert!(!r.is_empty());
        assert!(Record::from_vec(vec![]).is_empty());
    }

    #[test]
    fn clone_shares_the_payload() {
        let r = Record::filler(1000);
        let c = r.clone();
        assert!(std::ptr::eq(r.as_slice().as_ptr(), c.as_slice().as_ptr()));
        assert_eq!(r, c);
    }

    #[test]
    fn bytes_view_shares_the_payload() {
        let r = Record::filler(512);
        let b = r.bytes();
        assert!(std::ptr::eq(r.as_slice().as_ptr(), b.as_ref().as_ptr()));
        let roundtrip = Record::from_bytes(b);
        assert!(std::ptr::eq(
            r.as_slice().as_ptr(),
            roundtrip.as_slice().as_ptr()
        ));
    }

    #[test]
    fn filler_has_requested_length() {
        assert_eq!(Record::filler(77).len(), 77);
    }
}
