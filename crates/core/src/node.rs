//! One cache server: a B+-tree index plus capacity accounting.

use ecc_bptree::{BPlusTree, ByteSize};
use ecc_cloudsim::InstanceId;

use crate::record::Record;

/// A cache node: the indexing logic installed on one cloud instance
/// (paper §III-A: "the Sweep-and-Migrate function resides on each
/// individual cache server, along with the indexing logic").
///
/// Besides its primary index, a node can hold **best-effort replicas** of
/// records whose primary lives elsewhere (§VI "data replication"). Replicas
/// occupy only spare capacity: a primary insertion displaces replicas as
/// needed, so the paper's overflow semantics (`||n||` counts primaries) are
/// unchanged.
#[derive(Debug)]
pub struct CacheNode {
    /// The cloud instance this server runs on.
    pub instance: InstanceId,
    /// `⌈n⌉` — usable memory in bytes.
    capacity_bytes: u64,
    tree: BPlusTree<u64, Record>,
    replicas: BPlusTree<u64, Record>,
}

impl CacheNode {
    /// Create a node on `instance` with the given capacity and index order.
    pub fn new(instance: InstanceId, capacity_bytes: u64, btree_order: usize) -> Self {
        Self {
            instance,
            capacity_bytes,
            tree: BPlusTree::new(btree_order),
            replicas: BPlusTree::new(btree_order),
        }
    }

    /// `||n||` — bytes of primary records stored.
    #[inline]
    pub fn used_bytes(&self) -> u64 {
        self.tree.bytes()
    }

    /// Bytes held by best-effort replicas.
    #[inline]
    pub fn replica_bytes(&self) -> u64 {
        self.replicas.bytes()
    }

    /// `⌈n⌉` — the capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Fill fraction `||n|| / ⌈n⌉` (primaries only).
    pub fn fill(&self) -> f64 {
        self.used_bytes() as f64 / self.capacity_bytes as f64
    }

    /// The overflow test of Algorithm 1 line 5: would inserting `extra`
    /// bytes still fit? Replicas do not count — they yield to primaries
    /// (see [`CacheNode::make_room_for_primary`]).
    #[inline]
    pub fn fits(&self, extra: u64) -> bool {
        self.used_bytes() + extra <= self.capacity_bytes
    }

    /// Drop replicas (arbitrary order) until `extra` more primary bytes fit
    /// physically. Called by the coordinator before a primary insertion on
    /// a node holding replicas.
    pub fn make_room_for_primary(&mut self, extra: u64) {
        while self.used_bytes() + self.replica_bytes() + extra > self.capacity_bytes {
            let Some(k) = self.replicas.first_key().copied() else {
                break;
            };
            self.replicas.remove(&k);
        }
    }

    /// Number of records stored.
    #[inline]
    pub fn record_count(&self) -> usize {
        self.tree.len()
    }

    /// Whether the node stores nothing.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Look up a record (B+-tree search).
    pub fn get(&self, key: u64) -> Option<&Record> {
        self.tree.get(&key)
    }

    /// Insert a primary record; returns any displaced previous value.
    /// Replicas yield space first if the payload would not physically fit.
    pub fn insert(&mut self, key: u64, record: Record) -> Option<Record> {
        let existing = self
            .tree
            .get(&key)
            .map(|r| r.byte_size() as u64)
            .unwrap_or(0);
        let extra = (record.byte_size() as u64).saturating_sub(existing);
        if extra > 0 && self.replica_bytes() > 0 {
            self.make_room_for_primary(extra);
        }
        self.tree.insert(key, record)
    }

    /// Remove a record.
    pub fn remove(&mut self, key: u64) -> Option<Record> {
        self.tree.remove(&key)
    }

    /// Sum of charged record footprints in the inclusive key range (the
    /// aggregation test of Algorithm 2 line 3 — "maintaining an internal
    /// structure on the server which holds the keys' respective object
    /// size"). Footprints, not raw lengths, because the callers compare
    /// this against capacity headroom on a destination node.
    pub fn bytes_in_range(&self, lo: u64, hi: u64) -> u64 {
        self.tree
            .range(lo..=hi)
            .map(|(_, r)| r.byte_size() as u64)
            .sum()
    }

    /// Number of records in the inclusive key range.
    pub fn count_in_range(&self, lo: u64, hi: u64) -> usize {
        self.tree.range(lo..=hi).count()
    }

    /// Keys in the inclusive range, in order (the non-destructive half of a
    /// sweep).
    pub fn keys_in_range(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.tree.keys_in_range(lo..=hi)
    }

    /// Remove and return all records in the inclusive key range, in order —
    /// the destructive sweep of Algorithm 2 (search the start leaf, walk
    /// the linked leaves, delete as you go).
    pub fn drain_range(&mut self, lo: u64, hi: u64) -> Vec<(u64, Record)> {
        self.tree.drain_range(&lo, &hi)
    }

    /// Remove and return everything (node merge during contraction).
    pub fn drain_all(&mut self) -> Vec<(u64, Record)> {
        match (
            self.tree.first_key().copied(),
            self.tree.last_key().copied(),
        ) {
            (Some(lo), Some(hi)) => self.tree.drain_range(&lo, &hi),
            _ => Vec::new(),
        }
    }

    /// Iterate over all `(key, record)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Record)> {
        self.tree.iter()
    }

    // ------------------------------------------------------------ replicas

    /// Store a best-effort replica. Returns `false` (and stores nothing)
    /// if there is no spare capacity for it.
    pub fn insert_replica(&mut self, key: u64, record: Record) -> bool {
        let extra = record.byte_size() as u64;
        // Replacing an existing replica reuses its space.
        let existing = self
            .replicas
            .get(&key)
            .map(|r| r.byte_size() as u64)
            .unwrap_or(0);
        if self.used_bytes() + self.replica_bytes() - existing + extra > self.capacity_bytes {
            return false;
        }
        self.replicas.insert(key, record);
        true
    }

    /// Drop a replica if present.
    pub fn remove_replica(&mut self, key: u64) -> Option<Record> {
        self.replicas.remove(&key)
    }

    /// Read a replica (failure recovery).
    pub fn get_replica(&self, key: u64) -> Option<&Record> {
        self.replicas.get(&key)
    }

    /// Number of replicas held.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Remove and return all replicas in the inclusive key range (failure
    /// recovery of a dead primary's arc).
    pub fn take_replicas_in_range(&mut self, lo: u64, hi: u64) -> Vec<(u64, Record)> {
        self.replicas.drain_range(&lo, &hi)
    }

    /// Check index invariants (tests).
    pub fn validate(&self) {
        self.tree.validate();
        self.replicas.validate();
        assert!(
            self.used_bytes() <= self.capacity_bytes,
            "node over capacity: {} > {}",
            self.used_bytes(),
            self.capacity_bytes
        );
        assert!(
            self.used_bytes() + self.replica_bytes() <= self.capacity_bytes,
            "replicas overflow physical memory"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(cap: u64) -> CacheNode {
        CacheNode::new(InstanceId(0), cap, 8)
    }

    /// The footprint a filler of `len` is charged (slab slot size).
    fn fp(len: usize) -> u64 {
        crate::slab::footprint(len)
    }

    #[test]
    fn accounting_tracks_inserts_and_removes() {
        let mut n = node(1000);
        assert!(n.fits(1000));
        n.insert(1, Record::filler(300));
        n.insert(2, Record::filler(300));
        assert_eq!(n.used_bytes(), 2 * fp(300));
        let headroom = 1000 - 2 * fp(300);
        assert!(n.fits(headroom));
        assert!(!n.fits(headroom + 1));
        assert!((n.fill() - (2 * fp(300)) as f64 / 1000.0).abs() < 1e-12);
        n.remove(1);
        assert_eq!(n.used_bytes(), fp(300));
        assert_eq!(n.record_count(), 1);
        n.validate();
    }

    #[test]
    fn range_queries_sum_correctly() {
        let mut n = node(1_000_000);
        for k in 0..100u64 {
            n.insert(k, Record::filler(10));
        }
        assert_eq!(n.bytes_in_range(0, 49), 50 * fp(10));
        assert_eq!(n.count_in_range(10, 19), 10);
        assert_eq!(n.keys_in_range(95, 200), vec![95, 96, 97, 98, 99]);
    }

    #[test]
    fn drain_range_moves_records_out() {
        let mut n = node(1_000_000);
        for k in 0..100u64 {
            n.insert(k, Record::filler(10));
        }
        let moved = n.drain_range(0, 49);
        assert_eq!(moved.len(), 50);
        assert_eq!(n.record_count(), 50);
        assert_eq!(n.used_bytes(), 50 * fp(10));
        assert!(moved.windows(2).all(|w| w[0].0 < w[1].0));
        n.validate();
    }

    #[test]
    fn drain_all_empties_the_node() {
        let mut n = node(10_000);
        for k in [5u64, 1, 9, 3] {
            n.insert(k, Record::filler(7));
        }
        let all = n.drain_all();
        assert_eq!(all.len(), 4);
        assert!(n.is_empty());
        assert_eq!(n.used_bytes(), 0);
        assert!(node(10).drain_all().is_empty());
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut n = node(1000);
        n.insert(1, Record::filler(100));
        let old = n.insert(1, Record::filler(50));
        assert_eq!(old.unwrap().len(), 100);
        assert_eq!(n.used_bytes(), fp(50));
        assert_eq!(n.record_count(), 1);
    }

    #[test]
    fn replicas_use_only_spare_capacity() {
        // Capacity holds the 600-byte primary plus one 300-byte replica
        // (and its 350-byte replacement), but not a second replica.
        let cap = fp(600) + fp(350) + 8;
        let mut n = node(cap);
        n.insert(1, Record::filler(600));
        assert!(n.insert_replica(100, Record::filler(300)));
        assert_eq!(n.replica_bytes(), fp(300));
        // No room for another 300-byte replica.
        assert!(!n.insert_replica(101, Record::filler(300)));
        assert_eq!(n.replica_count(), 1);
        // Replacing the existing replica reuses its space.
        assert!(n.insert_replica(100, Record::filler(350)));
        assert_eq!(n.replica_bytes(), fp(350));
        n.validate();
    }

    #[test]
    fn primaries_displace_replicas() {
        let mut n = node(1000);
        n.insert(1, Record::filler(500));
        assert!(n.insert_replica(100, Record::filler(400)));
        // A 400-byte primary doesn't physically fit until replicas yield.
        assert!(n.fits(400), "primary-accounting fit ignores replicas");
        n.make_room_for_primary(400);
        assert_eq!(n.replica_count(), 0);
        n.insert(2, Record::filler(400));
        n.validate();
    }

    #[test]
    fn replica_recovery_drains_a_range() {
        let mut n = node(100_000);
        for k in 0..50u64 {
            assert!(n.insert_replica(k, Record::filler(10)));
        }
        assert_eq!(n.get_replica(7).map(|r| r.len()), Some(10));
        let taken = n.take_replicas_in_range(10, 19);
        assert_eq!(taken.len(), 10);
        assert_eq!(n.replica_count(), 40);
        assert_eq!(n.get_replica(15), None);
        assert_eq!(n.remove_replica(5).map(|r| r.len()), Some(10));
        n.validate();
    }
}
