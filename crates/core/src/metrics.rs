//! Hit/miss/time accounting — the raw series behind every figure.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Cumulative cache statistics. Figure harnesses snapshot this each
/// reporting interval and difference consecutive snapshots.
#[must_use]
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total queries observed.
    pub queries: u64,
    /// Queries answered from cache.
    pub hits: u64,
    /// Queries that had to execute the backing service.
    pub misses: u64,
    /// Records evicted by the sliding window.
    pub evictions: u64,
    /// Records displaced by LRU replacement (static baseline only).
    pub lru_evictions: u64,
    /// Bucket splits performed (node overflow events).
    pub splits: u64,
    /// Splits that had to allocate a brand-new cloud node.
    pub splits_with_allocation: u64,
    /// Node merges performed by contraction.
    pub merges: u64,
    /// Virtual time actually charged to the query path, µs
    /// (hits + misses + migration/boot on the critical path).
    pub observed_us: u64,
    /// Virtual time the same queries would have cost uncached, µs.
    pub baseline_us: u64,
    /// Portion of `observed_us` spent executing the backing service.
    pub service_us: u64,
    /// Portion of `observed_us` spent on node allocation (boot).
    pub alloc_us: u64,
    /// Portion of `observed_us` spent moving records between nodes.
    pub migration_us: u64,
    /// Misses served from the persistent overflow tier instead of the
    /// backing service.
    pub tier_hits: u64,
    /// Evicted records written to the persistent overflow tier.
    pub tier_writes: u64,
    /// Cache admissions abandoned because an internal invariant check
    /// failed mid-insert; the record was served uncached instead. Always 0
    /// in a healthy cache — a nonzero value flags a coordinator bug.
    pub insert_errors: u64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit rate in `[0, 1]`; 0 when no queries have been seen.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Relative speedup over the uncached service:
    /// `baseline_us / observed_us` (the y-axis of Figures 3 and 5).
    pub fn speedup(&self) -> f64 {
        if self.observed_us == 0 {
            1.0
        } else {
            self.baseline_us as f64 / self.observed_us as f64
        }
    }

    /// Average observed per-query time in seconds.
    pub fn avg_query_secs(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.observed_us as f64 / self.queries as f64 / 1e6
        }
    }

    /// Counter-wise difference `self - earlier` (for interval reporting).
    ///
    /// Saturating: if `earlier` was snapshotted after a counter reset (or
    /// the operands are swapped), a counter that moved backwards reports 0
    /// for that interval instead of underflowing.
    pub fn delta(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            queries: self.queries.saturating_sub(earlier.queries),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            lru_evictions: self.lru_evictions.saturating_sub(earlier.lru_evictions),
            splits: self.splits.saturating_sub(earlier.splits),
            splits_with_allocation: self
                .splits_with_allocation
                .saturating_sub(earlier.splits_with_allocation),
            merges: self.merges.saturating_sub(earlier.merges),
            observed_us: self.observed_us.saturating_sub(earlier.observed_us),
            baseline_us: self.baseline_us.saturating_sub(earlier.baseline_us),
            service_us: self.service_us.saturating_sub(earlier.service_us),
            alloc_us: self.alloc_us.saturating_sub(earlier.alloc_us),
            migration_us: self.migration_us.saturating_sub(earlier.migration_us),
            tier_hits: self.tier_hits.saturating_sub(earlier.tier_hits),
            tier_writes: self.tier_writes.saturating_sub(earlier.tier_writes),
            insert_errors: self.insert_errors.saturating_sub(earlier.insert_errors),
        }
    }
}

/// Lock-free per-op counters for a concurrently-served cache node.
///
/// Every field is a relaxed [`AtomicU64`]: recording an op from a request
/// thread never takes a lock, so a stats poll can't stall the data path
/// and a GET never needs exclusive access just to bump `hits`.
#[derive(Debug, Default)]
pub struct NodeCounters {
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
    removes: AtomicU64,
    overflows: AtomicU64,
    sweeps: AtomicU64,
}

/// A point-in-time copy of [`NodeCounters`] (plain integers, serializable).
#[must_use]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeOpStats {
    /// GET lookups served (hits + misses).
    pub gets: u64,
    /// GETs that found a record.
    pub hits: u64,
    /// Records stored (inserts and replacements).
    pub puts: u64,
    /// Records removed by key.
    pub removes: u64,
    /// PUTs refused because the byte growth would overflow the node.
    pub overflows: u64,
    /// Range drains (migration sweeps) executed.
    pub sweeps: u64,
}

impl NodeCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one GET; `hit` marks whether it found a record.
    #[inline]
    pub fn note_get(&self, hit: bool) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one successful PUT.
    #[inline]
    pub fn note_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful remove.
    #[inline]
    pub fn note_remove(&self) {
        self.removes.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one capacity refusal.
    #[inline]
    pub fn note_overflow(&self) {
        self.overflows.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one range drain.
    #[inline]
    pub fn note_sweep(&self) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters (lock-free; fields are read independently, so
    /// a snapshot taken mid-op may be off by the in-flight op).
    pub fn snapshot(&self) -> NodeOpStats {
        NodeOpStats {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            overflows: self.overflows.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_queries() {
        let m = Metrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.speedup(), 1.0);
        assert_eq!(m.avg_query_secs(), 0.0);
    }

    #[test]
    fn speedup_is_baseline_over_observed() {
        let m = Metrics {
            queries: 10,
            baseline_us: 230_000_000,
            observed_us: 23_000_000,
            ..Default::default()
        };
        assert!((m.speedup() - 10.0).abs() < 1e-12);
        assert!((m.avg_query_secs() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let a = Metrics {
            queries: 10,
            hits: 4,
            misses: 6,
            observed_us: 100,
            baseline_us: 300,
            ..Default::default()
        };
        let b = Metrics {
            queries: 25,
            hits: 15,
            misses: 10,
            observed_us: 180,
            baseline_us: 700,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.queries, 15);
        assert_eq!(d.hits, 11);
        assert_eq!(d.misses, 4);
        assert_eq!(d.observed_us, 80);
        assert_eq!(d.baseline_us, 400);
        assert!((d.hit_rate() - 11.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn delta_across_a_reset_saturates_instead_of_panicking() {
        let before_reset = Metrics {
            queries: 100,
            hits: 60,
            misses: 40,
            observed_us: 5_000,
            baseline_us: 9_000,
            evictions: 7,
            ..Default::default()
        };
        // Counters were reset, then moved a little: every field is now
        // smaller than the stale snapshot.
        let after_reset = Metrics {
            queries: 3,
            hits: 1,
            misses: 2,
            observed_us: 90,
            baseline_us: 150,
            ..Default::default()
        };
        let d = after_reset.delta(&before_reset);
        assert_eq!(d.queries, 0);
        assert_eq!(d.hits, 0);
        assert_eq!(d.misses, 0);
        assert_eq!(d.observed_us, 0);
        assert_eq!(d.baseline_us, 0);
        assert_eq!(d.evictions, 0);
    }
}
