//! The sliding-window eviction structure (paper §III-B, Figure 2).
//!
//! Incoming queries are treated as a stream; a global window of the `m`
//! most recent time slices records which keys were queried when. When a
//! slice expires (reaches `t_{m+1}`), every key it contains receives an
//! eviction score
//!
//! ```text
//! λ(k) = Σ_{i=1..m} α^(i-1) · |{k ∈ t_i}|
//! ```
//!
//! over the *current* window (`t_1` = most recent completed slice), and
//! keys with `λ(k) < T_λ` are evicted. Recent queries are rewarded (the
//! decay is amortized in older slices), so a key keeps its cache residency
//! by being re-queried.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// The global sliding window of queried keys.
///
/// Alongside the per-slice maps the window maintains a per-key *occurrence
/// index*: for every key resident anywhere in the completed window, the
/// `(epoch, count)` pairs of the slices it appears in, oldest first. Each
/// `(key, slice)` occurrence is pushed exactly once (at `end_slice`) and
/// popped exactly once (when its slice expires), so maintenance is O(1)
/// amortized per recorded query, and scoring a key is O(occurrences of the
/// key) instead of O(m) map lookups — `victims()` becomes a threshold scan.
///
/// Summing only the slices a key actually appears in, newest first, is
/// *bit-identical* to the full newest-to-oldest sum in [`Self::lambda`]:
/// every skipped term is `α^i · 0 = +0.0`, and `x + 0.0 == x` exactly for
/// the non-negative partial sums that arise here. The simtest bit-exact
/// window oracle relies on this.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    m: usize,
    alpha: f64,
    threshold: f64,
    /// The slice currently being recorded (not yet part of the window).
    current: BTreeMap<u64, u32>,
    /// Completed slices, front = `t_1` (newest) … back = `t_m` (oldest).
    history: VecDeque<BTreeMap<u64, u32>>,
    /// Precomputed decay powers `α^0 … α^(m-1)`.
    powers: Vec<f64>,
    /// Epoch assigned to the next completed slice. Epochs are contiguous:
    /// `history.front()` holds epoch `next_epoch - 1`, `history.back()`
    /// holds epoch `next_epoch - history.len()`.
    next_epoch: u64,
    /// Per-key occurrence index over the completed window: `(epoch, count)`
    /// pairs, front = oldest. Keys with no in-window occurrence are absent.
    occ: HashMap<u64, VecDeque<(u64, u32)>>,
}

impl SlidingWindow {
    /// A window of `m` slices with decay `alpha` and eviction threshold
    /// `threshold` (`T_λ`).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `alpha` is outside `(0, 1)`.
    pub fn new(m: usize, alpha: f64, threshold: f64) -> Self {
        assert!(m >= 1, "window needs at least one slice");
        assert!(alpha > 0.0 && alpha < 1.0, "decay must be in (0, 1)");
        let mut powers = Vec::with_capacity(m);
        let mut p = 1.0;
        for _ in 0..m {
            powers.push(p);
            p *= alpha;
        }
        Self {
            m,
            alpha,
            threshold,
            current: BTreeMap::new(),
            history: VecDeque::with_capacity(m + 1),
            powers,
            next_epoch: 0,
            occ: HashMap::new(),
        }
    }

    /// `m`.
    pub fn slices(&self) -> usize {
        self.m
    }

    /// `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `T_λ`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Record that `key` was queried in the current slice.
    pub fn note_query(&mut self, key: u64) {
        *self.current.entry(key).or_insert(0) += 1;
    }

    /// Close the current slice. If the window was already full, the oldest
    /// slice expires and is returned (`t_{m+1}`) — the caller scores its
    /// keys with [`SlidingWindow::victims`].
    pub fn end_slice(&mut self) -> Option<BTreeMap<u64, u32>> {
        let completed = std::mem::take(&mut self.current);
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        for (&key, &count) in &completed {
            self.occ.entry(key).or_default().push_back((epoch, count));
        }
        self.history.push_front(completed);
        if self.history.len() > self.m {
            self.expire_back()
        } else {
            None
        }
    }

    /// Pop the oldest completed slice and retire its occurrence-index
    /// entries. The expired slice's epoch is `next_epoch - history.len()`
    /// (epochs are contiguous), computed before the pop.
    fn expire_back(&mut self) -> Option<BTreeMap<u64, u32>> {
        let expired_epoch = self.next_epoch - self.history.len() as u64;
        let slice = self.history.pop_back()?;
        for key in slice.keys() {
            if let Some(entries) = self.occ.get_mut(key) {
                while entries.front().is_some_and(|&(e, _)| e <= expired_epoch) {
                    entries.pop_front();
                }
                if entries.is_empty() {
                    self.occ.remove(key);
                }
            }
        }
        Some(slice)
    }

    /// The eviction score `λ(k)` over the current window, computed the slow
    /// way: one map lookup per window slice, O(m·log n). Kept as the
    /// secondary oracle for the incremental scorer (and for callers probing
    /// arbitrary keys off the hot path); eviction itself goes through
    /// [`Self::lambda_incremental`].
    pub fn lambda(&self, key: u64) -> f64 {
        self.history
            .iter()
            .enumerate()
            .map(|(i, slice)| self.powers[i] * slice.get(&key).copied().unwrap_or(0) as f64)
            .sum()
    }

    /// The eviction score `λ(k)` from the per-key occurrence index:
    /// O(occurrences of `key`) with a single hash lookup, no per-slice map
    /// walks. Bit-identical to [`Self::lambda`] — the skipped slices
    /// contribute exact `+0.0` terms (see the struct docs).
    pub fn lambda_incremental(&self, key: u64) -> f64 {
        let Some(entries) = self.occ.get(&key) else {
            // Bit-faithful to `lambda()`: an empty `.sum()` folds from f64's
            // additive identity -0.0, while any added term — even `α^i · 0`
            // — flips it to +0.0. The index is empty iff the key is absent
            // from every completed slice.
            return if self.history.is_empty() { -0.0 } else { 0.0 };
        };
        let newest = self.next_epoch - 1;
        let mut sum = 0.0;
        // Newest-to-oldest, matching `lambda()`'s summation order exactly.
        for &(epoch, count) in entries.iter().rev() {
            sum += self.powers[(newest - epoch) as usize] * count as f64;
        }
        sum
    }

    /// Keys of an expired slice whose `λ` falls below `T_λ` — the set to
    /// evict from the cache. A threshold scan over the occurrence index:
    /// O(Σ occurrences of the expired keys), not O(|expired|·m·log n).
    pub fn victims(&self, expired: &BTreeMap<u64, u32>) -> Vec<u64> {
        expired
            .keys()
            .copied()
            .filter(|&k| self.lambda_incremental(k) < self.threshold)
            .collect()
    }

    /// Number of distinct keys currently tracked anywhere in the window:
    /// the occurrence index already holds every key of the completed
    /// slices, so only the open slice needs a membership probe each.
    pub fn tracked_keys(&self) -> usize {
        self.occ.len()
            + self
                .current
                .keys()
                .filter(|k| !self.occ.contains_key(k))
                .count()
    }

    /// Resize the window to `new_m` slices (dynamic window sizing, the
    /// paper's §VI future work). Growing simply raises capacity; shrinking
    /// immediately expires the slices that no longer fit, returning them
    /// oldest-first so the caller can run eviction scoring on each.
    ///
    /// # Panics
    ///
    /// Panics if `new_m == 0`.
    pub fn set_slices(&mut self, new_m: usize) -> Vec<BTreeMap<u64, u32>> {
        assert!(new_m >= 1, "window needs at least one slice");
        self.m = new_m;
        // Recompute decay powers for the new width.
        self.powers.clear();
        let mut p = 1.0;
        for _ in 0..new_m {
            self.powers.push(p);
            p *= self.alpha;
        }
        let mut expired = Vec::new();
        while self.history.len() > self.m {
            let Some(slice) = self.expire_back() else {
                break;
            };
            expired.push(slice);
        }
        expired
    }

    /// Structural self-check: the history never holds more than `m`
    /// completed slices and the precomputed decay table matches `α^i`.
    /// Returns a description of the first violation, so callers (the
    /// cache-wide auditor) can surface it as a typed error.
    pub fn check_invariants(&self) -> Result<(), &'static str> {
        if self.history.len() > self.m {
            return Err("window holds more than m completed slices");
        }
        if self.powers.len() != self.m {
            return Err("decay table length differs from m");
        }
        let mut p = 1.0;
        for &q in &self.powers {
            if (q - p).abs() > 1e-12 {
                return Err("decay table out of sync with alpha");
            }
            p *= self.alpha;
        }
        // The occurrence index must mirror the completed slices exactly:
        // every (key, slice) pair indexed once with the right epoch and
        // count, and nothing else.
        let mut indexed: usize = 0;
        let newest = self.next_epoch.wrapping_sub(1);
        for (age, slice) in self.history.iter().enumerate() {
            let epoch = newest - age as u64;
            for (key, &count) in slice {
                let found = self
                    .occ
                    .get(key)
                    .and_then(|entries| entries.iter().find(|&&(e, _)| e == epoch));
                match found {
                    Some(&(_, c)) if c == count => indexed += 1,
                    Some(_) => return Err("occurrence index holds a stale count"),
                    None => return Err("occurrence index missing a resident key"),
                }
            }
        }
        let total: usize = self.occ.values().map(VecDeque::len).sum();
        if total != indexed {
            return Err("occurrence index holds entries for expired slices");
        }
        if self.occ.values().any(VecDeque::is_empty) {
            return Err("occurrence index retains an empty per-key deque");
        }
        Ok(())
    }

    /// Brute-force reference implementation of `λ` used by the test suite
    /// (kept here so it stays in sync with the window's internal layout).
    #[doc(hidden)]
    pub fn lambda_reference(&self, key: u64) -> f64 {
        let mut sum = 0.0;
        for (i, slice) in self.history.iter().enumerate() {
            if let Some(&c) = slice.get(&key) {
                sum += self.alpha.powi(i as i32) * c as f64;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fill one slice with the given keys and close it.
    fn push_slice(w: &mut SlidingWindow, keys: &[u64]) -> Option<BTreeMap<u64, u32>> {
        for &k in keys {
            w.note_query(k);
        }
        w.end_slice()
    }

    #[test]
    fn no_expiry_until_window_fills() {
        let mut w = SlidingWindow::new(3, 0.9, 0.0);
        assert!(push_slice(&mut w, &[1]).is_none());
        assert!(push_slice(&mut w, &[2]).is_none());
        assert!(push_slice(&mut w, &[3]).is_none());
        // Fourth closure expires the first slice.
        let expired = push_slice(&mut w, &[4]).expect("window full");
        assert!(expired.contains_key(&1));
    }

    #[test]
    fn lambda_weights_decay_with_age() {
        let mut w = SlidingWindow::new(3, 0.5, 0.0);
        push_slice(&mut w, &[7]); // will be t_3 (α² = 0.25)
        push_slice(&mut w, &[7]); // t_2 (α = 0.5)
        push_slice(&mut w, &[7]); // t_1 (α⁰ = 1)
        assert!((w.lambda(7) - 1.75).abs() < 1e-12);
        assert_eq!(w.lambda(8), 0.0);
    }

    #[test]
    fn lambda_counts_multiplicity() {
        let mut w = SlidingWindow::new(2, 0.9, 0.0);
        push_slice(&mut w, &[5, 5, 5]); // three queries in one slice
        assert!((w.lambda(5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_matches_reference_on_random_history() {
        let mut w = SlidingWindow::new(10, 0.93, 0.0);
        for i in 0..25u64 {
            let keys: Vec<u64> = (0..20).map(|j| (i * 31 + j * 17) % 50).collect();
            push_slice(&mut w, &keys);
        }
        for k in 0..50 {
            assert!(
                (w.lambda(k) - w.lambda_reference(k)).abs() < 1e-9,
                "mismatch at key {k}"
            );
        }
    }

    #[test]
    fn baseline_threshold_spares_window_residents() {
        // T_λ = α^(m-1): a key queried once anywhere in the window survives.
        let m = 5;
        let alpha: f64 = 0.99;
        let t = alpha.powi(m as i32 - 1);
        let mut w = SlidingWindow::new(m, alpha, t);
        // Key 1 queried only in the slice that is about to expire...
        push_slice(&mut w, &[1]);
        for _ in 0..m - 1 {
            push_slice(&mut w, &[2]);
        }
        let expired = push_slice(&mut w, &[2]).expect("expiry");
        // ...so it is evicted; key 2 (still in window) would survive.
        assert_eq!(w.victims(&expired), vec![1]);
        assert!(w.lambda(2) >= t);
    }

    #[test]
    fn requeried_keys_survive_expiry() {
        let m = 4;
        let alpha = 0.99;
        let mut w = SlidingWindow::new(m, alpha, alpha.powi(m as i32 - 1));
        push_slice(&mut w, &[9]); // old query of key 9
        push_slice(&mut w, &[]);
        push_slice(&mut w, &[9]); // re-query keeps it warm
        push_slice(&mut w, &[]);
        let expired = push_slice(&mut w, &[]).expect("expiry");
        assert!(expired.contains_key(&9));
        assert!(w.victims(&expired).is_empty(), "re-queried key evicted");
    }

    #[test]
    fn lower_alpha_evicts_more_aggressively() {
        // Figure 7's mechanism: with smaller α, a key must be re-queried
        // more recently/often to stay above the same relative threshold.
        let m = 10;
        let run = |alpha: f64| -> bool {
            // Same absolute threshold for both decays.
            let mut w = SlidingWindow::new(m, alpha, 0.8);
            // Key queried once, five slices before the check.
            push_slice(&mut w, &[1]);
            for _ in 0..5 {
                push_slice(&mut w, &[]);
            }
            w.lambda(1) >= w.threshold()
        };
        assert!(run(0.99), "high decay should retain");
        assert!(!run(0.5), "low decay should evict");
    }

    #[test]
    fn tracked_keys_counts_distinct() {
        let mut w = SlidingWindow::new(3, 0.9, 0.0);
        push_slice(&mut w, &[1, 2, 2]);
        w.note_query(3);
        assert_eq!(w.tracked_keys(), 3);
    }

    #[test]
    fn zero_threshold_never_evicts() {
        let mut w = SlidingWindow::new(2, 0.9, 0.0);
        push_slice(&mut w, &[1, 2, 3]);
        push_slice(&mut w, &[]);
        let expired = push_slice(&mut w, &[]).expect("expiry");
        assert!(!expired.is_empty());
        assert!(w.victims(&expired).is_empty());
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1)")]
    fn invalid_alpha_rejected() {
        SlidingWindow::new(5, 1.5, 0.0);
    }

    #[test]
    fn empty_window_scores_zero_and_yields_no_victims() {
        // A window that has never seen a query: λ is 0 everywhere, an
        // expired-but-empty slice produces no victims, and closing empty
        // slices never expires anything until the window fills.
        let mut w = SlidingWindow::new(3, 0.9, 0.5);
        assert_eq!(w.lambda(42), 0.0);
        assert_eq!(w.tracked_keys(), 0);
        assert!(w.victims(&BTreeMap::new()).is_empty());
        assert!(w.end_slice().is_none());
        assert!(w.end_slice().is_none());
        assert!(w.end_slice().is_none());
        let expired = w.end_slice().expect("window full");
        assert!(expired.is_empty());
        assert!(w.victims(&expired).is_empty());
        w.check_invariants().expect("structurally sound");
    }

    #[test]
    fn eviction_threshold_boundary_is_strict() {
        // Eviction fires iff λ(k) < T_λ (strict). With the baseline
        // threshold T_λ = α^(m-1), a key queried exactly once in the
        // *oldest* surviving slice scores λ = α^(m-1) == T_λ and must
        // survive; a key only in the expired slice scores below and goes.
        let m = 4;
        let alpha: f64 = 0.5;
        let t = alpha.powi(m as i32 - 1); // 0.125
        let mut w = SlidingWindow::new(m, alpha, t);
        push_slice(&mut w, &[1]); // key 1: expires with this slice
        push_slice(&mut w, &[2]); // key 2: will sit at t_m when scored
        for _ in 0..m - 1 {
            push_slice(&mut w, &[]);
        }
        // Note: the loop above closed m-1 slices after key 2's, so key 1's
        // slice has expired and key 2's occupies the oldest window slot.
        assert!((w.lambda(2) - t).abs() < 1e-12, "λ(2) = {}", w.lambda(2));
        let mut expired = BTreeMap::new();
        expired.insert(1u64, 1u32);
        expired.insert(2u64, 1u32);
        let victims = w.victims(&expired);
        assert!(victims.contains(&1), "λ(1) < T_λ must evict");
        assert!(!victims.contains(&2), "λ(2) == T_λ must survive (strict <)");
    }

    #[test]
    fn single_slice_window_expires_each_step() {
        // m = 1 degenerates to "evict anything not re-queried last slice":
        // T_λ = α^0 = 1, and each closure expires the previous slice.
        let mut w = SlidingWindow::new(1, 0.7, 1.0);
        assert!(push_slice(&mut w, &[5]).is_none(), "first slice just fills");
        let expired = push_slice(&mut w, &[5]).expect("m=1 expires every step");
        assert!(expired.contains_key(&5));
        // Key 5 was re-queried in the surviving slice: λ = 1 == T_λ, kept.
        assert!(w.victims(&expired).is_empty());
        // Not re-queried this time: λ = 0 < 1, evicted.
        let expired = push_slice(&mut w, &[]).expect("expiry");
        assert_eq!(w.victims(&expired), vec![5]);
        w.check_invariants().expect("structurally sound");
    }

    #[test]
    fn shrinking_the_window_expires_oldest_slices() {
        let mut w = SlidingWindow::new(5, 0.9, 0.0);
        for k in 0..5u64 {
            push_slice(&mut w, &[k]);
        }
        // Shrink 5 -> 2: slices holding keys 0, 1, 2 expire, oldest first.
        let expired = w.set_slices(2);
        assert_eq!(expired.len(), 3);
        assert!(expired[0].contains_key(&0));
        assert!(expired[1].contains_key(&1));
        assert!(expired[2].contains_key(&2));
        assert_eq!(w.slices(), 2);
        // Remaining window scores only the two newest slices.
        assert_eq!(w.lambda(2), 0.0);
        assert!(w.lambda(4) > 0.0);
    }

    #[test]
    fn growing_the_window_keeps_history_and_rescales_powers() {
        let mut w = SlidingWindow::new(2, 0.5, 0.0);
        push_slice(&mut w, &[7]);
        push_slice(&mut w, &[7]);
        assert!(w.set_slices(4).is_empty());
        assert_eq!(w.slices(), 4);
        // Both queries still visible; next closures don't expire early.
        assert!((w.lambda(7) - 1.5).abs() < 1e-12);
        assert!(push_slice(&mut w, &[]).is_none());
        assert!(push_slice(&mut w, &[]).is_none());
        assert!(push_slice(&mut w, &[]).is_some());
    }

    #[test]
    fn incremental_lambda_is_bit_exact_under_churn() {
        // The hot-path scorer must agree with the full O(m·log n) scan to
        // the last bit — including across shrink-then-grow resizes — or the
        // simtest bit-exact oracle would flag eviction divergence.
        let mut w = SlidingWindow::new(6, 0.93, 0.5);
        let mut state = 0x243F6A8885A308D3u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..200u64 {
            for _ in 0..rand() % 8 {
                w.note_query(rand() % 40);
            }
            let _ = w.end_slice();
            if round % 31 == 17 {
                let _ = w.set_slices((rand() % 9 + 1) as usize);
            }
            w.check_invariants().expect("occurrence index in sync");
            for k in 0..40u64 {
                assert_eq!(
                    w.lambda(k).to_bits(),
                    w.lambda_incremental(k).to_bits(),
                    "round {round}, key {k}"
                );
            }
        }
    }

    #[test]
    fn victims_use_the_occurrence_index() {
        // Same decisions as the full rescore on a window where some expired
        // keys are still resident and some are gone entirely.
        let m = 4;
        let alpha: f64 = 0.9;
        let mut w = SlidingWindow::new(m, alpha, alpha.powi(m as i32 - 1));
        push_slice(&mut w, &[1, 2]);
        push_slice(&mut w, &[2]);
        push_slice(&mut w, &[3]);
        push_slice(&mut w, &[]);
        let expired = push_slice(&mut w, &[]).expect("expiry");
        let fast = w.victims(&expired);
        let slow: Vec<u64> = expired
            .keys()
            .copied()
            .filter(|&k| w.lambda(k) < w.threshold())
            .collect();
        assert_eq!(fast, slow);
        w.check_invariants().expect("structurally sound");
    }

    #[test]
    fn tracked_keys_counts_current_and_history_overlap_once() {
        let mut w = SlidingWindow::new(3, 0.9, 0.0);
        push_slice(&mut w, &[1, 2]);
        // Key 2 re-queried in the open slice must not double-count.
        w.note_query(2);
        w.note_query(9);
        assert_eq!(w.tracked_keys(), 3);
    }

    #[test]
    fn resize_then_lambda_matches_reference() {
        let mut w = SlidingWindow::new(8, 0.93, 0.0);
        for i in 0..12u64 {
            push_slice(&mut w, &[(i * 3) % 7, i % 5]);
        }
        w.set_slices(3);
        push_slice(&mut w, &[1, 2]);
        for k in 0..7 {
            assert!((w.lambda(k) - w.lambda_reference(k)).abs() < 1e-9);
        }
    }
}
