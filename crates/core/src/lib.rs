//! The elastic cooperative cloud cache of Chiu, Shetty & Agrawal
//! (*Elastic Cloud Caches for Accelerating Service-Oriented Computations*,
//! SC 2010).
//!
//! The cache stores derived web-service results in the memory of a fleet of
//! cloud nodes and grows/shrinks the fleet with demand:
//!
//! * [`ElasticCache`] — the coordinator: consistent-hash placement,
//!   **GBA-Insert** (Algorithm 1: split the fullest bucket of an overflowed
//!   node at its median key and migrate the lower half greedily to the
//!   least-loaded existing node, allocating a new cloud node only as a last
//!   resort), **Sweep-and-Migrate** (Algorithm 2: linked-leaf range sweep),
//!   sliding-window **eviction** (decay-scored, §III-B) and conservative
//!   node **contraction**.
//! * [`StaticCache`] — the paper's baseline: a fixed fleet (static-2/4/8)
//!   with per-node LRU replacement, as in cluster/grid deployments and
//!   memcached.
//! * [`Metrics`] — hit/miss/eviction counters plus the virtual-time
//!   accounting from which all of the paper's speedup figures derive.
//!
//! Both caches run against the [`ecc_cloudsim`] substrate: a virtual clock,
//! EC2-like allocation latency and billing, and a network model providing
//! the paper's `T_net`.
//!
//! # Example
//!
//! ```
//! use ecc_core::{CacheConfig, ElasticCache, Record};
//!
//! let mut cache = ElasticCache::new(CacheConfig::small_test());
//! let key = 42u64;
//!
//! // First access misses and runs the (expensive) service...
//! let uncached_us = 23_000_000;
//! let r1 = cache.query(key, uncached_us, || Record::from_vec(vec![7; 100]));
//! // ...the second is served from cache.
//! let r2 = cache.query(key, uncached_us, || unreachable!("must hit"));
//! assert_eq!(r1, r2);
//! assert_eq!(cache.metrics().hits, 1);
//! assert_eq!(cache.metrics().misses, 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod adaptive;
mod config;
mod elastic;
mod error;
pub mod lockorder;
mod lru;
mod metrics;
mod node;
mod record;
mod shard;
pub mod slab;
mod static_cache;
mod warmpool;
mod window;

pub use adaptive::{AdaptiveWindowConfig, WindowController};
pub use config::{CacheConfig, WindowConfig};
pub use elastic::{CacheAuditError, ElasticCache, FailureReport, NodeId};
pub use error::CacheError;
pub use lockorder::{LockClass, LockOrderViolation, LockToken};
pub use lru::Lru;
pub use metrics::{Metrics, NodeCounters, NodeOpStats};
pub use node::CacheNode;
pub use record::Record;
pub use shard::{PutOutcome, ShardAuditError, ShardedNode, DEFAULT_STRIPES};
pub use slab::{ClassStats, SizeClasses, SlabArena, SlabRef, SLOT_HEADER};
pub use static_cache::StaticCache;
pub use warmpool::WarmPool;
pub use window::SlidingWindow;
