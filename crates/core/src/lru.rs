//! A byte-bounded LRU map, the replacement policy of the static baseline
//! ("the fixed-node settings subscribe to the simple LRU eviction policy",
//! paper §IV-B — the same policy memcached uses, §V).
//!
//! Implemented as a slab of doubly linked entries plus a key → slot map:
//! `get`, `insert`, `remove` and `pop_lru` are all O(1) expected.

use std::collections::HashMap;

use ecc_bptree::ByteSize;

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: u32,
    next: u32,
}

/// An LRU map with byte accounting.
#[derive(Debug)]
pub struct Lru<K, V> {
    map: HashMap<K, u32>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<u32>,
    /// Most recently used.
    head: u32,
    /// Least recently used.
    tail: u32,
    bytes: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V: ByteSize> Lru<K, V> {
    /// An empty LRU.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes of stored values.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Look up `key` and mark it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx as usize].as_ref().map(|e| &e.value)
    }

    /// Look up without touching recency (diagnostics).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.slab[idx as usize].as_ref().map(|e| &e.value)
    }

    /// Insert (or replace) and mark most recently used. Returns the
    /// previous value for the key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let add = value.byte_size() as u64;
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            // The map guarantees the slot is live; a dead slot would mean a
            // corrupt map → slab link, checked by the audit in debug builds.
            debug_assert!(self.slab[idx as usize].is_some(), "mapped key in dead slot");
            if let Some(entry) = self.slab[idx as usize].as_mut() {
                let old = std::mem::replace(&mut entry.value, value);
                self.bytes = self.bytes - old.byte_size() as u64 + add;
                return Some(old);
            }
        }
        let idx = if let Some(i) = self.free.pop() {
            i
        } else {
            self.slab.push(None);
            (self.slab.len() - 1) as u32
        };
        self.slab[idx as usize] = Some(Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
        self.bytes += add;
        None
    }

    /// Remove `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let entry = self.slab[idx as usize].take()?;
        self.free.push(idx);
        self.bytes -= entry.value.byte_size() as u64;
        Some(entry.value)
    }

    /// Evict the least recently used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let entry = self.slab[idx as usize].take()?;
        self.unlink_taken(idx, entry.prev, entry.next);
        self.map.remove(&entry.key);
        self.free.push(idx);
        self.bytes -= entry.value.byte_size() as u64;
        Some((entry.key, entry.value))
    }

    /// Whether `key` is present (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Iterate over entries from most to least recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        LruIter {
            lru: self,
            cur: self.head,
        }
    }

    fn unlink(&mut self, idx: u32) {
        let Some((prev, next)) = self.slab[idx as usize].as_ref().map(|e| (e.prev, e.next)) else {
            return;
        };
        self.unlink_taken(idx, prev, next);
        if let Some(e) = self.slab[idx as usize].as_mut() {
            e.prev = NIL;
            e.next = NIL;
        }
    }

    fn unlink_taken(&mut self, idx: u32, prev: u32, next: u32) {
        if prev == NIL {
            if self.head == idx {
                self.head = next;
            }
        } else if let Some(p) = self.slab[prev as usize].as_mut() {
            p.next = next;
        }
        if next == NIL {
            if self.tail == idx {
                self.tail = prev;
            }
        } else if let Some(n) = self.slab[next as usize].as_mut() {
            n.prev = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        if let Some(e) = self.slab[idx as usize].as_mut() {
            e.prev = NIL;
            e.next = old_head;
        }
        // NIL (u32::MAX) is never a valid slab index, so the old head is
        // patched only when one exists.
        if let Some(h) = self
            .slab
            .get_mut(old_head as usize)
            .and_then(Option::as_mut)
        {
            h.prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: ByteSize> Default for Lru<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

struct LruIter<'a, K, V> {
    lru: &'a Lru<K, V>,
    cur: u32,
}

impl<'a, K, V> Iterator for LruIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let e = self
            .lru
            .slab
            .get(self.cur as usize)
            .and_then(Option::as_ref)?;
        self.cur = e.next;
        Some((&e.key, &e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        // Footprint accounting: each Vec value costs its 24-byte struct
        // header plus the buffer (see `ByteSize`).
        let hdr = std::mem::size_of::<Vec<u8>>() as u64;
        let mut l: Lru<u64, Vec<u8>> = Lru::new();
        assert!(l.is_empty());
        l.insert(1, vec![0; 10]);
        l.insert(2, vec![0; 20]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.bytes(), 2 * hdr + 30);
        assert_eq!(l.get(&1).map(Vec::len), Some(10));
        assert_eq!(l.remove(&1).map(|v| v.len()), Some(10));
        assert_eq!(l.bytes(), hdr + 20);
        assert_eq!(l.get(&1), None);
    }

    #[test]
    fn eviction_order_is_least_recently_used() {
        let mut l: Lru<u64, u64> = Lru::new();
        l.insert(1, 1);
        l.insert(2, 2);
        l.insert(3, 3);
        // Touch 1; order (MRU→LRU) is now 1, 3, 2.
        l.get(&1);
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(2));
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(3));
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(1));
        assert_eq!(l.pop_lru(), None);
        assert_eq!(l.bytes(), 0);
    }

    #[test]
    fn insert_touches_recency() {
        let mut l: Lru<u64, u64> = Lru::new();
        l.insert(1, 1);
        l.insert(2, 2);
        l.insert(1, 10); // replace = touch
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(2));
    }

    #[test]
    fn replacement_adjusts_bytes_and_returns_old() {
        let mut l: Lru<u64, Vec<u8>> = Lru::new();
        l.insert(5, vec![0; 100]);
        let old = l.insert(5, vec![0; 7]);
        assert_eq!(old.map(|v| v.len()), Some(100));
        let hdr = std::mem::size_of::<Vec<u8>>() as u64;
        assert_eq!(l.bytes(), hdr + 7);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut l: Lru<u64, u64> = Lru::new();
        l.insert(1, 1);
        l.insert(2, 2);
        assert_eq!(l.peek(&1), Some(&1));
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(1));
    }

    #[test]
    fn iter_mru_walks_recency_order() {
        let mut l: Lru<u64, u64> = Lru::new();
        for k in 0..5 {
            l.insert(k, k);
        }
        l.get(&0);
        let order: Vec<u64> = l.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![0, 4, 3, 2, 1]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut l: Lru<u64, u64> = Lru::new();
        for k in 0..100 {
            l.insert(k, k);
        }
        for k in 0..100 {
            l.remove(&k);
        }
        for k in 100..200 {
            l.insert(k, k);
        }
        assert_eq!(l.slab.len(), 100, "slab should not grow past peak");
        assert_eq!(l.len(), 100);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut l: Lru<u64, Vec<u8>> = Lru::new();
        let mut expected_bytes = 0u64;
        for i in 0..10_000u64 {
            let k = i % 97;
            let size = (i % 13) as usize;
            // Model the footprint accounting: `vec![0; size]` has
            // capacity == len, so its byte_size is header + size.
            let hdr = std::mem::size_of::<Vec<u8>>() as u64;
            if i % 5 == 0 {
                if let Some(v) = l.remove(&k) {
                    expected_bytes -= hdr + v.len() as u64;
                }
            } else if let Some(old) = l.insert(k, vec![0; size]) {
                expected_bytes = expected_bytes - old.len() as u64 + size as u64;
            } else {
                expected_bytes += hdr + size as u64;
            }
            assert_eq!(l.bytes(), expected_bytes, "at step {i}");
        }
        // Drain fully via pop_lru.
        while l.pop_lru().is_some() {}
        assert_eq!(l.bytes(), 0);
        assert!(l.is_empty());
    }

    #[test]
    fn contains_does_not_touch() {
        let mut l: Lru<u64, u64> = Lru::new();
        l.insert(1, 1);
        l.insert(2, 2);
        assert!(l.contains(&1));
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(1));
    }
}
