//! Asynchronous node preloading — the paper's §VI remedy for allocation
//! overhead, implemented.
//!
//! "Strategies, such as preloading and data replication can certainly be
//! used to implement an asynchronous node allocation."
//!
//! A warm pool keeps up to `target` standby instances booting (or booted)
//! in the background. When GBA needs a node as a last resort, a *ready*
//! standby is handed over instantly — no boot on the critical path — and
//! the pool replenishes itself asynchronously. Standbys bill from launch,
//! so the cost of the insurance is visible in the provider's invoice.

use ecc_cloudsim::{InstanceId, InstanceType, SimCloud};

/// A pool of pre-booted standby instances.
#[derive(Debug)]
pub struct WarmPool {
    target: usize,
    /// `(instance, ready_at_us)` — booted once the clock passes `ready_at`.
    standby: Vec<(InstanceId, u64)>,
}

impl WarmPool {
    /// A pool that tries to keep `target` standbys available.
    pub fn new(target: usize) -> Self {
        Self {
            target,
            standby: Vec::with_capacity(target),
        }
    }

    /// Configured pool size.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Standbys currently held (ready or still booting).
    pub fn len(&self) -> usize {
        self.standby.len()
    }

    /// Whether the pool holds no standbys.
    pub fn is_empty(&self) -> bool {
        self.standby.is_empty()
    }

    /// Standbys whose boot has completed by `now_us`.
    pub fn ready_count(&self, now_us: u64) -> usize {
        self.standby
            .iter()
            .filter(|(_, ready)| *ready <= now_us)
            .count()
    }

    /// Hand over a booted standby, if one exists. Prefers the one that has
    /// been ready longest (oldest `ready_at`).
    pub fn take_ready(&mut self, now_us: u64) -> Option<InstanceId> {
        let idx = self
            .standby
            .iter()
            .enumerate()
            .filter(|(_, (_, ready))| *ready <= now_us)
            .min_by_key(|(_, (_, ready))| *ready)
            .map(|(i, _)| i)?;
        Some(self.standby.swap_remove(idx).0)
    }

    /// Launch standbys until the pool is back at its target. Boots proceed
    /// in (virtual) background time — this never advances the clock.
    pub fn replenish(&mut self, cloud: &mut SimCloud, itype: &InstanceType) {
        while self.standby.len() < self.target {
            let receipt = cloud.allocate(itype.clone());
            self.standby.push((receipt.id, receipt.ready_at_us));
        }
    }

    /// Terminate every standby (shutdown / reconfiguration).
    pub fn drain(&mut self, cloud: &mut SimCloud) {
        for (id, _) in self.standby.drain(..) {
            cloud.deallocate(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_cloudsim::{BootLatency, SimClock};

    fn setup(target: usize) -> (SimClock, SimCloud, WarmPool) {
        let clock = SimClock::new();
        let cloud = SimCloud::new(clock.clone(), 1, BootLatency::fixed(5_000_000));
        (clock, cloud, WarmPool::new(target))
    }

    #[test]
    fn replenish_fills_to_target_without_blocking() {
        let (clock, mut cloud, mut pool) = setup(3);
        pool.replenish(&mut cloud, &InstanceType::ec2_small());
        assert_eq!(pool.len(), 3);
        assert_eq!(clock.now_us(), 0, "replenish must not advance the clock");
        // Nothing is ready until boots complete.
        assert_eq!(pool.ready_count(0), 0);
        assert!(pool.take_ready(0).is_none());
        clock.advance_us(5_000_000);
        assert_eq!(pool.ready_count(clock.now_us()), 3);
    }

    #[test]
    fn take_ready_hands_over_booted_standbys_oldest_first() {
        let (clock, mut cloud, mut pool) = setup(1);
        pool.replenish(&mut cloud, &InstanceType::ec2_small());
        clock.advance_us(5_000_000);
        let first = pool.take_ready(clock.now_us()).expect("ready");
        assert!(pool.is_empty());
        // Replenish launches a new, later-ready standby.
        pool.replenish(&mut cloud, &InstanceType::ec2_small());
        assert_ne!(pool.standby[0].0, first);
        assert!(pool.take_ready(clock.now_us()).is_none(), "still booting");
    }

    #[test]
    fn standbys_bill_from_launch() {
        let (clock, mut cloud, mut pool) = setup(2);
        pool.replenish(&mut cloud, &InstanceType::ec2_small());
        clock.advance_us(3600 * 1_000_000);
        let bill = cloud.billing();
        assert_eq!(bill.launched, 2);
        assert!(bill.microdollars >= 2 * 85_000, "standbys are not free");
    }

    #[test]
    fn drain_terminates_everything() {
        let (_clock, mut cloud, mut pool) = setup(4);
        pool.replenish(&mut cloud, &InstanceType::ec2_small());
        pool.drain(&mut cloud);
        assert!(pool.is_empty());
        assert_eq!(cloud.active_count(), 0);
    }

    #[test]
    fn zero_target_pool_is_inert() {
        let (_clock, mut cloud, mut pool) = setup(0);
        pool.replenish(&mut cloud, &InstanceType::ec2_small());
        assert!(pool.is_empty());
        assert_eq!(cloud.total_launched(), 0);
    }
}
