//! The fixed-fleet baseline ("static-2 / static-4 / static-8", paper
//! §IV-B): a cooperative cache over a *fixed* number of nodes, "comparable
//! to current cluster/grid environments, where the amounts of nodes one can
//! allocate is typically fixed", with per-node LRU replacement (the
//! memcached policy).
//!
//! Placement uses the same consistent-hash line as the elastic cache, with
//! one evenly spaced bucket per node — but the fleet never grows or
//! shrinks: on overflow a node displaces its least-recently-used records.

use ecc_bptree::ByteSize;
use ecc_chash::HashRing;
use ecc_cloudsim::{NetModel, SimClock, SimCloud};

use crate::config::CacheConfig;
use crate::lru::Lru;
use crate::metrics::Metrics;
use crate::record::Record;

/// Bytes of a lookup request on the wire (key + framing).
const LOOKUP_REQ_BYTES: u64 = 32;
/// Bytes of a negative lookup response.
const MISS_RESP_BYTES: u64 = 8;
/// Per-record key/framing overhead charged on the put path.
const RECORD_WIRE_OVERHEAD: u64 = 16;

/// A fixed-size cooperative LRU cache.
pub struct StaticCache {
    clock: SimClock,
    cloud: SimCloud,
    net: NetModel,
    ring: HashRing<usize>,
    nodes: Vec<Lru<u64, Record>>,
    capacity_bytes: u64,
    lookup_overhead_us: u64,
    metrics: Metrics,
}

impl StaticCache {
    /// Build a `n_nodes`-node static cache from the shared configuration
    /// (`node_capacity_bytes`, network and instance type are honoured; the
    /// window/contraction fields are ignored — this baseline never scales).
    ///
    /// All `n_nodes` instances are allocated up front, as a reserved
    /// cluster would be; their boot does not block queries.
    pub fn new(cfg: &CacheConfig, n_nodes: usize) -> Self {
        assert!(n_nodes >= 1, "need at least one node");
        cfg.validate();
        let clock = SimClock::new();
        let mut cloud = SimCloud::new(clock.clone(), cfg.seed, cfg.boot_latency);
        let mut ring = HashRing::new(cfg.ring_range);
        let mut nodes = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            // Boot latency is deliberately not charged: a reserved cluster
            // exists before the experiment starts.
            let _ = cloud.allocate(cfg.instance_type.clone());
            // Evenly spaced buckets; the last sits at r-1 so arcs tile the
            // line exactly.
            let pos = ((i as u64 + 1) * cfg.ring_range) / n_nodes as u64 - 1;
            let inserted = ring.insert_bucket(pos, i);
            debug_assert!(inserted.is_ok(), "evenly spaced positions are distinct");
            nodes.push(Lru::new());
        }
        Self {
            clock,
            cloud,
            net: cfg.net,
            ring,
            nodes,
            capacity_bytes: cfg.node_capacity_bytes,
            lookup_overhead_us: cfg.lookup_overhead_us,
            metrics: Metrics::new(),
        }
    }

    /// Number of nodes (fixed for the lifetime of the cache).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cloud provider (for billing comparisons against GBA).
    pub fn cloud(&self) -> &SimCloud {
        &self.cloud
    }

    /// Total records resident.
    pub fn total_records(&self) -> usize {
        self.nodes.iter().map(Lru::len).sum()
    }

    /// Total payload bytes resident.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(Lru::bytes).sum()
    }

    /// Full cached-service query, mirroring
    /// [`crate::ElasticCache::query`].
    pub fn query(&mut self, key: u64, uncached_us: u64, miss: impl FnOnce() -> Record) -> Record {
        let t0 = self.clock.now_us();
        self.metrics.baseline_us += uncached_us;
        self.metrics.queries += 1;
        // The ring is populated at construction and never shrinks; an empty
        // resolution degrades to a miss rather than a crash.
        let nid = self.ring.node_for_key(key).copied();
        self.clock.advance_us(self.lookup_overhead_us);
        let cached = nid
            .and_then(|n| self.nodes.get_mut(n))
            .and_then(|node| node.get(&key).cloned());
        if let Some(rec) = cached {
            self.clock
                .advance_us(self.net.rtt_us(LOOKUP_REQ_BYTES, rec.len() as u64));
            self.metrics.hits += 1;
            self.metrics.observed_us += self.clock.now_us() - t0;
            return rec;
        }
        self.clock
            .advance_us(self.net.rtt_us(LOOKUP_REQ_BYTES, MISS_RESP_BYTES));
        self.metrics.misses += 1;
        let rec = miss();
        self.clock.advance_us(uncached_us);
        self.metrics.service_us += uncached_us;
        self.insert(key, rec.clone());
        self.metrics.observed_us += self.clock.now_us() - t0;
        rec
    }

    /// Insert, displacing LRU records until the owning node fits. Records
    /// larger than a whole node are not cached.
    pub fn insert(&mut self, key: u64, record: Record) {
        // Displacement frees room for the *charged* footprint (what the
        // LRU's byte accounting will debit), while the wire transfer below
        // costs only the raw payload length.
        let size = record.byte_size() as u64;
        if size > self.capacity_bytes {
            return;
        }
        let Some(&nid) = self.ring.node_for_key(key) else {
            return;
        };
        self.clock.advance_us(
            self.net
                .transfer_us(record.len() as u64 + RECORD_WIRE_OVERHEAD),
        );
        let Some(node) = self.nodes.get_mut(nid) else {
            return;
        };
        // Replacement frees the old bytes first — but a *growing*
        // replacement can still overflow the node, so displacement runs in
        // both arms (after the overwrite for replacements, so the fresh
        // record is MRU and never displaces itself).
        let already = node.contains(&key);
        if already {
            node.insert(key, record);
            while node.bytes() > self.capacity_bytes {
                if node.pop_lru().is_none() {
                    // Over budget yet empty: corrupt byte accounting. Stop
                    // displacing rather than spinning forever.
                    break;
                }
                self.metrics.lru_evictions += 1;
            }
        } else {
            while node.bytes() + size > self.capacity_bytes {
                if node.pop_lru().is_none() {
                    break;
                }
                self.metrics.lru_evictions += 1;
            }
            node.insert(key, record);
        }
        debug_assert!(self.nodes[nid].bytes() <= self.capacity_bytes);
    }

    /// Look up without the service fallback.
    pub fn lookup(&mut self, key: u64) -> Option<Record> {
        let t0 = self.clock.now_us();
        self.metrics.queries += 1;
        let nid = self.ring.node_for_key(key).copied();
        self.clock.advance_us(self.lookup_overhead_us);
        let found = nid
            .and_then(|n| self.nodes.get_mut(n))
            .and_then(|node| node.get(&key).cloned());
        match &found {
            Some(rec) => {
                self.clock
                    .advance_us(self.net.rtt_us(LOOKUP_REQ_BYTES, rec.len() as u64));
                self.metrics.hits += 1;
            }
            None => {
                self.clock
                    .advance_us(self.net.rtt_us(LOOKUP_REQ_BYTES, MISS_RESP_BYTES));
                self.metrics.misses += 1;
            }
        }
        self.metrics.observed_us += self.clock.now_us() - t0;
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    /// A config whose nodes hold exactly `cap` of the 100-byte test
    /// records, in charged-footprint units (records are charged their
    /// slab slot size, not their raw length).
    fn cfg_records(cap: u64) -> CacheConfig {
        let mut c = CacheConfig::small_test();
        c.node_capacity_bytes = cap * crate::slab::footprint(100);
        c
    }

    #[test]
    fn fleet_is_fixed_and_preallocated() {
        let cache = StaticCache::new(&cfg_records(8), 4);
        assert_eq!(cache.node_count(), 4);
        assert_eq!(cache.cloud().billing().launched, 4);
    }

    #[test]
    fn hits_and_misses_count() {
        let mut cache = StaticCache::new(&cfg_records(8), 2);
        cache.query(1, 1000, || Record::filler(50));
        cache.query(1, 1000, || unreachable!());
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (1, 1));
        assert!(m.speedup() > 0.0);
    }

    #[test]
    fn capacity_is_enforced_by_lru_displacement() {
        // 2 nodes × 4 records; insert 40 distinct keys.
        let mut cache = StaticCache::new(&cfg_records(4), 2);
        for k in 0..40u64 {
            cache.insert(k * 25, Record::filler(100));
        }
        assert!(cache.total_records() <= 8);
        assert!(cache.total_bytes() <= 8 * crate::slab::footprint(100));
        assert!(cache.metrics().lru_evictions >= 32);
    }

    #[test]
    fn recently_used_records_survive_displacement() {
        let mut cache = StaticCache::new(&cfg_records(4), 1);
        for k in 0..4u64 {
            cache.insert(k, Record::filler(100));
        }
        // Touch key 0, then overflow by one: key 1 (LRU) goes, key 0 stays.
        assert!(cache.lookup(0).is_some());
        cache.insert(100, Record::filler(100));
        assert!(cache.lookup(0).is_some());
        assert!(cache.lookup(1).is_none());
    }

    #[test]
    fn keys_partition_across_nodes() {
        let mut cache = StaticCache::new(&cfg_records(1024), 4);
        for k in 0..200u64 {
            cache.insert(k * 5, Record::filler(10));
        }
        let per_node: Vec<usize> = cache.nodes.iter().map(Lru::len).collect();
        assert_eq!(per_node.iter().sum::<usize>(), 200);
        assert!(
            per_node.iter().all(|&n| n > 10),
            "uneven partition: {per_node:?}"
        );
    }

    #[test]
    fn steady_state_hit_rate_tracks_capacity_fraction() {
        // The analytical backbone of Figure 3: with uniform keys, the
        // steady-state hit rate of an LRU fleet ≈ fleet capacity / key
        // space.
        let mut cfg = cfg_records(64);
        cfg.ring_range = 512; // key space 512
        let mut cache = StaticCache::new(&cfg, 2); // 128 records total
        let mut rng_state = 12345u64;
        let mut hits_late = 0u64;
        let mut queries_late = 0u64;
        for i in 0..40_000u64 {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng_state >> 33) % 512;
            let before = cache.metrics().hits;
            cache.query(key, 1000, || Record::filler(100));
            if i > 20_000 {
                queries_late += 1;
                hits_late += cache.metrics().hits - before;
            }
        }
        let rate = hits_late as f64 / queries_late as f64;
        let expect = 128.0 / 512.0;
        assert!(
            (rate - expect).abs() < 0.05,
            "hit rate {rate:.3}, expected ≈ {expect:.3}"
        );
    }

    #[test]
    fn growing_replacement_displaces_lru_records() {
        // Regression (simtest static/7): replacements used to skip LRU
        // displacement entirely, overflowing the node. A 100 B → 250 B
        // replacement on a full 4-record node grows the charged footprint
        // past capacity, so it must displace the two least-recently-used
        // records and never the fresh one.
        let mut cache = StaticCache::new(&cfg_records(4), 1);
        for k in 0..4u64 {
            cache.insert(k, Record::filler(100));
        }
        cache.insert(3, Record::filler(250));
        assert!(cache.total_bytes() <= 4 * crate::slab::footprint(100));
        assert_eq!(cache.metrics().lru_evictions, 2);
        assert_eq!(cache.lookup(3).map(|r| r.len()), Some(250));
        assert!(cache.lookup(0).is_none(), "LRU key 0 should be displaced");
        assert!(cache.lookup(2).is_some(), "recent key 2 should survive");
    }

    #[test]
    fn oversized_records_are_skipped() {
        let mut cache = StaticCache::new(&cfg_records(4), 1);
        cache.insert(1, Record::filler(100_000));
        assert_eq!(cache.total_records(), 0);
    }
}
