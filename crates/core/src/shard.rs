//! Intra-node concurrency: a hash-striped, atomically-accounted cache
//! index for the wire server.
//!
//! The paper's cache nodes serve "a litany of simultaneous queries"
//! (§III); a single `Mutex<CacheNode>` serializes them all, so one slow
//! PUT stalls every concurrent GET on that node. [`ShardedNode`] removes
//! the global lock:
//!
//! * the key space is hash-striped over `stripes` independent B+-trees,
//!   each behind its own `RwLock`, so point ops on different stripes
//!   never contend and concurrent GETs of the same stripe share a read
//!   lock;
//! * byte/record accounting lives in atomics, so `Stats` never takes any
//!   lock and a PUT admission decision is a CAS reservation instead of a
//!   critical section;
//! * range and structural ops (sweep, keys, range-stats, drain) take a
//!   node-wide **structural** `RwLock` in write mode, which quiesces the
//!   point ops (they hold it in read mode) and lets the sweep walk the
//!   stripes in index order against a stable snapshot;
//! * payload bytes live in a per-node [`SlabArena`] (DESIGN.md §17):
//!   [`ShardedNode::put_slice`] copies the wire payload into a recycled
//!   size-class slot, so steady-state churn makes zero global-allocator
//!   calls, and `||n||` charges each record its **true footprint** —
//!   [`slab::footprint`]`(len)`, the slot size it really occupies — not
//!   its payload length. Oversize and pre-built heap records are charged
//!   the same pure function, so admission, the audit, and the simtest
//!   model all agree bit-exactly.
//!
//! `used_bytes` thus counts *logical residency*: records drained for
//! migration stop being charged when they leave the stripes, even though
//! their slots return to the freelist only when the migration batch drops
//! its handles.
//!
//! **Lock hierarchy** (documented in DESIGN.md §12): `structural` before
//! any stripe lock; stripe locks only in ascending stripe index; the slab
//! arena's per-class page/freelist mutexes are leaves below every stripe
//! (records drop — and free slots — while a stripe guard is held); the
//! accounting atomics participate in no lock order. Point ops hold
//! `structural.read` + exactly one stripe lock; structural ops hold
//! `structural.write` + stripes in ascending order, one at a time.

use std::sync::atomic::{AtomicU64, Ordering};

use ecc_bptree::BPlusTree;
use ecc_obs::ObsRegistry;
use parking_lot::RwLock;

use crate::lockorder::{self, LockClass};
use crate::metrics::NodeCounters;
use crate::record::Record;
use crate::slab::{self, ClassStats, SlabArena};

/// Default stripe count for the wire server (must be a power of two).
pub const DEFAULT_STRIPES: usize = 16;

/// Multiplicative (Fibonacci) hash spreading adjacent keys — which the
/// paper's range semantics make *likely* — across stripes.
#[inline]
fn stripe_of(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize & mask
}

/// Verdict of a capacity-checked insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The record was stored (insert or replacement).
    Stored,
    /// Refused: the byte *growth* would overflow the node (the replacement
    /// rule shared with `CacheNode`: replacing a record frees its bytes).
    Overflow,
}

/// What a [`ShardedNode::check_invariants`] audit found inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAuditError {
    /// The atomic byte counter disagrees with the stripes' actual total.
    UsedBytesMismatch {
        /// Value of the atomic accumulator.
        accounted: u64,
        /// Sum of record footprints over every stripe.
        actual: u64,
    },
    /// The atomic record counter disagrees with the stripes' actual total.
    RecordCountMismatch {
        /// Value of the atomic accumulator.
        accounted: u64,
        /// Number of records over every stripe.
        actual: u64,
    },
    /// Resident bytes exceed the configured capacity.
    OverCapacity {
        /// Resident bytes.
        used: u64,
        /// The capacity bound.
        capacity: u64,
    },
}

impl std::fmt::Display for ShardAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UsedBytesMismatch { accounted, actual } => {
                write!(f, "used-bytes atomic {accounted} != stripe total {actual}")
            }
            Self::RecordCountMismatch { accounted, actual } => {
                write!(
                    f,
                    "record-count atomic {accounted} != stripe total {actual}"
                )
            }
            Self::OverCapacity { used, capacity } => {
                write!(f, "node over capacity: {used} > {capacity}")
            }
        }
    }
}

impl std::error::Error for ShardAuditError {}

/// A cache-server index that scales with cores: hash-striped B+-trees,
/// atomic accounting, a slab payload arena, and a structural lock for
/// range ops.
pub struct ShardedNode {
    capacity_bytes: u64,
    mask: usize,
    /// Node-wide order point: read-held by point ops, write-held by
    /// range/structural ops. See the module docs for the lock hierarchy.
    structural: RwLock<()>,
    stripes: Box<[RwLock<BPlusTree<u64, Record>>]>,
    /// The node's payload arena: canonical size-class geometry, shared by
    /// every stripe (slots recycle across the whole node).
    arena: SlabArena,
    /// `||n||` — true footprint of resident records (slot sizes, not
    /// payload lengths); PUT admission CAS-reserves growth here *before*
    /// touching a stripe.
    used: AtomicU64,
    /// Resident record count.
    count: AtomicU64,
    counters: NodeCounters,
    /// When present, stripe/structural lock-acquisition waits are recorded
    /// as `lock_wait_us:{stripe,structural}` histograms.
    obs: Option<ObsRegistry>,
}

impl std::fmt::Debug for ShardedNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNode")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stripes", &self.stripe_count())
            .field("used", &self.used_bytes())
            .field("count", &self.record_count())
            .finish_non_exhaustive()
    }
}

impl ShardedNode {
    /// A node with `capacity_bytes` of usable memory, B+-trees of
    /// `btree_order`, and `stripes` hash stripes (rounded up to a power
    /// of two, minimum 1).
    pub fn new(capacity_bytes: u64, btree_order: usize, stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        let stripes: Vec<RwLock<BPlusTree<u64, Record>>> = (0..n)
            .map(|_| RwLock::new(BPlusTree::new(btree_order)))
            .collect();
        Self {
            capacity_bytes,
            mask: n - 1,
            structural: RwLock::new(()),
            stripes: stripes.into_boxed_slice(),
            arena: SlabArena::new(),
            used: AtomicU64::new(0),
            count: AtomicU64::new(0),
            counters: NodeCounters::new(),
            obs: None,
        }
    }

    /// Attach an observability registry; subsequent lock acquisitions
    /// record their wait time under `lock_wait_us:{stripe,structural}`.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsRegistry) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Number of hash stripes.
    pub fn stripe_count(&self) -> usize {
        self.mask + 1
    }

    /// `⌈n⌉` — the capacity in bytes (lock-free).
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// `||n||` — resident footprint bytes (lock-free).
    #[inline]
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Resident record count (lock-free).
    #[inline]
    pub fn record_count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Cumulative per-op counters (lock-free).
    pub fn counters(&self) -> &NodeCounters {
        &self.counters
    }

    /// The node's payload arena (diagnostics, tests).
    pub fn arena(&self) -> &SlabArena {
        &self.arena
    }

    /// Per-class slab occupancy (lock-free reads of relaxed counters).
    pub fn slab_stats(&self) -> Vec<ClassStats> {
        self.arena.class_stats()
    }

    /// Publish per-class slab occupancy as gauges on the attached
    /// registry (`slab_*:{slot_size}`); no-op when unobserved or when a
    /// class has never been used.
    pub fn export_slab_gauges(&self) {
        let Some(obs) = &self.obs else { return };
        for s in self.slab_stats() {
            if s.total_slots == 0 {
                continue;
            }
            obs.set_gauge(&format!("slab_total_slots:{}", s.slot_size), s.total_slots);
            obs.set_gauge(&format!("slab_live_slots:{}", s.slot_size), s.live_slots);
            obs.set_gauge(
                &format!("slab_live_payload_bytes:{}", s.slot_size),
                s.live_payload_bytes,
            );
            obs.set_gauge(&format!("slab_allocs:{}", s.slot_size), s.allocs);
        }
    }

    /// Record how long one lock acquisition waited.
    #[inline]
    fn note_wait(&self, name: &'static str, t0: Option<u64>) {
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.record(name, obs.now_us().saturating_sub(t0));
        }
    }

    /// Timestamp before a lock acquisition (None when unobserved).
    #[inline]
    fn wait_start(&self) -> Option<u64> {
        self.obs.as_ref().map(|o| o.now_us())
    }

    /// Open a `lock_wait` span under the caller's live span (the server's
    /// `srv_exec`), or `None` when the request is unsampled / untraced —
    /// the unsampled path costs one thread-local peek. The guard must be
    /// dropped as soon as the locks are acquired so the span measures
    /// waiting, not work done under the lock.
    #[inline]
    fn wait_span(&self) -> Option<ecc_obs::SpanGuard> {
        self.obs.as_ref().and_then(|o| o.span_follow("lock_wait"))
    }

    /// Look up a record; the returned clone shares the payload allocation
    /// (refcount bump, no memcpy). Takes `structural.read` + one stripe
    /// read lock — concurrent GETs never exclude each other.
    pub fn get(&self, key: u64) -> Option<Record> {
        let wait = self.wait_span();
        let t0 = self.wait_start();
        let _order_s = lockorder::acquire(LockClass::Structural);
        let _structural = self.structural.read();
        self.note_wait("lock_wait_us:structural", t0);
        let t1 = self.wait_start();
        let idx = stripe_of(key, self.mask);
        let _order_t = lockorder::acquire(LockClass::Stripe(idx));
        let stripe = self.stripes[idx].read();
        self.note_wait("lock_wait_us:stripe", t1);
        drop(wait);
        let found = stripe.get(&key).cloned();
        self.counters.note_get(found.is_some());
        found
    }

    /// Store a pre-built record (in-process callers, migration ingest).
    /// Charged its canonical footprint like every other record; payloads
    /// arriving as raw wire bytes should use [`ShardedNode::put_slice`],
    /// which lands them in the slab arena.
    pub fn put(&self, key: u64, record: Record) -> PutOutcome {
        self.put_inner(key, record.len(), move || record)
    }

    /// Copy `payload` into a slot of the node's arena and store it — the
    /// wire-ingest path. The slot is allocated only *after* the CAS
    /// admission reserves its footprint, so a refused PUT touches neither
    /// the arena nor the allocator.
    pub fn put_slice(&self, key: u64, payload: &[u8]) -> PutOutcome {
        self.put_inner(key, payload.len(), || {
            Record::alloc_in(&self.arena, payload)
        })
    }

    /// Store a record under the replacement-growth capacity rule: only the
    /// *footprint* growth over any existing record counts against
    /// capacity, and a growing replacement that no longer fits is refused
    /// with the old record left intact (and `make` never called).
    /// Admission is a CAS reservation on the byte atomic — concurrent
    /// PUTs on different stripes cannot jointly overshoot the capacity.
    fn put_inner(&self, key: u64, new_len: usize, make: impl FnOnce() -> Record) -> PutOutcome {
        let wait = self.wait_span();
        let t0 = self.wait_start();
        let _order_s = lockorder::acquire(LockClass::Structural);
        let _structural = self.structural.read();
        self.note_wait("lock_wait_us:structural", t0);
        let t1 = self.wait_start();
        let idx = stripe_of(key, self.mask);
        let _order_t = lockorder::acquire(LockClass::Stripe(idx));
        let mut stripe = self.stripes[idx].write();
        self.note_wait("lock_wait_us:stripe", t1);
        drop(wait);

        let new_fp = slab::footprint(new_len);
        // Stable while this stripe's write lock is held: all mutations of
        // `key` go through this stripe.
        let old_fp = stripe.get(&key).map(|r| slab::footprint(r.len()));
        let growth = new_fp.saturating_sub(old_fp.unwrap_or(0));
        if growth > 0 {
            let reserve = self
                .used
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |u| {
                    let grown = u.checked_add(growth)?;
                    (grown <= self.capacity_bytes).then_some(grown)
                });
            if reserve.is_err() {
                self.counters.note_overflow();
                return PutOutcome::Overflow;
            }
        }
        let shrink = old_fp.unwrap_or(0).saturating_sub(new_fp);
        if shrink > 0 {
            self.used.fetch_sub(shrink, Ordering::AcqRel);
        }
        // Replacement drops the old record here, returning its slot to
        // the class freelist — often the very slot `make` just took.
        if stripe.insert(key, make()).is_none() {
            self.count.fetch_add(1, Ordering::AcqRel);
        }
        self.counters.note_put();
        PutOutcome::Stored
    }

    /// Remove a record; returns it (payload shared, not copied — the slot
    /// outlives residency until the caller drops the handle).
    pub fn remove(&self, key: u64) -> Option<Record> {
        let wait = self.wait_span();
        let t0 = self.wait_start();
        let _order_s = lockorder::acquire(LockClass::Structural);
        let _structural = self.structural.read();
        self.note_wait("lock_wait_us:structural", t0);
        let t1 = self.wait_start();
        let idx = stripe_of(key, self.mask);
        let _order_t = lockorder::acquire(LockClass::Stripe(idx));
        let mut stripe = self.stripes[idx].write();
        self.note_wait("lock_wait_us:stripe", t1);
        drop(wait);
        let removed = stripe.remove(&key);
        if let Some(rec) = &removed {
            self.used
                .fetch_sub(slab::footprint(rec.len()), Ordering::AcqRel);
            self.count.fetch_sub(1, Ordering::AcqRel);
            self.counters.note_remove();
        }
        removed
    }

    /// Run `f` under the structural write lock — point ops are quiesced
    /// (they hold `structural.read`) for the duration.
    fn with_structural<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = self.wait_start();
        let _order_s = lockorder::acquire(LockClass::Structural);
        let _structural = self.structural.write();
        self.note_wait("lock_wait_us:structural", t0);
        f()
    }

    /// Remove and return all records in the inclusive key range, in key
    /// order — the destructive half of Sweep-and-Migrate (Algorithm 2).
    /// The drained records stop counting against `||n||` immediately;
    /// their slab slots recycle when the migration batch drops them.
    pub fn drain_range(&self, lo: u64, hi: u64) -> Vec<(u64, Record)> {
        self.with_structural(|| {
            let mut out: Vec<(u64, Record)> = Vec::new();
            for (i, stripe) in self.stripes.iter().enumerate() {
                let _order_t = lockorder::acquire(LockClass::Stripe(i));
                out.extend(stripe.write().drain_range(&lo, &hi));
            }
            let (bytes, records) = out.iter().fold((0u64, 0u64), |(b, n), (_, r)| {
                (b + slab::footprint(r.len()), n + 1)
            });
            self.used.fetch_sub(bytes, Ordering::AcqRel);
            self.count.fetch_sub(records, Ordering::AcqRel);
            self.counters.note_sweep();
            out.sort_unstable_by_key(|(k, _)| *k);
            out
        })
    }

    /// Keys in the inclusive range, in order (split planning).
    pub fn keys_in_range(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.with_structural(|| {
            let mut keys: Vec<u64> = Vec::new();
            for (i, stripe) in self.stripes.iter().enumerate() {
                let _order_t = lockorder::acquire(LockClass::Stripe(i));
                keys.extend(stripe.read().keys_in_range(lo..=hi));
            }
            keys.sort_unstable();
            keys
        })
    }

    /// `(bytes, records)` resident in the inclusive range, bytes in true
    /// footprint (bucket fullness `||b||` for the coordinator's split
    /// planning — the same unit as `used_bytes`).
    pub fn range_stats(&self, lo: u64, hi: u64) -> (u64, u64) {
        self.with_structural(|| {
            let mut bytes = 0u64;
            let mut records = 0u64;
            for (i, stripe) in self.stripes.iter().enumerate() {
                let _order_t = lockorder::acquire(LockClass::Stripe(i));
                let tree = stripe.read();
                for (_, r) in tree.range(lo..=hi) {
                    bytes += slab::footprint(r.len());
                    records += 1;
                }
            }
            (bytes, records)
        })
    }

    /// Verify that the atomic accounting matches the stripes' actual
    /// contents — `used` must equal the sum of true per-record footprints
    /// — and that capacity holds. Takes the structural write lock, so it
    /// sees a quiesced node.
    pub fn check_invariants(&self) -> Result<(), ShardAuditError> {
        self.with_structural(|| {
            let mut bytes = 0u64;
            let mut records = 0u64;
            for (i, stripe) in self.stripes.iter().enumerate() {
                let _order_t = lockorder::acquire(LockClass::Stripe(i));
                let tree = stripe.read();
                for (_, r) in tree.range(..) {
                    bytes += slab::footprint(r.len());
                    records += 1;
                }
            }
            let used = self.used.load(Ordering::Acquire);
            let count = self.count.load(Ordering::Acquire);
            if used != bytes {
                return Err(ShardAuditError::UsedBytesMismatch {
                    accounted: used,
                    actual: bytes,
                });
            }
            if count != records {
                return Err(ShardAuditError::RecordCountMismatch {
                    accounted: count,
                    actual: records,
                });
            }
            if used > self.capacity_bytes {
                return Err(ShardAuditError::OverCapacity {
                    used,
                    capacity: self.capacity_bytes,
                });
            }
            Ok(())
        })
    }

    /// Validate stripe B+-tree structure and accounting (tests; panics on
    /// violation like `CacheNode::validate`).
    pub fn validate(&self) {
        self.with_structural(|| {
            for (i, stripe) in self.stripes.iter().enumerate() {
                let _order_t = lockorder::acquire(LockClass::Stripe(i));
                stripe.read().validate();
            }
        });
        if let Err(e) = self.check_invariants() {
            panic!("sharded node audit failed: {e}"); // xtask: allow(no-panic) — validate() is the panicking audit wrapper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn point_ops_account_bytes_and_count() {
        // filler(300) needs 308 slot bytes → class 352 (footprint table).
        assert_eq!(slab::footprint(300), 352);
        let n = ShardedNode::new(1000, 8, 4);
        assert_eq!(n.put(1, Record::filler(300)), PutOutcome::Stored);
        assert_eq!(n.put(2, Record::filler(300)), PutOutcome::Stored);
        assert_eq!(n.used_bytes(), 704);
        assert_eq!(n.record_count(), 2);
        assert_eq!(n.get(1).map(|r| r.len()), Some(300));
        assert_eq!(n.get(99), None);
        assert_eq!(n.remove(1).map(|r| r.len()), Some(300));
        assert_eq!(n.remove(1), None);
        assert_eq!(n.used_bytes(), 352);
        assert_eq!(n.record_count(), 1);
        n.validate();
        let c = n.counters().snapshot();
        assert_eq!((c.gets, c.hits, c.puts, c.removes), (2, 1, 2, 1));
    }

    #[test]
    fn replacement_growth_rule_matches_cache_node() {
        // Footprints: 56 → 64, 150 → 176, 200 → 224, 10 → 64.
        let n = ShardedNode::new(200, 8, 4);
        assert_eq!(n.put(1, Record::filler(56)), PutOutcome::Stored);
        assert_eq!(n.used_bytes(), 64);
        // Growth within budget: 64 -> 176.
        assert_eq!(n.put(1, Record::filler(150)), PutOutcome::Stored);
        assert_eq!(n.used_bytes(), 176);
        // Growth past capacity (224 > 200): refused, old record intact.
        assert_eq!(n.put(1, Record::filler(200)), PutOutcome::Overflow);
        assert_eq!(n.get(1).map(|r| r.len()), Some(150));
        assert_eq!(n.used_bytes(), 176);
        // Shrinking replacement frees footprint.
        assert_eq!(n.put(1, Record::filler(10)), PutOutcome::Stored);
        assert_eq!(n.used_bytes(), 64);
        assert_eq!(n.counters().snapshot().overflows, 1);
        n.validate();
    }

    #[test]
    fn fresh_insert_past_capacity_is_refused() {
        // filler(60) occupies an 80-byte slot; two would need 160 > 100.
        let n = ShardedNode::new(100, 8, 2);
        assert_eq!(n.put(1, Record::filler(60)), PutOutcome::Stored);
        assert_eq!(n.put(2, Record::filler(60)), PutOutcome::Overflow);
        assert_eq!(n.get(2), None);
        assert_eq!(n.record_count(), 1);
        n.validate();
    }

    #[test]
    fn range_ops_span_stripes_in_key_order() {
        // filler(10) → 64-byte slot each.
        let n = ShardedNode::new(1 << 20, 8, 8);
        for k in 0..100u64 {
            assert_eq!(n.put(k, Record::filler(10)), PutOutcome::Stored);
        }
        assert_eq!(n.keys_in_range(95, 200), vec![95, 96, 97, 98, 99]);
        assert_eq!(n.range_stats(0, 49), (50 * 64, 50));
        let drained = n.drain_range(10, 19);
        assert_eq!(drained.len(), 10);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(n.record_count(), 90);
        assert_eq!(n.used_bytes(), 90 * 64);
        // Inverted range drains nothing.
        assert!(n.drain_range(50, 40).is_empty());
        n.validate();
    }

    #[test]
    fn get_clone_shares_the_payload() {
        let n = ShardedNode::new(1 << 20, 8, 4);
        let rec = Record::filler(4096);
        let ptr = rec.as_slice().as_ptr();
        n.put(7, rec);
        let hit = n.get(7).expect("present");
        assert!(std::ptr::eq(ptr, hit.as_slice().as_ptr()));
    }

    #[test]
    fn put_slice_lands_in_the_arena_and_hits_share_the_slot() {
        let n = ShardedNode::new(1 << 20, 8, 4);
        assert_eq!(n.put_slice(7, &[3u8; 100]), PutOutcome::Stored);
        assert_eq!(n.used_bytes(), slab::footprint(100));
        let hit = n.get(7).expect("present");
        assert!(hit.is_slab(), "wire ingest must land in the slab");
        assert_eq!(hit.as_slice(), &[3u8; 100][..]);
        let again = n.get(7).expect("present");
        assert!(std::ptr::eq(
            hit.as_slice().as_ptr(),
            again.as_slice().as_ptr()
        ));
        let live: u64 = n.slab_stats().iter().map(|s| s.live_slots).sum();
        assert_eq!(live, 1);
        n.validate();
    }

    #[test]
    fn replacement_recycles_the_old_slot() {
        let n = ShardedNode::new(1 << 20, 8, 4);
        for i in 0..1000u64 {
            assert_eq!(n.put_slice(42, &[i as u8; 100]), PutOutcome::Stored);
        }
        let stats = n.slab_stats();
        let class = stats.iter().find(|s| s.slot_size == 136).expect("class");
        assert_eq!(class.live_slots, 1, "churn must recycle, not accrete");
        assert_eq!(class.allocs, 1000);
        assert_eq!(class.pages, 1);
        // Removal returns the record; its slot frees when the handle drops.
        let removed = n.remove(42).expect("present");
        assert_eq!(n.used_bytes(), 0);
        let live: u64 = n.slab_stats().iter().map(|s| s.live_slots).sum();
        assert_eq!(live, 1, "the drained handle still pins its slot");
        drop(removed);
        let live: u64 = n.slab_stats().iter().map(|s| s.live_slots).sum();
        assert_eq!(live, 0);
        n.validate();
    }

    #[test]
    fn oversize_put_slice_falls_back_to_heap_with_true_footprint() {
        let payload = vec![9u8; 100_000];
        let n = ShardedNode::new(1 << 20, 8, 4);
        assert_eq!(n.put_slice(1, &payload), PutOutcome::Stored);
        let hit = n.get(1).expect("present");
        assert!(!hit.is_slab(), "oversize bypasses the class table");
        assert_eq!(hit.len(), 100_000);
        // Charged header + alignment, exactly like the pure footprint fn.
        assert_eq!(n.used_bytes(), slab::footprint(100_000));
        assert_eq!(n.used_bytes(), 100_008);
        n.validate();
    }

    #[test]
    fn refused_put_slice_touches_neither_arena_nor_accounting() {
        let n = ShardedNode::new(100, 8, 2);
        assert_eq!(n.put_slice(1, &[1u8; 60]), PutOutcome::Stored);
        assert_eq!(n.put_slice(2, &[2u8; 60]), PutOutcome::Overflow);
        let allocs: u64 = n.slab_stats().iter().map(|s| s.allocs).sum();
        assert_eq!(allocs, 1, "the refused PUT must not allocate a slot");
        assert_eq!(n.used_bytes(), 80);
        n.validate();
    }

    #[test]
    fn concurrent_puts_cannot_jointly_overshoot_capacity() {
        // 8 threads race 200 distinct 56-byte inserts (64-byte slots) into
        // a node with room for exactly 100 of them; the CAS reservation
        // must admit at most 100 and the audit must balance.
        let n = Arc::new(ShardedNode::new(6400, 8, 8));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let n = Arc::clone(&n);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let _ = n.put_slice(t * 1000 + i, &[7u8; 56]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer");
        }
        assert!(n.used_bytes() <= 6400);
        assert_eq!(n.used_bytes(), n.record_count() * 64);
        n.check_invariants().expect("audit");
    }

    #[test]
    fn stats_need_no_locks_while_a_sweep_runs() {
        let n = Arc::new(ShardedNode::new(1 << 20, 8, 4));
        for k in 0..512u64 {
            n.put(k, Record::filler(32));
        }
        let reader = {
            let n = Arc::clone(&n);
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    let used = n.used_bytes();
                    let count = n.record_count();
                    assert!(used <= n.capacity_bytes());
                    assert!(count <= 512);
                }
            })
        };
        for _ in 0..16 {
            let drained = n.drain_range(0, 511);
            for (k, r) in drained {
                n.put(k, r);
            }
        }
        reader.join().expect("reader");
        n.check_invariants().expect("audit");
    }
}
