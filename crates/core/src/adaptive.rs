//! Dynamic window sizing — the paper's §IV-C/§VI future work, implemented.
//!
//! "There may be merit in managing this value [the sliding-window size m]
//! dynamically to reduce unnecessary (or less cost-effective) node
//! allocation."
//!
//! The controller watches the per-slice query rate against an exponential
//! moving average. Heightened interest (rate well above trend) widens the
//! window, so the burst's keys stay cached and the cache behaves like the
//! paper's large-m configurations; waning interest narrows it, expiring
//! slices early so contraction can release nodes sooner — the
//! cost-saving behaviour of small m, applied exactly when it is cheap.

use serde::{Deserialize, Serialize};

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveWindowConfig {
    /// Smallest window the controller may shrink to.
    pub min_slices: usize,
    /// Largest window the controller may grow to.
    pub max_slices: usize,
    /// Widen when `rate / ema > grow_ratio`.
    pub grow_ratio: f64,
    /// Narrow when `rate / ema < shrink_ratio`.
    pub shrink_ratio: f64,
    /// Proportional resize step (fraction of the current m, at least 1).
    pub step_frac: f64,
    /// EMA smoothing factor in `(0, 1]` (1 = no smoothing).
    pub ema_weight: f64,
}

impl AdaptiveWindowConfig {
    /// A balanced default: m free to move in `[25, 400]`, reacting to
    /// 2× rate swings with 25 % steps.
    pub fn default_paper_range() -> Self {
        Self {
            min_slices: 25,
            max_slices: 400,
            grow_ratio: 2.0,
            shrink_ratio: 0.5,
            step_frac: 0.25,
            ema_weight: 0.2,
        }
    }

    /// Panics if parameters are outside their valid domains.
    pub fn validate(&self) {
        assert!(self.min_slices >= 1, "min window must be >= 1 slice");
        assert!(self.min_slices <= self.max_slices, "window bounds inverted");
        assert!(self.grow_ratio > 1.0, "grow ratio must exceed 1");
        assert!(
            self.shrink_ratio > 0.0 && self.shrink_ratio < 1.0,
            "shrink ratio must be in (0, 1)"
        );
        assert!(self.step_frac > 0.0, "step must be positive");
        assert!(
            self.ema_weight > 0.0 && self.ema_weight <= 1.0,
            "EMA weight must be in (0, 1]"
        );
    }
}

/// The rate-tracking controller. Feed it the query count of each completed
/// slice; it answers with the window size to use next.
#[derive(Debug, Clone)]
pub struct WindowController {
    cfg: AdaptiveWindowConfig,
    ema: Option<f64>,
}

impl WindowController {
    /// A controller with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: AdaptiveWindowConfig) -> Self {
        cfg.validate();
        Self { cfg, ema: None }
    }

    /// The current rate trend (queries/slice), if any slices have been
    /// observed.
    pub fn trend(&self) -> Option<f64> {
        self.ema
    }

    /// Observe a completed slice's query count and return the window size
    /// to use from now on (clamped to the configured bounds).
    pub fn observe(&mut self, slice_queries: u64, current_m: usize) -> usize {
        let rate = slice_queries as f64;
        let trend = match self.ema {
            None => {
                self.ema = Some(rate);
                return current_m.clamp(self.cfg.min_slices, self.cfg.max_slices);
            }
            Some(e) => e,
        };
        // Update the trend after comparing against it.
        self.ema = Some(trend + self.cfg.ema_weight * (rate - trend));

        let step = ((current_m as f64 * self.cfg.step_frac) as usize).max(1);
        let ratio = if trend > 0.0 {
            rate / trend
        } else {
            f64::INFINITY
        };
        let next = if ratio >= self.cfg.grow_ratio {
            current_m.saturating_add(step)
        } else if ratio <= self.cfg.shrink_ratio {
            current_m.saturating_sub(step)
        } else {
            current_m
        };
        next.clamp(self.cfg.min_slices, self.cfg.max_slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> WindowController {
        WindowController::new(AdaptiveWindowConfig {
            min_slices: 10,
            max_slices: 100,
            grow_ratio: 2.0,
            shrink_ratio: 0.5,
            step_frac: 0.5,
            ema_weight: 0.5,
        })
    }

    #[test]
    fn steady_rate_keeps_m() {
        let mut c = controller();
        let mut m = 20;
        for _ in 0..50 {
            m = c.observe(100, m);
        }
        assert_eq!(m, 20);
        assert!((c.trend().unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn rate_surge_grows_the_window() {
        let mut c = controller();
        let mut m = 20;
        for _ in 0..10 {
            m = c.observe(50, m);
        }
        m = c.observe(500, m); // 10x surge
        assert!(m > 20, "no growth on surge");
    }

    #[test]
    fn rate_collapse_shrinks_the_window() {
        let mut c = controller();
        let mut m = 40;
        for _ in 0..10 {
            m = c.observe(250, m);
        }
        m = c.observe(10, m);
        assert!(m < 40, "no shrink on collapse");
    }

    #[test]
    fn bounds_are_respected() {
        let mut c = controller();
        let mut m = 90;
        // Sustained surges cannot exceed max.
        for i in 0..20u64 {
            m = c.observe(1000 * (i + 1), m);
            assert!(m <= 100);
        }
        // Sustained collapses cannot undershoot min.
        let mut c = controller();
        let mut m = 15;
        c.observe(10_000, m);
        for _ in 0..20 {
            m = c.observe(0, m);
            assert!(m >= 10);
        }
        assert_eq!(m, 10);
    }

    #[test]
    fn first_observation_only_seeds_the_trend() {
        let mut c = controller();
        assert_eq!(c.observe(1_000_000, 20), 20);
        assert_eq!(c.trend(), Some(1_000_000.0));
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_rejected() {
        WindowController::new(AdaptiveWindowConfig {
            min_slices: 50,
            max_slices: 10,
            ..AdaptiveWindowConfig::default_paper_range()
        });
    }
}
