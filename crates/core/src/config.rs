//! Cache configuration (the paper's tunables in one place).
//!
//! This module doubles as the reproduction of the paper's **Table I**
//! (identifier glossary) — each field documents the identifier it realizes:
//!
//! | Paper identifier | Here |
//! |---|---|
//! | `r` (hash-line range of `h'`) | [`CacheConfig::ring_range`] |
//! | `⌈n⌉` (node capacity) | [`CacheConfig::node_capacity_bytes`] |
//! | `α` (eviction decay) | [`WindowConfig::alpha`] |
//! | `m` (sliding-window slices) | [`WindowConfig::slices`] |
//! | `T_λ` (eviction threshold) | [`WindowConfig::threshold`] |
//! | `ε` (contraction cadence) | [`CacheConfig::contraction_epsilon`] |
//! | merge threshold (65 %) | [`CacheConfig::merge_fill_threshold`] |

use ecc_cloudsim::{BootLatency, InstanceType, NetModel, StorageTier};
use serde::{Deserialize, Serialize};

use crate::adaptive::AdaptiveWindowConfig;

/// Sliding-window eviction parameters (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// `m` — number of time slices the window retains.
    pub slices: usize,
    /// `α` — the decay, `0 < α < 1`.
    pub alpha: f64,
    /// `T_λ` — eviction threshold; `None` uses the paper's baseline
    /// `α^(m-1)`, which never evicts a key queried at least once within the
    /// window.
    pub threshold: Option<f64>,
}

impl WindowConfig {
    /// The paper's eviction-experiment setting: `α = 0.99`,
    /// `T_λ = α^(m-1)`.
    pub fn paper(slices: usize) -> Self {
        Self {
            slices,
            alpha: 0.99,
            threshold: None,
        }
    }

    /// The effective threshold value.
    pub fn effective_threshold(&self) -> f64 {
        self.threshold
            .unwrap_or_else(|| self.alpha.powi(self.slices as i32 - 1))
    }

    /// Panics if parameters are outside their valid domains.
    pub fn validate(&self) {
        assert!(self.slices >= 1, "window needs at least one slice");
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "decay must be in (0, 1)"
        );
        if let Some(t) = self.threshold {
            assert!(t >= 0.0 && t.is_finite(), "threshold must be >= 0");
        }
    }
}

/// Full configuration of an [`crate::ElasticCache`] (and, where fields
/// apply, a [`crate::StaticCache`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// `r` — the hash line is `[0, ring_range)`. Must be at least the key
    /// space size so `h'` stays injective on keys (contiguous key ranges ↔
    /// contiguous arcs).
    pub ring_range: u64,
    /// `⌈n⌉` — usable cache memory per node in bytes. The paper never
    /// states this; experiments derive it from the static-N convergence
    /// speedups (see EXPERIMENTS.md).
    pub node_capacity_bytes: u64,
    /// Branching factor of each node's B+-tree index.
    pub btree_order: usize,
    /// Machine type allocated for cache nodes.
    pub instance_type: InstanceType,
    /// Node allocation (boot) latency model.
    pub boot_latency: BootLatency,
    /// Coordinator ↔ node and node ↔ node network model (`T_net`).
    pub net: NetModel,
    /// Contraction merges the two least-loaded nodes only when their
    /// combined data fits within this fraction of one node's capacity
    /// (paper: 65 %, for churn avoidance).
    pub merge_fill_threshold: f64,
    /// `ε` — attempt contraction every `ε` slice expirations.
    pub contraction_epsilon: u64,
    /// Eviction window; `None` is the infinite window of the Figure 3
    /// experiments (no eviction, no contraction).
    pub window: Option<WindowConfig>,
    /// Never contract below this many nodes.
    pub min_nodes: usize,
    /// Fixed coordination/index overhead charged per lookup, microseconds.
    pub lookup_overhead_us: u64,
    /// Seed for the provider's boot-latency jitter.
    pub seed: u64,
    /// Standby instances to keep pre-booting so splits never block on
    /// allocation (§VI asynchronous preloading); `0` disables the pool —
    /// the paper's evaluated configuration.
    pub warm_pool: usize,
    /// Proactively split any node whose fill exceeds this fraction at a
    /// time-step boundary, off the query critical path (§VI "record
    /// prefetching from a node that is predictably close to invoking
    /// migration"). `None` disables — the paper's evaluated configuration.
    pub proactive_split_fill: Option<f64>,
    /// Dynamic window sizing (§VI future work); `None` keeps `m` fixed.
    /// Requires `window` to be set.
    pub adaptive_window: Option<AdaptiveWindowConfig>,
    /// Best-effort replication (§VI "data replication"): every primary
    /// insertion also places a replica in the spare capacity of the next
    /// distinct node on the ring, making node failure mostly lossless.
    /// `false` is the paper's evaluated configuration.
    pub replicate: bool,
    /// Persistent overflow tier (§IV-D, S3/EBS): evicted records are
    /// written to cloud storage, and a memory miss checks the tier before
    /// re-running the 23 s service. `None` is the paper's evaluated
    /// configuration (re-derive on every miss).
    pub overflow_tier: Option<StorageTier>,
}

impl CacheConfig {
    /// The configuration used by the paper-scale experiments: 64 Ki-key
    /// hash line, EC2 Small nodes booting in 70–110 s, LAN-class network,
    /// 65 % merge threshold, `ε = 5`.
    ///
    /// `node_capacity_bytes` defaults to 4096 records × 1 KiB; figure
    /// harnesses override capacity and window per experiment.
    pub fn paper_default() -> Self {
        Self {
            ring_range: 1 << 16,
            node_capacity_bytes: 4096 * 1024,
            btree_order: 64,
            instance_type: InstanceType::ec2_small(),
            boot_latency: BootLatency::ec2_like(),
            net: NetModel::lan(),
            merge_fill_threshold: 0.65,
            contraction_epsilon: 5,
            window: None,
            min_nodes: 1,
            lookup_overhead_us: 200,
            seed: 0x5EED,
            warm_pool: 0,
            proactive_split_fill: None,
            adaptive_window: None,
            replicate: false,
            overflow_tier: None,
        }
    }

    /// A tiny deterministic configuration for unit tests and doctests:
    /// 1 Ki-key line, 4 KiB nodes, instant boot, instant network.
    pub fn small_test() -> Self {
        Self {
            ring_range: 1024,
            node_capacity_bytes: 4096,
            btree_order: 8,
            instance_type: InstanceType::custom("test.nano", 4096, 1000),
            boot_latency: BootLatency::instant(),
            net: NetModel::instant(),
            merge_fill_threshold: 0.65,
            contraction_epsilon: 1,
            window: None,
            min_nodes: 1,
            lookup_overhead_us: 0,
            seed: 7,
            warm_pool: 0,
            proactive_split_fill: None,
            adaptive_window: None,
            replicate: false,
            overflow_tier: None,
        }
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.ring_range > 0, "ring range must be positive");
        assert!(self.node_capacity_bytes > 0, "capacity must be positive");
        assert!(self.btree_order >= 4, "B+-tree order must be >= 4");
        assert!(
            self.merge_fill_threshold > 0.0 && self.merge_fill_threshold <= 1.0,
            "merge threshold must be in (0, 1]"
        );
        assert!(self.contraction_epsilon >= 1, "epsilon must be >= 1");
        assert!(self.min_nodes >= 1, "must keep at least one node");
        if let Some(w) = &self.window {
            w.validate();
        }
        if let Some(f) = self.proactive_split_fill {
            assert!(
                f > 0.0 && f < 1.0,
                "proactive split fill must be a fraction in (0, 1)"
            );
        }
        if let Some(a) = &self.adaptive_window {
            assert!(
                self.window.is_some(),
                "adaptive window sizing requires an eviction window"
            );
            a.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CacheConfig::paper_default().validate();
        CacheConfig::small_test().validate();
    }

    #[test]
    fn baseline_threshold_is_alpha_to_m_minus_1() {
        let w = WindowConfig::paper(100);
        let expect = 0.99f64.powi(99);
        assert!((w.effective_threshold() - expect).abs() < 1e-12);
        // Paper: for m = 100, α = 0.99 this is ≈ 0.3697.
        assert!((w.effective_threshold() - 0.3697).abs() < 0.001);
    }

    #[test]
    fn explicit_threshold_wins() {
        let w = WindowConfig {
            slices: 10,
            alpha: 0.9,
            threshold: Some(0.5),
        };
        assert_eq!(w.effective_threshold(), 0.5);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1)")]
    fn alpha_one_rejected() {
        WindowConfig {
            slices: 10,
            alpha: 1.0,
            threshold: None,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "merge threshold")]
    fn bad_merge_threshold_rejected() {
        let mut c = CacheConfig::small_test();
        c.merge_fill_threshold = 0.0;
        c.validate();
    }
}
