//! Cache error types.

use std::fmt;

/// Errors surfaced by cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A record larger than a whole node's capacity can never be cached.
    RecordTooLarge {
        /// The record's size.
        size: u64,
        /// The per-node capacity.
        capacity: u64,
    },
    /// A key at or above the hash-line range `r` would break the
    /// contiguous-arc ⇔ contiguous-key-range correspondence that
    /// Sweep-and-Migrate depends on.
    KeyOutOfRange {
        /// The offending key.
        key: u64,
        /// The hash-line range.
        r: u64,
    },
    /// A bucket could not be split further (single distinct key) and the
    /// node still overflows.
    CannotSplit {
        /// The bucket that resisted splitting.
        bucket: u64,
    },
    /// GBA-Insert looped more than the sanity bound without converging —
    /// indicates a mis-configured capacity far below the record size.
    SplitLoopExceeded,
    /// The coordinator's cross-structure bookkeeping was found inconsistent
    /// mid-operation (e.g. the ring resolved a key to an inactive node).
    /// Always a bug in this crate, never a caller error — surfaced as a
    /// typed value so a long-running cache degrades instead of aborting.
    Internal {
        /// The invariant the coordinator expected to hold.
        what: &'static str,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RecordTooLarge { size, capacity } => {
                write!(f, "record of {size} B exceeds node capacity {capacity} B")
            }
            Self::KeyOutOfRange { key, r } => {
                write!(f, "key {key} outside hash line [0, {r})")
            }
            Self::CannotSplit { bucket } => {
                write!(f, "bucket {bucket} cannot be split further")
            }
            Self::SplitLoopExceeded => write!(f, "GBA-insert split loop exceeded sanity bound"),
            Self::Internal { what } => {
                write!(f, "internal cache invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_helpfully() {
        let e = CacheError::RecordTooLarge {
            size: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("10 B"));
        assert!(CacheError::KeyOutOfRange { key: 9, r: 4 }
            .to_string()
            .contains("[0, 4)"));
        assert!(CacheError::CannotSplit { bucket: 3 }
            .to_string()
            .contains("3"));
        assert!(!CacheError::SplitLoopExceeded.to_string().is_empty());
        assert!(CacheError::Internal { what: "probe" }
            .to_string()
            .contains("probe"));
    }
}
