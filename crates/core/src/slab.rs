//! Size-class record slabs: the node's payload arena (DESIGN.md §17).
//!
//! The B+-tree indexes records, but the payload bytes themselves used to
//! live wherever the network layer happened to allocate them — one global
//! heap allocation per PUT, freed on eviction, with the allocator's
//! per-chunk bookkeeping invisible to the cache's `||n||` accounting. A
//! memcached-style slab arena replaces that:
//!
//! * payload memory is carved from per-class **pages**; each class serves
//!   one slot size, and classes grow geometrically (×1.25 by default)
//!   from 64 B to 64 KiB, so internal fragmentation is bounded at ~25 %;
//! * freed slots go onto a per-class **freelist** and are recycled, so a
//!   node in steady state (hit/replace churn at stable occupancy) makes
//!   **zero global-allocator calls** on the GET/PUT path — asserted by
//!   the counting allocator in `ecc-bench`;
//! * every slot is **refcounted** in its header, so a [`SlabRef`] clone —
//!   a cache hit handed to a response, a migration batch entry — is a
//!   refcount bump, and the slot returns to the freelist only when the
//!   last handle drops;
//! * [`footprint`] is the *pure* size function shared by the live engine,
//!   the admission CAS in `ShardedNode`, and the simtest model oracle:
//!   the bytes a record truly occupies (its class's slot size, header
//!   included), not its payload length.
//!
//! # Slot layout and safety argument
//!
//! Each slot is `[refcount: AtomicU32][len: u32][payload …]`, 8-aligned;
//! [`SLOT_HEADER`] = 8. The `unsafe` below is confined to this module and
//! rests on one state machine per slot:
//!
//! * **free** — the slot's pointer is on its class freelist; refcount is
//!   0; nobody reads or writes it.
//! * **owned** — exactly one thread popped it from the freelist and is
//!   writing header + payload; no other thread can reach it (the pointer
//!   is in no shared structure).
//! * **live** — the owner published it by storing refcount = 1
//!   (`Release`); every reader got its [`SlabRef`] via a happens-after
//!   edge (the stripe lock of the tree that stores the [`Record`], or a
//!   `Clone` of an existing handle), so the payload write is visible.
//!   Clones bump the refcount (`Relaxed` — same argument as `Arc`);
//!   the final `Drop` does a `Release` decrement followed by an
//!   `Acquire` fence before pushing the slot back to the freelist.
//!
//! Pages are never freed while the arena lives (slots recycle instead),
//! and every `SlabRef` holds an `Arc` on the arena, so a live slot
//! pointer cannot dangle.

#![allow(unsafe_code)]

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::lockorder::{self, LockClass};

/// Bytes of slot header preceding the payload: `[AtomicU32 refcount][u32 len]`.
pub const SLOT_HEADER: usize = 8;

/// Smallest slot size (header included): one cache-line worth of record.
pub const MIN_SLOT: usize = 64;

/// Slot-size bound: the class table stops at the first size ≥ 64 KiB;
/// longer payloads fall back to one-off heap allocations.
pub const MAX_SLOT: usize = 64 * 1024;

/// Canonical geometric growth between adjacent classes, in percent.
pub const GROWTH_PCT: usize = 25;

/// Target page size: each class allocates pages of about this many bytes
/// and carves them into slots (large classes get one slot per page).
const PAGE_BYTES: usize = 64 * 1024;

/// Round up to the arena's 8-byte slot alignment.
const fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// The real resident footprint of a payload of `len` bytes under the
/// canonical class geometry: the slot size (header included) of the
/// smallest class that fits it, or `align8(len + 8)` for oversize
/// payloads that bypass the arena. Pure and shared verbatim by the
/// admission CAS, the invariant auditor, and the simtest model — the
/// differential oracles stay bit-exact because all three call this.
pub const fn footprint(len: usize) -> u64 {
    let need = len + SLOT_HEADER;
    // Largest canonical class: first recurrence value ≥ MAX_SLOT.
    let mut last = MIN_SLOT;
    while last < MAX_SLOT {
        last = align8(last + last * GROWTH_PCT / 100);
    }
    if need > last {
        return align8(need) as u64;
    }
    let mut s = MIN_SLOT;
    while s < need {
        s = align8(s + s * GROWTH_PCT / 100);
    }
    s as u64
}

/// The slot-size table of one arena: geometrically growing size classes.
#[derive(Debug, Clone)]
pub struct SizeClasses {
    /// Ascending slot sizes, header included; the last entry is the first
    /// recurrence value ≥ the configured maximum.
    sizes: Vec<usize>,
}

impl SizeClasses {
    /// A class table growing from `min_slot` by `growth_pct` percent per
    /// class until the first size ≥ `max_slot` (inclusive). Sizes are
    /// rounded up to 8-byte alignment.
    pub fn new(min_slot: usize, max_slot: usize, growth_pct: usize) -> Self {
        assert!(
            min_slot >= SLOT_HEADER + 8 && min_slot.is_multiple_of(8),
            "minimum slot must hold the header plus one aligned word"
        );
        assert!(max_slot >= min_slot, "class table bounds inverted");
        assert!(growth_pct >= 1, "growth factor must be > 1.0");
        let mut sizes = Vec::with_capacity(48);
        let mut s = min_slot;
        loop {
            sizes.push(s);
            if s >= max_slot {
                break;
            }
            s = align8(s + s * growth_pct / 100);
        }
        Self { sizes }
    }

    /// The canonical geometry: 64 B … 64 KiB, ×1.25 — exactly what the
    /// pure [`footprint`] function models.
    pub fn canonical() -> Self {
        Self::new(MIN_SLOT, MAX_SLOT, GROWTH_PCT)
    }

    /// Number of classes.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Slot size (header included) of class `idx`.
    pub fn slot_size(&self, idx: usize) -> usize {
        self.sizes[idx]
    }

    /// Index of the smallest class whose payload capacity fits `len`
    /// bytes, or `None` when the payload is oversize for this table.
    pub fn index_for(&self, len: usize) -> Option<usize> {
        let need = len + SLOT_HEADER;
        let idx = self.sizes.partition_point(|&s| s < need);
        (idx < self.sizes.len()).then_some(idx)
    }

    /// Real footprint of a `len`-byte payload under this table: the class
    /// slot size, or `align8(len + 8)` for oversize payloads.
    pub fn footprint(&self, len: usize) -> u64 {
        match self.index_for(len) {
            Some(idx) => self.sizes[idx] as u64,
            None => align8(len + SLOT_HEADER) as u64,
        }
    }
}

/// One page of raw slot memory. The allocation is 8-aligned and owned by
/// the `Page`; slots inside it are handed out via raw pointers, so the
/// page must never move or be freed while the arena lives (the `Vec<Page>`
/// may reallocate — that moves this struct, not the pointed-to memory).
struct Page {
    base: *mut u8,
    layout: std::alloc::Layout,
}

impl Page {
    fn new(bytes: usize) -> Self {
        // Infallible by construction: bytes is a small multiple of a
        // class slot size and 8 divides it.
        let layout = match std::alloc::Layout::from_size_align(bytes, 8) {
            Ok(l) => l,
            Err(_) => std::alloc::Layout::new::<u64>(),
        };
        // SAFETY: layout has non-zero size (bytes >= MIN_SLOT).
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "slab page allocation failed");
        Self { base, layout }
    }
}

impl Drop for Page {
    fn drop(&mut self) {
        // SAFETY: base came from alloc with exactly this layout, and the
        // arena only drops pages when no SlabRef can reach them (every
        // handle holds the Arc keeping the arena alive).
        unsafe { std::alloc::dealloc(self.base, self.layout) };
    }
}

/// Per-class state: the freelist of slot pointers, the pages backing
/// them, and relaxed statistics counters (occupancy gauges).
struct ClassState {
    slot_size: usize,
    slots_per_page: usize,
    /// Free slot base pointers (each points at a slot header).
    free: Mutex<Vec<*mut u8>>,
    /// Backing pages; only ever pushed to, popped at arena drop.
    pages: Mutex<Vec<Page>>,
    /// Slots carved out of all pages so far.
    total_slots: AtomicU64,
    /// Slots currently live (allocated, not yet back on the freelist).
    live_slots: AtomicU64,
    /// Sum of payload lengths over live slots (fragmentation gauge).
    live_payload: AtomicU64,
    /// Cumulative allocations served (the per-class allocation histogram).
    allocs: AtomicU64,
}

// SAFETY: the raw pointers in `free`/`pages` refer to page memory owned by
// this same struct; all mutation of slot contents follows the free → owned
// → live protocol in the module docs, and both containers sit behind
// mutexes. Sharing the struct across threads is exactly the intended use.
unsafe impl Send for ClassState {}
unsafe impl Sync for ClassState {}

struct ArenaInner {
    sizes: SizeClasses,
    classes: Box<[ClassState]>,
}

/// Per-class occupancy read-out; one row of `SlabArena::class_stats`.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// Slot size of this class, header included.
    pub slot_size: usize,
    /// Pages allocated for this class.
    pub pages: u64,
    /// Slots carved out of those pages.
    pub total_slots: u64,
    /// Slots currently live.
    pub live_slots: u64,
    /// Sum of payload lengths over the live slots.
    pub live_payload_bytes: u64,
    /// Cumulative allocations served by this class.
    pub allocs: u64,
}

impl ClassStats {
    /// Fraction of carved slots that are live (0 when the class is unused).
    pub fn occupancy(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.live_slots as f64 / self.total_slots as f64
        }
    }

    /// Fraction of live slot bytes wasted on headers and rounding
    /// (internal fragmentation; 0 when nothing is live).
    pub fn fragmentation(&self) -> f64 {
        let resident = self.live_slots * self.slot_size as u64;
        if resident == 0 {
            0.0
        } else {
            1.0 - self.live_payload_bytes as f64 / resident as f64
        }
    }
}

/// A cheaply cloneable handle on a size-class slab arena.
#[derive(Clone)]
pub struct SlabArena {
    inner: Arc<ArenaInner>,
}

impl std::fmt::Debug for SlabArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabArena")
            .field("classes", &self.inner.sizes.count())
            .finish_non_exhaustive()
    }
}

impl Default for SlabArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SlabArena {
    /// An arena with the canonical class geometry (64 B … 64 KiB, ×1.25).
    pub fn new() -> Self {
        Self::with_classes(SizeClasses::canonical())
    }

    /// An arena with a custom class table (tests, tuning experiments).
    pub fn with_classes(sizes: SizeClasses) -> Self {
        let mut classes = Vec::with_capacity(sizes.count());
        for idx in 0..sizes.count() {
            let slot_size = sizes.slot_size(idx);
            classes.push(ClassState {
                slot_size,
                slots_per_page: (PAGE_BYTES / slot_size).max(1),
                free: Mutex::new(Vec::with_capacity(0)),
                pages: Mutex::new(Vec::with_capacity(0)),
                total_slots: AtomicU64::new(0),
                live_slots: AtomicU64::new(0),
                live_payload: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
            });
        }
        Self {
            inner: Arc::new(ArenaInner {
                sizes,
                classes: classes.into_boxed_slice(),
            }),
        }
    }

    /// Real footprint of a `len`-byte payload under this arena's table.
    pub fn footprint(&self, len: usize) -> u64 {
        self.inner.sizes.footprint(len)
    }

    /// Copy `payload` into a freshly allocated slot of the fitting class.
    /// Returns `None` when the payload is oversize for the class table —
    /// the caller falls back to a plain heap allocation. This is the one
    /// place payload bytes are copied on the PUT path (network ingest into
    /// cache-owned memory); every later hand-off is a refcount bump.
    pub fn try_alloc(&self, payload: &[u8]) -> Option<SlabRef> {
        let idx = self.inner.sizes.index_for(payload.len())?;
        let class = &self.inner.classes[idx];
        let ptr = loop {
            {
                let _order = lockorder::acquire(LockClass::SlabFree(idx));
                let mut free = class.free.lock();
                if let Some(p) = free.pop() {
                    break p;
                }
            }
            self.grow(idx);
        };
        // SAFETY: the slot is *owned* (popped from the freelist, reachable
        // only by this thread). Header writes then payload copy, then the
        // Release refcount store publishes the slot as *live*.
        unsafe {
            ptr.add(4).cast::<u32>().write(payload.len() as u32);
            std::ptr::copy_nonoverlapping(payload.as_ptr(), ptr.add(SLOT_HEADER), payload.len());
            (*ptr.cast::<AtomicU32>()).store(1, Ordering::Release);
        }
        class.live_slots.fetch_add(1, Ordering::Relaxed);
        class
            .live_payload
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        class.allocs.fetch_add(1, Ordering::Relaxed);
        Some(SlabRef {
            inner: Arc::clone(&self.inner),
            ptr,
            class: idx as u32,
            len: payload.len() as u32,
        })
    }

    /// Allocate one more page for class `idx` and push its slots onto the
    /// freelist — the only path that touches the global allocator, and it
    /// runs only when occupancy grows past every page allocated so far.
    fn grow(&self, idx: usize) {
        let class = &self.inner.classes[idx];
        let _order_p = lockorder::acquire(LockClass::SlabPage(idx));
        let mut pages = class.pages.lock();
        {
            // Another thread may have grown while we waited for the page
            // lock; re-check under it so pages are not over-allocated.
            let _order_f = lockorder::acquire(LockClass::SlabFree(idx));
            if !class.free.lock().is_empty() {
                return;
            }
        }
        let page = Page::new(class.slots_per_page * class.slot_size);
        let _order_f = lockorder::acquire(LockClass::SlabFree(idx));
        let mut free = class.free.lock();
        // Reserve room for every slot ever carved (prior pages + this
        // one): the freelist can hold at most that many pointers, so a
        // steady-state `free_slot` push never reallocates — the freelist
        // itself must not put mallocs back on the path it exists to clear.
        let all_slots = class.total_slots.load(Ordering::Relaxed) as usize + class.slots_per_page;
        let additional = all_slots.saturating_sub(free.len());
        free.reserve(additional);
        for i in 0..class.slots_per_page {
            // SAFETY: i * slot_size < page size by construction.
            free.push(unsafe { page.base.add(i * class.slot_size) });
        }
        pages.push(page);
        class
            .total_slots
            .fetch_add(class.slots_per_page as u64, Ordering::Relaxed);
    }

    /// Per-class occupancy/fragmentation read-out, ascending slot size.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        let mut out = Vec::with_capacity(self.inner.classes.len());
        for class in self.inner.classes.iter() {
            let total = class.total_slots.load(Ordering::Relaxed);
            out.push(ClassStats {
                slot_size: class.slot_size,
                pages: total / class.slots_per_page as u64,
                total_slots: total,
                live_slots: class.live_slots.load(Ordering::Relaxed),
                live_payload_bytes: class.live_payload.load(Ordering::Relaxed),
                allocs: class.allocs.load(Ordering::Relaxed),
            });
        }
        out
    }
}

/// Return a slot to its class freelist once its last handle dropped.
fn free_slot(inner: &ArenaInner, class_idx: usize, ptr: *mut u8, len: u32) {
    let class = &inner.classes[class_idx];
    class.live_slots.fetch_sub(1, Ordering::Relaxed);
    class.live_payload.fetch_sub(len as u64, Ordering::Relaxed);
    let _order = lockorder::acquire(LockClass::SlabFree(class_idx));
    class.free.lock().push(ptr);
}

/// A refcounted handle on one live arena slot. Cloning bumps the slot's
/// refcount; the last drop returns the slot to its class freelist. The
/// handle also keeps the arena alive, so the pointer cannot dangle.
pub struct SlabRef {
    inner: Arc<ArenaInner>,
    ptr: *mut u8,
    class: u32,
    len: u32,
}

// SAFETY: the pointed-to slot is immutable while live (writes happen only
// in the owned state, before publication), the refcount is atomic, and
// the Arc keeps the backing pages alive — the same argument as Arc<[u8]>.
unsafe impl Send for SlabRef {}
unsafe impl Sync for SlabRef {}

impl SlabRef {
    #[inline]
    fn refcount(&self) -> &AtomicU32 {
        // SAFETY: ptr is the 8-aligned slot base; the header's first word
        // is the refcount, initialized before the handle existed.
        unsafe { &*self.ptr.cast::<AtomicU32>() }
    }

    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the slot is live (this handle holds a refcount), its
        // payload was fully written before publication, and slot_size ≥
        // SLOT_HEADER + len by class selection.
        unsafe { std::slice::from_raw_parts(self.ptr.add(SLOT_HEADER), self.len as usize) }
    }

    /// Slot size of this handle's class, header included — the bytes the
    /// record really occupies.
    pub fn slot_size(&self) -> usize {
        self.inner.classes[self.class as usize].slot_size
    }
}

impl Clone for SlabRef {
    fn clone(&self) -> Self {
        // Relaxed suffices: the clone source already keeps the slot live,
        // exactly as in Arc::clone.
        let old = self.refcount().fetch_add(1, Ordering::Relaxed);
        assert!(old < u32::MAX / 2, "SlabRef refcount overflow");
        Self {
            inner: Arc::clone(&self.inner),
            ptr: self.ptr,
            class: self.class,
            len: self.len,
        }
    }
}

impl Drop for SlabRef {
    fn drop(&mut self) {
        if self.refcount().fetch_sub(1, Ordering::Release) == 1 {
            // Order all payload reads before the slot is recycled.
            fence(Ordering::Acquire);
            free_slot(&self.inner, self.class as usize, self.ptr, self.len);
        }
    }
}

impl std::ops::Deref for SlabRef {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SlabRef {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SlabRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabRef")
            .field("len", &self.len)
            .field("slot_size", &self.slot_size())
            .finish_non_exhaustive()
    }
}

impl PartialEq for SlabRef {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SlabRef {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_the_canonical_class_table() {
        let classes = SizeClasses::canonical();
        // The pure fn and the table agree on every length up to oversize.
        for len in (0..=70_000).step_by(7) {
            assert_eq!(footprint(len), classes.footprint(len), "len {len}");
        }
        // Spot-check the geometry: header + payload rounds into the class.
        assert_eq!(footprint(0), 64);
        assert_eq!(footprint(56), 64);
        assert_eq!(footprint(57), 80);
        assert_eq!(footprint(96), 104);
        assert_eq!(footprint(100), 136);
        assert_eq!(footprint(1024), 1096);
        // Oversize payloads bypass the table: header + alignment only.
        let last = classes.slot_size(classes.count() - 1);
        assert!(last >= MAX_SLOT);
        assert_eq!(footprint(last), (align8(last + SLOT_HEADER)) as u64);
    }

    #[test]
    fn class_table_is_aligned_and_geometric() {
        let c = SizeClasses::canonical();
        assert!(c.count() > 20, "expected ~32 classes, got {}", c.count());
        for i in 0..c.count() {
            assert_eq!(c.slot_size(i) % 8, 0);
            if i > 0 {
                let prev = c.slot_size(i - 1);
                let next = c.slot_size(i);
                assert!(next > prev);
                // Growth stays near ×1.25 (alignment may round up a touch).
                assert!(next <= align8(prev + prev / 4), "{prev} -> {next}");
            }
        }
    }

    #[test]
    fn alloc_roundtrips_payload_bytes() {
        let arena = SlabArena::new();
        let payload: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let r = arena.try_alloc(&payload).expect("fits the table");
        assert_eq!(r.as_slice(), &payload[..]);
        assert_eq!(r.len(), 300);
        assert_eq!(r.slot_size() as u64, footprint(300));
        // Empty payloads are legal (smallest class).
        let empty = arena.try_alloc(&[]).expect("empty fits");
        assert!(empty.is_empty());
        assert_eq!(empty.slot_size(), MIN_SLOT);
    }

    #[test]
    fn oversize_payload_is_refused() {
        let arena = SlabArena::new();
        let huge = vec![0u8; 80_000];
        assert!(arena.try_alloc(&huge).is_none());
        // The boundary: the largest class's payload capacity fits.
        let classes = SizeClasses::canonical();
        let cap = classes.slot_size(classes.count() - 1) - SLOT_HEADER;
        assert!(arena.try_alloc(&vec![1u8; cap]).is_some());
        assert!(arena.try_alloc(&vec![1u8; cap + 1]).is_none());
    }

    #[test]
    fn clones_share_the_slot_and_drop_recycles_it() {
        let arena = SlabArena::new();
        let a = arena.try_alloc(b"hello slab").expect("alloc");
        let slot_ptr = a.as_slice().as_ptr();
        let b = a.clone();
        assert!(std::ptr::eq(slot_ptr, b.as_slice().as_ptr()));
        drop(a);
        // Still readable through the surviving clone.
        assert_eq!(b.as_slice(), b"hello slab");
        drop(b);
        // The freed slot is recycled for the next same-class alloc.
        let c = arena.try_alloc(b"recycled!!").expect("alloc");
        assert!(std::ptr::eq(slot_ptr, c.as_slice().as_ptr()));
        let stats = &arena.class_stats()[0];
        assert_eq!(stats.live_slots, 1);
        assert_eq!(stats.allocs, 2);
    }

    /// Satellite regression: freelist recycling bounds page growth — a
    /// node churning at stable occupancy must not leak pages.
    #[test]
    fn churn_at_stable_occupancy_allocates_no_new_pages() {
        let arena = SlabArena::new();
        // Reach steady occupancy: 100 live 100-byte records (class 136).
        let mut live: Vec<SlabRef> = (0..100)
            .map(|_| arena.try_alloc(&[7u8; 100]).expect("alloc"))
            .collect();
        let pages_at_peak = arena.class_stats()[3].pages;
        assert!(pages_at_peak >= 1);
        // Churn 10k replacements at the same occupancy.
        for i in 0..10_000usize {
            let idx = i % live.len();
            live[idx] = arena.try_alloc(&[(i % 256) as u8; 100]).expect("alloc");
        }
        let stats = &arena.class_stats()[3];
        assert_eq!(stats.pages, pages_at_peak, "churn must recycle, not grow");
        assert_eq!(stats.live_slots, 100);
        assert_eq!(stats.allocs, 10_100);
        drop(live);
        assert_eq!(arena.class_stats()[3].live_slots, 0);
    }

    #[test]
    fn stats_track_occupancy_and_fragmentation() {
        let arena = SlabArena::new();
        // 10 payloads of 100 bytes → class 136 (index 3: 64, 80, 104, 136).
        let held: Vec<SlabRef> = (0..10)
            .map(|_| arena.try_alloc(&[1u8; 100]).expect("alloc"))
            .collect();
        let s = &arena.class_stats()[3];
        assert_eq!(s.slot_size, 136);
        assert_eq!(s.live_slots, 10);
        assert_eq!(s.live_payload_bytes, 1000);
        assert_eq!(s.pages, 1);
        assert_eq!(s.total_slots, (PAGE_BYTES / 136) as u64);
        let frag = s.fragmentation();
        assert!((frag - (1.0 - 1000.0 / 1360.0)).abs() < 1e-9);
        assert!(s.occupancy() > 0.0 && s.occupancy() <= 1.0);
        drop(held);
    }

    #[test]
    fn concurrent_alloc_free_churn_stays_consistent() {
        let arena = SlabArena::new();
        let threads: Vec<_> = (0..8u8)
            .map(|t| {
                let arena = arena.clone();
                std::thread::spawn(move || {
                    let mut held: Vec<SlabRef> = Vec::new();
                    for i in 0..5_000usize {
                        let len = (i * 37 + t as usize * 101) % 2_000;
                        let r = arena.try_alloc(&vec![t; len]).expect("alloc");
                        assert_eq!(r.len(), len);
                        assert!(r.as_slice().iter().all(|&b| b == t));
                        if i % 3 == 0 {
                            held.push(r);
                        }
                        if held.len() > 64 {
                            held.clear();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("churn thread");
        }
        for s in arena.class_stats() {
            assert_eq!(s.live_slots, 0, "class {} leaked slots", s.slot_size);
            assert_eq!(s.live_payload_bytes, 0);
            // Every carved slot is back on the freelist: pages bounded by
            // the peak, not by the 40k total allocations.
            assert!(s.total_slots >= s.live_slots);
        }
    }

    #[test]
    fn handles_outlive_the_arena_handle() {
        let arena = SlabArena::new();
        let r = arena.try_alloc(b"survivor").expect("alloc");
        drop(arena);
        // The SlabRef's own Arc keeps the pages alive.
        assert_eq!(r.as_slice(), b"survivor");
    }
}
