//! Differential property test for the sliding window's incremental λ
//! scorer: under arbitrary interleavings of `note_query` / `end_slice` /
//! `set_slices` — including the shrink-then-grow resize path — the
//! occurrence-index score must equal the brute-force `lambda_reference`
//! to 1e-9 (and the full-scan `lambda` bit-for-bit), and the structural
//! auditor must stay clean.

use proptest::prelude::*;

use ecc_core::SlidingWindow;

#[derive(Debug, Clone)]
enum WinOp {
    /// Record a query of `key % key_space`.
    Note(u16),
    /// Close the current slice (and score the expired one, if any).
    EndSlice,
    /// Resize the window to `1 + n % 9` slices.
    Resize(u8),
}

fn op_strategy() -> impl Strategy<Value = WinOp> {
    prop_oneof![
        6 => any::<u16>().prop_map(WinOp::Note),
        3 => Just(WinOp::EndSlice),
        1 => any::<u8>().prop_map(WinOp::Resize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_lambda_matches_reference(
        m in 1usize..8,
        alpha in 0.05f64..0.999,
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let key_space = 48u64;
        let threshold = alpha.powi(m as i32 - 1);
        let mut w = SlidingWindow::new(m, alpha, threshold);
        for op in ops {
            match op {
                WinOp::Note(k) => w.note_query(k as u64 % key_space),
                WinOp::EndSlice => {
                    if let Some(expired) = w.end_slice() {
                        // The eviction decision must match a full rescore.
                        let slow: Vec<u64> = expired
                            .keys()
                            .copied()
                            .filter(|&k| w.lambda(k) < w.threshold())
                            .collect();
                        prop_assert_eq!(w.victims(&expired), slow);
                    }
                }
                WinOp::Resize(n) => {
                    for expired in w.set_slices(1 + n as usize % 9) {
                        let slow: Vec<u64> = expired
                            .keys()
                            .copied()
                            .filter(|&k| w.lambda(k) < w.threshold())
                            .collect();
                        prop_assert_eq!(w.victims(&expired), slow);
                    }
                }
            }
            prop_assert!(w.check_invariants().is_ok(), "{:?}", w.check_invariants());
            for k in 0..key_space {
                let inc = w.lambda_incremental(k);
                prop_assert!(
                    (inc - w.lambda_reference(k)).abs() < 1e-9,
                    "key {} diverged from reference: {} vs {}",
                    k, inc, w.lambda_reference(k)
                );
                // Stronger than the 1e-9 contract: identical bits with the
                // full scan, which the simtest bit-exact oracle depends on.
                prop_assert_eq!(inc.to_bits(), w.lambda(k).to_bits());
            }
        }
    }
}
