//! Property tests for the elastic cache: placement, residency and
//! accounting invariants must hold under arbitrary operation sequences.

use std::collections::BTreeMap;

use ecc_core::{CacheConfig, ElasticCache, Record, StaticCache, WindowConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Query(u16),
    Lookup(u16),
    EndStep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => any::<u16>().prop_map(Op::Query),
        2 => any::<u16>().prop_map(Op::Lookup),
        1 => Just(Op::EndStep),
    ]
}

/// Deterministic per-key payload size (a real service derives the same
/// result for the same query).
fn size_of_key(k: u16) -> usize {
    (k as usize % 100) + 1
}

fn cfg(capacity_records: u64, window: Option<(usize, f64)>) -> CacheConfig {
    let mut c = CacheConfig::small_test();
    c.ring_range = 1 << 16;
    // Capacity in charged-footprint units: a node holds `capacity_records`
    // records of the largest payload `size_of_key` can produce.
    c.node_capacity_bytes = capacity_records * ecc_core::slab::footprint(100);
    c.window = window.map(|(m, alpha)| WindowConfig {
        slices: m,
        alpha,
        threshold: None,
    });
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cache agrees with an ideal (never-evicting, infinitely large)
    /// map when the window is infinite: every queried key becomes and
    /// stays resident, and lookups return exactly the cached payloads.
    #[test]
    fn infinite_window_matches_ideal_map(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut cache = ElasticCache::new(cfg(16, None));
        let mut ideal: BTreeMap<u64, usize> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Query(k) => {
                    let key = k as u64;
                    let size = size_of_key(k);
                    let r = cache.query(key, 1000, || Record::filler(size));
                    match ideal.get(&key) {
                        Some(&s) => prop_assert_eq!(r.len(), s),
                        None => {
                            ideal.insert(key, size);
                            prop_assert_eq!(r.len(), size);
                        }
                    }
                }
                Op::Lookup(k) => {
                    let got = cache.lookup(k as u64).map(|r| r.len());
                    prop_assert_eq!(got, ideal.get(&(k as u64)).copied());
                }
                Op::EndStep => cache.end_time_step(),
            }
        }
        cache.validate();
        prop_assert_eq!(cache.total_records(), ideal.len());
        // Accounting charges each record its slab-slot footprint.
        let expected_bytes: u64 = ideal.values().map(|&s| ecc_core::slab::footprint(s)).sum();
        prop_assert_eq!(cache.total_bytes(), expected_bytes);
    }

    /// With a finite window the cache may evict, but structural invariants
    /// hold throughout and resident records are always a subset of the
    /// ideal map with identical payloads.
    #[test]
    fn windowed_cache_holds_invariants(
        m in 1usize..=6,
        alpha in 0.5f64..0.999,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut cache = ElasticCache::new(cfg(8, Some((m, alpha))));
        let mut ideal: BTreeMap<u64, usize> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Query(k) => {
                    let key = k as u64;
                    let size = size_of_key(k);
                    let r = cache.query(key, 1000, || Record::filler(size));
                    let expect = *ideal.entry(key).or_insert(size);
                    prop_assert_eq!(r.len(), expect);
                }
                Op::Lookup(k) => {
                    if let Some(r) = cache.lookup(k as u64) {
                        prop_assert_eq!(Some(r.len()), ideal.get(&(k as u64)).copied());
                    }
                }
                Op::EndStep => cache.end_time_step(),
            }
        }
        cache.validate();
        // Conservation: every resident record was inserted and never
        // mutated.
        prop_assert!(cache.total_records() <= ideal.len());
        // Node count stays within the physical bound: you can never need
        // more nodes than ceil(bytes/capacity) + splits headroom.
        prop_assert!(cache.node_count() >= 1);
    }

    /// Metrics conservation: queries = hits + misses; observed time never
    /// exceeds the clock; baseline accumulates exactly per query.
    #[test]
    fn metrics_are_conserved(
        keys in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        let mut cache = ElasticCache::new(cfg(16, Some((3, 0.99)))) ;
        for (i, &k) in keys.iter().enumerate() {
            cache.query(k as u64, 500, || Record::filler(20));
            if i % 7 == 0 {
                cache.end_time_step();
            }
        }
        let m = cache.metrics();
        prop_assert_eq!(m.queries, keys.len() as u64);
        prop_assert_eq!(m.hits + m.misses, m.queries);
        prop_assert_eq!(m.baseline_us, 500 * keys.len() as u64);
        prop_assert!(m.observed_us <= cache.clock().now_us());
        prop_assert!(m.service_us == 500 * m.misses);
    }

    /// The static baseline never exceeds its fixed capacity and keeps its
    /// fleet size constant.
    #[test]
    fn static_cache_capacity_never_exceeded(
        n_nodes in 1usize..=8,
        keys in proptest::collection::vec(any::<u16>(), 1..300),
    ) {
        let mut c = CacheConfig::small_test();
        c.ring_range = 1 << 16;
        c.node_capacity_bytes = 500;
        let mut cache = StaticCache::new(&c, n_nodes);
        for &k in &keys {
            cache.query(k as u64, 1000, || Record::filler(100));
        }
        prop_assert_eq!(cache.node_count(), n_nodes);
        prop_assert!(cache.total_bytes() <= 500 * n_nodes as u64);
        let m = cache.metrics();
        prop_assert_eq!(m.hits + m.misses, m.queries);
    }

    /// Churn equivalence: a burst of queries followed by quiet periods
    /// always contracts back toward the floor, and repeated cycles do not
    /// leak nodes.
    #[test]
    fn burst_quiet_cycles_do_not_leak_nodes(cycles in 1usize..=4, burst in 8u64..40) {
        let mut cache = ElasticCache::new(cfg(8, Some((2, 0.99))));
        let mut peak = 1;
        for cycle in 0..cycles {
            for k in 0..burst {
                cache.query(k * 97 + cycle as u64, 1000, || Record::filler(100));
            }
            cache.end_time_step();
            peak = peak.max(cache.node_count());
            // Quiet: several empty steps expire everything and allow
            // contraction each step (epsilon = 1).
            for _ in 0..10 {
                cache.end_time_step();
            }
            cache.validate();
        }
        prop_assert!(cache.node_count() <= 2, "stuck at {} nodes", cache.node_count());
        prop_assert_eq!(cache.total_records(), 0);
    }
}
