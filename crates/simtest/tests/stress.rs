//! Multi-threaded stress: concurrent writers, readers and a migration
//! sweep against one node, checked two ways.
//!
//! * In-process: [`ShardedNode`] under N writers + M readers + a
//!   concurrent drain/re-put "migration", then `check_invariants` and
//!   flat-map agreement against a single-threaded `BTreeMap` model.
//! * Over the wire: the same thread mix against a live [`CacheServer`],
//!   with the final state compared **bit-exactly** — raw response frames
//!   — against [`ModelServer`], the simtest differential oracle, fed the
//!   same final contents.
//!
//! Determinism under concurrency: writers own disjoint key ranges and the
//! migration thread sweeps a range nobody writes, re-inserting exactly
//! what it drained. Interleavings differ; the final flat map cannot.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use ecc_core::{PutOutcome, Record, ShardedNode};
use ecc_net::client::RemoteNode;
use ecc_net::protocol::{read_frame, write_frame, Request, Response};
use ecc_net::server::CacheServer;
use ecc_simtest::model::ModelServer;

const WRITERS: u64 = 4;
const READERS: usize = 2;
const KEYS_PER_WRITER: u64 = 64;
const ROUNDS: u64 = 40;
/// The migration thread's dedicated range, disjoint from every writer.
const MIG_LO: u64 = 10_000;
const MIG_HI: u64 = 10_063;

/// The value writer `w` stores for `key` on round `r`: content derives
/// from the key alone (so readers can check torn-read integrity on any
/// round's value) while the length varies with the round (so replacements
/// actually change accounting).
fn writer_value(key: u64, r: u64) -> Vec<u8> {
    vec![(key % 251) as u8; 32 + (r as usize % 8) * 16]
}

fn migration_value(key: u64) -> Vec<u8> {
    vec![(key % 251) as u8; 100]
}

/// The deterministic final contents: every writer key at its last round's
/// value, plus the untouched (swept-and-restored) migration range.
fn expected_final() -> BTreeMap<u64, Vec<u8>> {
    let mut m = BTreeMap::new();
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            let key = w * 1_000 + i;
            m.insert(key, writer_value(key, ROUNDS - 1));
        }
    }
    for key in MIG_LO..=MIG_HI {
        m.insert(key, migration_value(key));
    }
    m
}

/// A value observed for `key` mid-run must be one of the round values —
/// same fill byte, a generated length. Detects torn payloads and
/// cross-key mixups under concurrency.
fn assert_value_integrity(key: u64, v: &[u8]) {
    let fill = (key % 251) as u8;
    assert!(v.iter().all(|&b| b == fill), "torn payload for key {key}");
    let len = v.len();
    let valid_writer_len = (32..=32 + 7 * 16).contains(&len) && (len - 32).is_multiple_of(16);
    assert!(
        valid_writer_len || len == 100,
        "key {key}: impossible length {len}"
    );
}

#[test]
fn sharded_node_stress_matches_flat_model() {
    let node = Arc::new(ShardedNode::new(64 << 20, 16, 8));
    for key in MIG_LO..=MIG_HI {
        assert_eq!(
            node.put(key, Record::from_vec(migration_value(key))),
            PutOutcome::Stored
        );
    }
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let node = Arc::clone(&node);
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    for i in 0..KEYS_PER_WRITER {
                        let key = w * 1_000 + i;
                        let out = node.put(key, Record::from_vec(writer_value(key, r)));
                        assert_eq!(out, PutOutcome::Stored);
                    }
                }
            });
        }
        for m in 0..READERS {
            let node = Arc::clone(&node);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut state = 0xD1B54A32D192ED03u64 ^ m as u64;
                while !stop.load(Ordering::Acquire) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 33) % (WRITERS * 1_000);
                    if let Some(rec) = node.get(key) {
                        assert_value_integrity(key, rec.as_slice());
                    }
                }
            });
        }
        // Concurrent migration: sweep the dedicated range, re-insert what
        // was drained — Sweep-and-Migrate's destructive read + re-home.
        {
            let node = Arc::clone(&node);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let drained = node.drain_range(MIG_LO, MIG_HI);
                    for (k, rec) in drained {
                        assert_eq!(node.put(k, rec), PutOutcome::Stored);
                    }
                    node.check_invariants().expect("mid-run audit");
                }
                stop.store(true, Ordering::Release);
            });
        }
    });

    node.check_invariants().expect("final audit");
    node.validate();

    // Flat-map agreement with the single-threaded model.
    let expect = expected_final();
    let keys = node.keys_in_range(0, u64::MAX);
    assert_eq!(
        keys,
        expect.keys().copied().collect::<Vec<_>>(),
        "key set diverged from the model"
    );
    for (key, v) in &expect {
        let rec = node.get(*key).expect("model key missing");
        assert_eq!(rec.as_slice(), &v[..], "bytes diverged at key {key}");
    }
    let expected_bytes: u64 = expect.values().map(|v| v.len() as u64).sum();
    assert_eq!(node.used_bytes(), expected_bytes);
    assert_eq!(node.record_count(), expect.len() as u64);
}

/// Encode the oracle's response the way the server frames it.
fn model_frame(model: &mut ModelServer, req: Request) -> Vec<u8> {
    let resp: Response = model.respond(Some(req));
    let mut buf = Vec::new();
    resp.encode_into(&mut buf);
    buf
}

#[test]
fn wire_stress_matches_model_server_bit_exactly() {
    let server = CacheServer::spawn(64 << 20, 16).unwrap();
    let addr = server.addr();

    {
        let mut seed = RemoteNode::connect(addr).unwrap();
        let items: Vec<(u64, Bytes)> = (MIG_LO..=MIG_HI)
            .map(|k| (k, Bytes::from(migration_value(k))))
            .collect();
        assert!(seed
            .put_many(items)
            .unwrap()
            .iter()
            .all(|s| *s == ecc_net::protocol::Status::Ok));
    }

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                let mut c = RemoteNode::connect(addr).unwrap();
                for r in 0..ROUNDS {
                    for i in 0..KEYS_PER_WRITER {
                        let key = w * 1_000 + i;
                        let status = c.put(key, writer_value(key, r)).unwrap();
                        assert_eq!(status, ecc_net::protocol::Status::Ok);
                    }
                }
            });
        }
        for m in 0..READERS {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut c = RemoteNode::connect(addr).unwrap();
                let mut state = 0xA0761D6478BD642Fu64 ^ m as u64;
                while !stop.load(Ordering::Acquire) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 33) % (WRITERS * 1_000);
                    if let Some(v) = c.get(key).unwrap() {
                        assert_value_integrity(key, &v);
                    }
                }
            });
        }
        {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut c = RemoteNode::connect(addr).unwrap();
                for _ in 0..ROUNDS {
                    let drained = c.sweep(MIG_LO, MIG_HI).unwrap();
                    for (k, v) in drained {
                        assert_eq!(c.put(k, v).unwrap(), ecc_net::protocol::Status::Ok);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
    });

    // Feed the oracle the deterministic final contents, then require the
    // live server's raw response frames to match the model's encodings
    // byte for byte.
    let expect = expected_final();
    let mut model = ModelServer::new(64 << 20);
    for (k, v) in &expect {
        let r = model.respond(Some(Request::Put {
            key: *k,
            value: Bytes::from(v.clone()),
        }));
        assert_eq!(
            r.status,
            ecc_net::protocol::Status::Ok,
            "model refused a put the server accepted"
        );
    }

    let mut raw = TcpStream::connect(addr).unwrap();
    let mut exchange = |req: Request| -> Vec<u8> {
        write_frame(&mut raw, &req.encode()).unwrap();
        read_frame(&mut raw).unwrap().to_vec()
    };

    let probes = vec![
        Request::Keys {
            lo: 0,
            hi: u64::MAX,
        },
        Request::Stats,
        Request::RangeStats {
            lo: 0,
            hi: u64::MAX,
        },
        Request::RangeStats {
            lo: MIG_LO,
            hi: MIG_HI,
        },
        Request::GetMany {
            keys: expect.keys().copied().collect(),
        },
        Request::Get { key: MIG_LO },
        Request::Get { key: 999_999 },
        Request::Sweep {
            lo: 0,
            hi: u64::MAX,
        },
        // After the full-range sweep both sides must be empty.
        Request::Stats,
        Request::Keys {
            lo: 0,
            hi: u64::MAX,
        },
    ];
    for req in probes {
        let live = exchange(req.clone());
        let oracle = model_frame(&mut model, req.clone());
        assert_eq!(live, oracle, "wire/model divergence on {req:?}");
    }
}
