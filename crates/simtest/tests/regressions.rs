//! Shrunken schedules from real bugs the simulation harness flushed out.
//!
//! Each constant below is a `SIMSEED` printed by `cargo xtask simtest` on a
//! failing seed, shrunk by delta-debugging to a minimal event list, and
//! committed here after the underlying bug was fixed. They must stay green
//! forever; if one regresses, replay it directly with
//! `cargo xtask simtest --replay '<SIMSEED>'`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ecc_simtest::{generate, run_schedule, Family, QuietPanics, Schedule};

fn assert_passes(simseed: &str) {
    let _quiet = QuietPanics::install();
    let s = Schedule::decode(simseed).expect("committed SIMSEED must decode");
    assert_eq!(
        s.encode(),
        simseed,
        "committed SIMSEED must round-trip through encode"
    );
    if let Err(f) = run_schedule(&s) {
        panic!("regression schedule failed again: {f}\n  {simseed}");
    }
}

/// Bug 1 — `ElasticCache::insert` accepted any replacement unconditionally
/// (`is_replacement || node.fits(size)`), so a record replaced by a larger
/// payload pushed its node over capacity: key 0 grows 145 B → 251 B on a
/// 610 B node already holding 233 B. Caught by the PR-1 `validate()` audit
/// ("node over capacity") under the elastic harness; fixed by charging only
/// the byte growth (`fits(size - old_size)`) and splitting on overflow.
const ELASTIC_REPLACEMENT_GROWTH: &str = "SIMSEED/1/elastic/ring=1024,cap=610,ord=8,m=0,a=69,eps=4,min=1,wp=0,pf=0,boot=185222,rep=0,n=2/q13.89,q10.51,i0.145,q2.233,i0.251";

/// Bug 2 — `StaticCache::insert` skipped LRU displacement entirely for
/// replacements, so a growing replacement (key 4: 92 B → 271 B) overflowed
/// its node and tripped the `bytes() <= capacity_bytes` debug assertion.
/// Fixed by displacing after the overwrite (fresh record is MRU, so it
/// never displaces itself).
const STATIC_REPLACEMENT_GROWTH: &str = "SIMSEED/1/static/ring=1024,cap=1039,ord=8,m=0,a=99,eps=1,min=1,wp=0,pf=0,boot=0,rep=0,n=1/q7.119,i10.209,q4.92,q2.252,q14.211,i4.271";

/// Bug 3 — the wire server's Put handler checked `fits(size)` without
/// crediting the replaced record's bytes, answering Overflow (and storing
/// nothing) for replacements the cache had room for — and the same handler
/// previously accepted growth past capacity. Caught as a status divergence
/// against [`ecc_simtest::model::ModelServer`] under frame corruption;
/// fixed with the same growth-only charge as bug 1.
const PROTO_REPLACEMENT_GROWTH: &str = "SIMSEED/1/proto/ring=1024,cap=587,ord=8,m=0,a=99,eps=1,min=1,wp=0,pf=0,boot=0,rep=0,n=2/P62.61,P42.103,P47.78,P56.27,2!P27.104,x16.146!P64.41,x26.242!P10.106,P28.34,x30.109!P62.100";

/// Bug 3 over a live fleet — the same server-side Put bug let key 0 grow
/// 24 B → 151 B past a 1400 B node's budget; caught by the new
/// `LiveCoordinator::check_invariants` (per-node `used <= cap` over Stats).
const LIVE_REPLACEMENT_GROWTH: &str = "SIMSEED/1/live/ring=4096,cap=1400,ord=8,m=0,a=99,eps=2,min=1,wp=0,pf=0,boot=0,rep=0,n=2/p3.126,p4.180,p68.147,p112.158,p95.35,p49.129,p7.160,p2.143,p0.24,p5.175,p0.151";

/// Bug 4 — stale replica promotion. `place_replica` stored each copy at
/// the *current* replica target (next distinct node along the bucket
/// line), but the target drifts as proactive splits reshape the ring, so
/// key 7's original 66 B copy survived on a former target after the key
/// was replaced with 223 B. `fail_node` recovery then promoted the
/// outdated copy (`get(k).is_none() && fits(size)`), serving stale bytes.
/// Caught by the byte-level content oracle; fixed by sweeping the key's
/// replicas from every node before placing the fresh copy.
const ELASTIC_STALE_REPLICA: &str = "SIMSEED/1/elastic/ring=1024,cap=1697,ord=8,m=4,a=72,eps=3,min=1,wp=0,pf=63,boot=0,rep=1,n=2/q13.226,q99.79,q11.231,i15.188,q1.168,q12.108,i6.91,t,q30.255,q3.159,i7.66,q184.34,q10.300,i242.259,i7.223,f1";

#[test]
fn elastic_replacement_growth_stays_fixed() {
    assert_passes(ELASTIC_REPLACEMENT_GROWTH);
}

#[test]
fn static_replacement_growth_stays_fixed() {
    assert_passes(STATIC_REPLACEMENT_GROWTH);
}

#[test]
fn proto_replacement_growth_stays_fixed() {
    assert_passes(PROTO_REPLACEMENT_GROWTH);
}

#[test]
fn live_replacement_growth_stays_fixed() {
    assert_passes(LIVE_REPLACEMENT_GROWTH);
}

#[test]
fn elastic_stale_replica_stays_fixed() {
    assert_passes(ELASTIC_STALE_REPLICA);
}

/// Same seed ⇒ same schedule ⇒ same outcome: the acceptance criterion for
/// deterministic replay, exercised end-to-end over a few seeds per family.
#[test]
fn generation_and_execution_are_deterministic() {
    let _quiet = QuietPanics::install();
    for family in [
        Family::Elastic,
        Family::Workload,
        Family::Static,
        Family::Proto,
    ] {
        for seed in [0u64, 3, 17] {
            let a = generate(family, seed);
            let b = generate(family, seed);
            assert_eq!(a.encode(), b.encode(), "{family:?}/{seed} generation");
            let ra = run_schedule(&a).map_err(|f| f.to_string());
            let rb = run_schedule(&b).map_err(|f| f.to_string());
            assert_eq!(ra, rb, "{family:?}/{seed} execution");
        }
    }
}

/// A schedule decoded from its own printed SIMSEED behaves identically to
/// the original generated one.
#[test]
fn replay_reproduces_the_generated_schedule() {
    let _quiet = QuietPanics::install();
    for family in [
        Family::Elastic,
        Family::Workload,
        Family::Static,
        Family::Proto,
    ] {
        let orig = generate(family, 42);
        let replayed = Schedule::decode(&orig.encode()).expect("self-encoding decodes");
        assert_eq!(orig.family, replayed.family);
        assert_eq!(orig.events, replayed.events);
        assert_eq!(
            run_schedule(&orig).map_err(|f| f.to_string()),
            run_schedule(&replayed).map_err(|f| f.to_string()),
            "{family:?} replay outcome"
        );
    }
}
