//! Wire-layer regressions for the multi-reactor server.
//!
//! The reactor reads nonblockingly and may observe any prefix of a frame on
//! one readiness wakeup, so these tests split request frames at *every* byte
//! boundary — length prefix included — and demand bit-exact agreement with
//! [`ModelServer`]. They also pin the refusal contract: a connection past
//! the bound reads exactly one `Busy` frame (`[1, 0, 0, 0, 4]`) then EOF.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use ecc_net::client::RemoteNode;
use ecc_net::protocol::{read_frame, write_frame, Request, Response};
use ecc_net::server::CacheServer;
use ecc_simtest::event::record_bytes;
use ecc_simtest::model::ModelServer;
use ecc_simtest::{
    run_schedule, Family, Fault, QuietPanics, Schedule, SimConfig, SimEvent, WireOp,
};

/// Deliver one frame's wire bytes in two writes split at `cut`
/// (`1 <= cut < wire_len`), pausing in between so the server's reactor sees
/// the halves on separate wakeups.
fn send_split(stream: &mut TcpStream, payload: &[u8], cut: usize) -> std::io::Result<()> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(payload);
    assert!(
        cut >= 1 && cut < wire.len(),
        "cut {cut} outside ({})",
        wire.len()
    );
    stream.write_all(&wire[..cut])?;
    stream.flush()?;
    std::thread::sleep(Duration::from_micros(300));
    stream.write_all(&wire[cut..])
}

fn roundtrip(stream: &mut TcpStream, req: &Request, cut: usize) -> Response {
    let payload = req.encode();
    send_split(stream, &payload, cut).expect("split send");
    let raw = read_frame(stream).expect("server answered");
    Response::decode(raw).expect("decodable response")
}

/// Split a PUT (and the GET reading it back) at every interior byte of its
/// wire image, including inside the 4-byte length prefix. Every response —
/// status *and* body — must match the model bit-exactly: the assembler may
/// never mis-frame, duplicate, or lose bytes regardless of where the kernel
/// happened to cut the stream.
#[test]
fn frames_split_at_every_byte_boundary_reassemble_bit_exact() {
    let mut server =
        CacheServer::spawn_with(("127.0.0.1", 0), 1 << 20, 8, 64, Some(2)).expect("spawn");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut model = ModelServer::new(1 << 20);

    // All PUTs share a wire length (fixed-width key + 64-byte value), so one
    // request's image defines the boundary set for every iteration.
    let wire_len = 4 + Request::Put {
        key: 0,
        value: Bytes::from(record_bytes(0, 64, 0)),
    }
    .encode()
    .len();
    let get_wire_len = 4 + Request::Get { key: 0 }.encode().len();

    for cut in 1..wire_len {
        let key = cut as u64;
        let put = Request::Put {
            key,
            value: Bytes::from(record_bytes(key, 64, cut)),
        };
        let want = model.respond(Some(put.clone()));
        let got = roundtrip(&mut stream, &put, cut);
        assert_eq!(got, want, "PUT split at byte {cut} diverged");

        // Read the record back through a split GET too, walking the GET's
        // own (smaller) boundary set as `cut` advances.
        let get = Request::Get { key };
        let get_cut = 1 + cut % (get_wire_len - 1);
        let want = model.respond(Some(get.clone()));
        let got = roundtrip(&mut stream, &get, get_cut);
        assert_eq!(got, want, "GET split at byte {get_cut} diverged");
    }
    drop(stream);
    server.stop();
}

/// The same property driven through the simtest harness: a proto schedule
/// dense with `Fragment` faults must round-trip its SIMSEED and agree with
/// the model end to end (so shrunk fragment seeds are replayable).
#[test]
fn fragment_fault_schedule_agrees_with_the_model() {
    let _quiet = QuietPanics::install();
    let mut cfg = SimConfig::base();
    cfg.cap = 1500;
    let mut events = Vec::new();
    for (i, pos) in [0u32, 1, 2, 3, 4, 5, 7, 11, 19, 40, 77, 123, 200]
        .into_iter()
        .enumerate()
    {
        events.push(SimEvent::Frame {
            fault: Fault::Fragment { pos },
            op: WireOp::Put {
                key: i as u64,
                len: 30 + pos,
            },
        });
        events.push(SimEvent::Frame {
            fault: Fault::Fragment {
                pos: pos.wrapping_mul(3) + 1,
            },
            op: WireOp::Get { key: i as u64 },
        });
    }
    events.push(SimEvent::Frame {
        fault: Fault::Fragment { pos: 2 },
        op: WireOp::Stats,
    });
    let s = Schedule {
        family: Family::Proto,
        cfg,
        events,
    };
    let seed = s.encode();
    let replayed = Schedule::decode(&seed).expect("fragment SIMSEED decodes");
    assert_eq!(replayed.events, s.events, "fragment SIMSEED round-trip");
    if let Err(f) = run_schedule(&s) {
        panic!("fragmented proto schedule diverged: {f}\n  {seed}");
    }
}

/// Refusal contract under the reactor: a connection past the bound reads
/// exactly the bytes `[1, 0, 0, 0, 4]` — one length-1 frame carrying
/// `Status::Busy` — followed by a clean EOF, and the served connections
/// keep working afterwards.
#[test]
fn refused_connection_reads_exactly_one_busy_frame_then_eof() {
    let mut server = CacheServer::spawn_bounded(("127.0.0.1", 0), 10_000, 8, 2).expect("spawn");
    let mut a = RemoteNode::connect(server.addr()).expect("conn a");
    let mut b = RemoteNode::connect(server.addr()).expect("conn b");
    assert!(a.ping().unwrap());
    assert!(b.ping().unwrap());

    let mut raw = TcpStream::connect(server.addr()).expect("third connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).expect("read until EOF");
    assert_eq!(
        bytes,
        vec![1, 0, 0, 0, 4],
        "refused connection must see one Busy frame and nothing else"
    );

    // The bounded slots were untouched by the refusal.
    assert!(a.ping().unwrap());
    assert!(b.ping().unwrap());
    drop((a, b));
    server.stop();

    // And a regular frame write against the refused socket can't resurrect
    // it: the server already closed its end.
    let err = write_frame(&mut raw, &Request::Ping.encode())
        .and_then(|()| read_frame(&mut raw))
        .map(|_| ());
    assert!(err.is_err(), "refused connection stayed readable");
}
