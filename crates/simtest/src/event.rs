//! The schedule grammar and the `SIMSEED` codec.
//!
//! A [`Schedule`] is a fully explicit description of one simulation case: a
//! [`Family`] (which harness runs it), a [`SimConfig`] (the cache/cluster
//! tunables) and an ordered list of [`SimEvent`]s. Schedules serialize to a
//! compact ASCII `SIMSEED` string:
//!
//! ```text
//! SIMSEED/1/<family>/<k=v,...>/<event,event,...>
//! ```
//!
//! The codec is lossless ([`Schedule::encode`] / [`Schedule::decode`] round
//! trip exactly), so a printed SIMSEED — including one produced by the
//! shrinker — replays the same schedule byte-for-byte on any machine.

use std::fmt;

/// Which harness executes a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// [`ecc_core::ElasticCache`] vs. a flat `BTreeMap` + window model.
    Elastic,
    /// [`ecc_net::coordinator::LiveCoordinator`] over real sockets vs. the
    /// same model.
    Live,
    /// Frame-level fault injection against one [`ecc_net::server::CacheServer`]
    /// vs. a wire-semantics model.
    Proto,
    /// [`ecc_core::StaticCache`] vs. a reference per-node LRU model.
    Static,
    /// A zoo scenario's op stream (`ecc_workload::scenario`) replayed
    /// through the elastic harness and its flat-map oracle — realistic
    /// skew/burst shapes instead of uniform event rolls.
    Workload,
}

impl Family {
    /// Stable name used inside SIMSEED strings.
    pub fn name(self) -> &'static str {
        match self {
            Family::Elastic => "elastic",
            Family::Live => "live",
            Family::Proto => "proto",
            Family::Static => "static",
            Family::Workload => "workload",
        }
    }

    /// Parse a family name.
    pub fn parse(s: &str) -> Option<Family> {
        Some(match s {
            "elastic" => Family::Elastic,
            "live" => Family::Live,
            "proto" => Family::Proto,
            "static" => Family::Static,
            "workload" => Family::Workload,
            _ => return None,
        })
    }

    /// All families, in the order the multi-seed runner executes them.
    pub const ALL: [Family; 5] = [
        Family::Elastic,
        Family::Workload,
        Family::Static,
        Family::Proto,
        Family::Live,
    ];
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cluster/cache tunables of one schedule. A superset across families;
/// each harness reads the fields that apply to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// `r` — hash-line range.
    pub ring: u64,
    /// Node capacity in bytes.
    pub cap: u64,
    /// B+-tree order.
    pub ord: usize,
    /// Window slices `m`; `0` disables eviction.
    pub m: usize,
    /// Decay `α` as an integer percentage (99 ⇒ 0.99).
    pub alpha_pct: u32,
    /// Contraction cadence `ε`.
    pub eps: u64,
    /// Contraction floor.
    pub min_nodes: usize,
    /// Warm-pool standbys.
    pub warm: usize,
    /// Proactive-split fill as an integer percentage; `0` disables.
    pub pf_pct: u32,
    /// Fixed node boot latency, µs.
    pub boot_us: u64,
    /// Best-effort replication on/off.
    pub replicate: bool,
    /// Fixed fleet size (static family only).
    pub nodes: usize,
}

impl SimConfig {
    /// `α` as a float.
    pub fn alpha(&self) -> f64 {
        self.alpha_pct as f64 / 100.0
    }

    /// The baseline eviction threshold `T_λ = α^(m-1)` for this config.
    pub fn threshold(&self) -> f64 {
        self.alpha().powi(self.m as i32 - 1)
    }

    /// A neutral default every generator starts from.
    pub fn base() -> Self {
        Self {
            ring: 1024,
            cap: 2000,
            ord: 8,
            m: 0,
            alpha_pct: 99,
            eps: 1,
            min_nodes: 1,
            warm: 0,
            pf_pct: 0,
            boot_us: 0,
            replicate: false,
            nodes: 2,
        }
    }

    fn encode(&self) -> String {
        format!(
            "ring={},cap={},ord={},m={},a={},eps={},min={},wp={},pf={},boot={},rep={},n={}",
            self.ring,
            self.cap,
            self.ord,
            self.m,
            self.alpha_pct,
            self.eps,
            self.min_nodes,
            self.warm,
            self.pf_pct,
            self.boot_us,
            u8::from(self.replicate),
            self.nodes,
        )
    }

    fn decode(s: &str) -> Result<Self, String> {
        let mut cfg = SimConfig::base();
        for kv in s.split(',').filter(|kv| !kv.is_empty()) {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("config entry `{kv}` is not k=v"))?;
            let n: u64 = v
                .parse()
                .map_err(|_| format!("config value `{v}` for `{k}` is not an integer"))?;
            match k {
                "ring" => cfg.ring = n,
                "cap" => cfg.cap = n,
                "ord" => cfg.ord = n as usize,
                "m" => cfg.m = n as usize,
                "a" => cfg.alpha_pct = n as u32,
                "eps" => cfg.eps = n,
                "min" => cfg.min_nodes = n as usize,
                "wp" => cfg.warm = n as usize,
                "pf" => cfg.pf_pct = n as u32,
                "boot" => cfg.boot_us = n,
                "rep" => cfg.replicate = n != 0,
                "n" => cfg.nodes = n as usize,
                _ => return Err(format!("unknown config key `{k}`")),
            }
        }
        Ok(cfg)
    }
}

/// One well-formed wire operation (proto family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOp {
    /// `GET key`.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// `PUT key value` (payload generated deterministically from the
    /// event's position).
    Put {
        /// Key to store.
        key: u64,
        /// Payload length.
        len: u32,
    },
    /// `REMOVE key`.
    Remove {
        /// Key to remove.
        key: u64,
    },
    /// Destructive `SWEEP [lo, hi]`.
    Sweep {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// `KEYS [lo, hi]`.
    Keys {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// `STATS`.
    Stats,
    /// `PING`.
    Ping,
}

/// A frame-level fault applied to one wire operation before it is sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver the frame unmodified.
    None,
    /// XOR the payload byte at `pos % payload.len()` with `xor` (≠ 0).
    Corrupt {
        /// Byte position (reduced modulo the payload length).
        pos: u32,
        /// XOR mask.
        xor: u8,
    },
    /// Truncate the payload to at most `len` bytes.
    Truncate {
        /// Maximum payload length after truncation.
        len: u32,
    },
    /// Send the frame twice.
    Duplicate,
    /// Never send the frame.
    Drop,
    /// Deliver the frame's wire bytes (length prefix included) in two
    /// separate writes split at `pos`, with a pause between them, so the
    /// server observes a partial frame on one wakeup and the remainder
    /// on a later one. Semantically a no-op: the server must reassemble
    /// and answer exactly as for [`Fault::None`].
    Fragment {
        /// Split position (reduced to `1 + pos % (wire_len - 1)`, so both
        /// halves are non-empty).
        pos: u32,
    },
}

/// One step of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Full cached-service query (elastic/static): lookup, miss runs the
    /// service and caches a `len`-byte record.
    Query {
        /// Key queried.
        key: u64,
        /// Record size on miss.
        len: u32,
    },
    /// Bare insert (elastic/static): no window query is recorded.
    Insert {
        /// Key inserted.
        key: u64,
        /// Record size.
        len: u32,
    },
    /// Bare lookup (elastic/static): records a window query, caches nothing.
    Lookup {
        /// Key looked up.
        key: u64,
    },
    /// Close the current time slice (eviction + contraction may run).
    EndStep,
    /// Crash the `nth % node_count`-th active node (elastic family).
    FailNode {
        /// Which active node, by rank.
        nth: u32,
    },
    /// Advance the shared virtual clock (boot-delay interleaving).
    AdvanceClock {
        /// Microseconds to advance.
        us: u64,
    },
    /// Coordinator put over real sockets (live family).
    Put {
        /// Key stored.
        key: u64,
        /// Payload length.
        len: u32,
    },
    /// Coordinator get over real sockets (live family).
    Get {
        /// Key fetched.
        key: u64,
    },
    /// One (possibly faulted) protocol frame (proto family).
    Frame {
        /// The fault to inject.
        fault: Fault,
        /// The underlying well-formed operation.
        op: WireOp,
    },
}

impl SimEvent {
    fn encode(&self, out: &mut String) {
        use fmt::Write as _;
        let _ = match self {
            SimEvent::Query { key, len } => write!(out, "q{key}.{len}"),
            SimEvent::Insert { key, len } => write!(out, "i{key}.{len}"),
            SimEvent::Lookup { key } => write!(out, "l{key}"),
            SimEvent::EndStep => write!(out, "t"),
            SimEvent::FailNode { nth } => write!(out, "f{nth}"),
            SimEvent::AdvanceClock { us } => write!(out, "c{us}"),
            SimEvent::Put { key, len } => write!(out, "p{key}.{len}"),
            SimEvent::Get { key } => write!(out, "g{key}"),
            SimEvent::Frame { fault, op } => {
                match fault {
                    Fault::None => {}
                    Fault::Corrupt { pos, xor } => {
                        let _ = write!(out, "x{pos}.{xor}!");
                    }
                    Fault::Truncate { len } => {
                        let _ = write!(out, "u{len}!");
                    }
                    Fault::Duplicate => out.push_str("2!"),
                    Fault::Drop => out.push_str("d!"),
                    Fault::Fragment { pos } => {
                        let _ = write!(out, "s{pos}!");
                    }
                }
                match op {
                    WireOp::Get { key } => write!(out, "G{key}"),
                    WireOp::Put { key, len } => write!(out, "P{key}.{len}"),
                    WireOp::Remove { key } => write!(out, "R{key}"),
                    WireOp::Sweep { lo, hi } => write!(out, "W{lo}.{hi}"),
                    WireOp::Keys { lo, hi } => write!(out, "K{lo}.{hi}"),
                    WireOp::Stats => write!(out, "T"),
                    WireOp::Ping => write!(out, "I"),
                }
            }
        };
    }

    fn decode(s: &str) -> Result<SimEvent, String> {
        let bad = || format!("unparseable event `{s}`");
        // Optional fault prefix terminated by `!` (proto frames only).
        let (fault, rest) = match s.split_once('!') {
            Some((f, rest)) => {
                let fault = if f == "2" {
                    Fault::Duplicate
                } else if f == "d" {
                    Fault::Drop
                } else if let Some(args) = f.strip_prefix('x') {
                    let (pos, xor) = parse_pair(args).ok_or_else(bad)?;
                    Fault::Corrupt {
                        pos: pos as u32,
                        xor: xor as u8,
                    }
                } else if let Some(arg) = f.strip_prefix('u') {
                    Fault::Truncate {
                        len: arg.parse().map_err(|_| bad())?,
                    }
                } else if let Some(arg) = f.strip_prefix('s') {
                    Fault::Fragment {
                        pos: arg.parse().map_err(|_| bad())?,
                    }
                } else {
                    return Err(bad());
                };
                (Some(fault), rest)
            }
            None => (None, s),
        };
        let mut chars = rest.chars();
        let tag = chars.next().ok_or_else(bad)?;
        let args = chars.as_str();
        let ev = match tag {
            'q' => {
                let (key, len) = parse_pair(args).ok_or_else(bad)?;
                SimEvent::Query {
                    key,
                    len: len as u32,
                }
            }
            'i' => {
                let (key, len) = parse_pair(args).ok_or_else(bad)?;
                SimEvent::Insert {
                    key,
                    len: len as u32,
                }
            }
            'l' => SimEvent::Lookup {
                key: args.parse().map_err(|_| bad())?,
            },
            't' if args.is_empty() => SimEvent::EndStep,
            'f' => SimEvent::FailNode {
                nth: args.parse().map_err(|_| bad())?,
            },
            'c' => SimEvent::AdvanceClock {
                us: args.parse().map_err(|_| bad())?,
            },
            'p' => {
                let (key, len) = parse_pair(args).ok_or_else(bad)?;
                SimEvent::Put {
                    key,
                    len: len as u32,
                }
            }
            'g' => SimEvent::Get {
                key: args.parse().map_err(|_| bad())?,
            },
            'G' | 'P' | 'R' | 'W' | 'K' | 'T' | 'I' => {
                let op = match tag {
                    'G' => WireOp::Get {
                        key: args.parse().map_err(|_| bad())?,
                    },
                    'P' => {
                        let (key, len) = parse_pair(args).ok_or_else(bad)?;
                        WireOp::Put {
                            key,
                            len: len as u32,
                        }
                    }
                    'R' => WireOp::Remove {
                        key: args.parse().map_err(|_| bad())?,
                    },
                    'W' => {
                        let (lo, hi) = parse_pair(args).ok_or_else(bad)?;
                        WireOp::Sweep { lo, hi }
                    }
                    'K' => {
                        let (lo, hi) = parse_pair(args).ok_or_else(bad)?;
                        WireOp::Keys { lo, hi }
                    }
                    'T' if args.is_empty() => WireOp::Stats,
                    'I' if args.is_empty() => WireOp::Ping,
                    _ => return Err(bad()),
                };
                SimEvent::Frame {
                    fault: fault.unwrap_or(Fault::None),
                    op,
                }
            }
            _ => return Err(bad()),
        };
        if fault.is_some() && !matches!(ev, SimEvent::Frame { .. }) {
            return Err(format!("fault prefix on non-frame event `{s}`"));
        }
        Ok(ev)
    }
}

fn parse_pair(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once('.')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

/// SIMSEED format version emitted by this build.
pub const SIMSEED_VERSION: u32 = 1;

/// One fully explicit simulation case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Which harness runs it.
    pub family: Family,
    /// Cluster tunables.
    pub cfg: SimConfig,
    /// Ordered event list.
    pub events: Vec<SimEvent>,
}

impl Schedule {
    /// Serialize to a replayable `SIMSEED` string.
    pub fn encode(&self) -> String {
        let mut ev = String::new();
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            e.encode(&mut ev);
        }
        format!(
            "SIMSEED/{SIMSEED_VERSION}/{}/{}/{ev}",
            self.family.name(),
            self.cfg.encode()
        )
    }

    /// Parse a `SIMSEED` string.
    pub fn decode(s: &str) -> Result<Schedule, String> {
        let s = s.trim();
        let mut parts = s.splitn(5, '/');
        if parts.next() != Some("SIMSEED") {
            return Err("SIMSEED strings start with `SIMSEED/`".into());
        }
        let version: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("missing SIMSEED version")?;
        if version != SIMSEED_VERSION {
            return Err(format!("unsupported SIMSEED version {version}"));
        }
        let family = parts
            .next()
            .and_then(Family::parse)
            .ok_or("unknown SIMSEED family")?;
        let cfg = SimConfig::decode(parts.next().ok_or("missing config section")?)?;
        let events_str = parts.next().ok_or("missing events section")?;
        let mut events = Vec::new();
        for e in events_str.split(',').filter(|e| !e.is_empty()) {
            events.push(SimEvent::decode(e)?);
        }
        Ok(Schedule {
            family,
            cfg,
            events,
        })
    }

    /// A copy containing only the events whose index is flagged in `keep`
    /// (the shrinker's subset operation).
    pub fn subset(&self, keep: &[bool]) -> Schedule {
        Schedule {
            family: self.family,
            cfg: self.cfg.clone(),
            events: self
                .events
                .iter()
                .zip(keep)
                .filter_map(|(e, &k)| k.then_some(*e))
                .collect(),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Deterministic record payload for event `step` of a schedule: the bytes a
/// harness stores and its model predicts. Distinct `(key, step)` pairs give
/// distinct contents, so stale values after a replacement are detectable.
pub fn record_bytes(key: u64, len: u32, step: usize) -> Vec<u8> {
    let mut x = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simseed_roundtrips_every_event_kind() {
        let sched = Schedule {
            family: Family::Elastic,
            cfg: SimConfig {
                ring: 1024,
                cap: 1234,
                ord: 8,
                m: 3,
                alpha_pct: 97,
                eps: 2,
                min_nodes: 1,
                warm: 2,
                pf_pct: 70,
                boot_us: 1000,
                replicate: true,
                nodes: 3,
            },
            events: vec![
                SimEvent::Query { key: 5, len: 100 },
                SimEvent::Insert { key: 7, len: 60 },
                SimEvent::Lookup { key: 9 },
                SimEvent::EndStep,
                SimEvent::FailNode { nth: 2 },
                SimEvent::AdvanceClock { us: 500_000 },
                SimEvent::Put { key: 11, len: 40 },
                SimEvent::Get { key: 12 },
                SimEvent::Frame {
                    fault: Fault::None,
                    op: WireOp::Put { key: 1, len: 30 },
                },
                SimEvent::Frame {
                    fault: Fault::Corrupt { pos: 3, xor: 77 },
                    op: WireOp::Get { key: 2 },
                },
                SimEvent::Frame {
                    fault: Fault::Truncate { len: 4 },
                    op: WireOp::Sweep { lo: 1, hi: 9 },
                },
                SimEvent::Frame {
                    fault: Fault::Duplicate,
                    op: WireOp::Keys { lo: 0, hi: 64 },
                },
                SimEvent::Frame {
                    fault: Fault::Drop,
                    op: WireOp::Remove { key: 3 },
                },
                SimEvent::Frame {
                    fault: Fault::Fragment { pos: 6 },
                    op: WireOp::Put { key: 8, len: 25 },
                },
                SimEvent::Frame {
                    fault: Fault::None,
                    op: WireOp::Stats,
                },
                SimEvent::Frame {
                    fault: Fault::None,
                    op: WireOp::Ping,
                },
            ],
        };
        let enc = sched.encode();
        let dec = Schedule::decode(&enc).expect("decode own encoding");
        assert_eq!(dec, sched);
        // Encoding is canonical: decode(encode(x)).encode() == encode(x).
        assert_eq!(dec.encode(), enc);
    }

    #[test]
    fn empty_event_list_roundtrips() {
        let sched = Schedule {
            family: Family::Static,
            cfg: SimConfig::base(),
            events: vec![],
        };
        let dec = Schedule::decode(&sched.encode()).expect("decode");
        assert_eq!(dec, sched);
    }

    #[test]
    fn malformed_simseeds_are_rejected() {
        for bad in [
            "",
            "SIMSEED",
            "SIMSEED/9/elastic/cap=1/q1.1",
            "SIMSEED/1/bogus/cap=1/q1.1",
            "SIMSEED/1/elastic/cap=x/q1.1",
            "SIMSEED/1/elastic/cap=1/z9",
            "SIMSEED/1/elastic/cap=1/q1",
            "SIMSEED/1/elastic/cap=1/x1.1!q1.1",
            "SIMSEED/1/elastic/notkv/t",
        ] {
            assert!(Schedule::decode(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn subset_keeps_flagged_events() {
        let sched = Schedule {
            family: Family::Elastic,
            cfg: SimConfig::base(),
            events: vec![
                SimEvent::EndStep,
                SimEvent::Lookup { key: 1 },
                SimEvent::EndStep,
            ],
        };
        let sub = sched.subset(&[true, false, true]);
        assert_eq!(sub.events, vec![SimEvent::EndStep, SimEvent::EndStep]);
    }

    #[test]
    fn record_bytes_vary_by_key_and_step() {
        let a = record_bytes(1, 16, 0);
        let b = record_bytes(1, 16, 1);
        let c = record_bytes(2, 16, 0);
        assert_eq!(a.len(), 16);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, record_bytes(1, 16, 0));
    }
}
