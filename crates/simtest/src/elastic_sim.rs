//! The elastic-family harness: drives an [`ElasticCache`] through a
//! schedule and checks every step against the flat-map + model-window
//! oracle and the PR-1 invariant auditors (promoted to hard failures).

use std::collections::{BTreeMap, BTreeSet};

use ecc_cloudsim::{BootLatency, InstanceType, NetModel, SimClock};
use ecc_core::{CacheConfig, ElasticCache, NodeId, Record, WindowConfig};
use ecc_obs::ObsEvent;

use crate::event::{record_bytes, Schedule, SimConfig, SimEvent};
use crate::model::ModelWindow;
use crate::runner::SimFailure;

/// Virtual service time charged per cache miss (constant; latency does not
/// affect the correctness oracles).
const SERVICE_US: u64 = 1_000;

/// Map a schedule config onto a full [`CacheConfig`].
pub fn cache_config(cfg: &SimConfig) -> CacheConfig {
    CacheConfig {
        ring_range: cfg.ring,
        node_capacity_bytes: cfg.cap,
        btree_order: cfg.ord.max(4),
        instance_type: InstanceType::custom("sim.node", cfg.cap, 1_000),
        boot_latency: if cfg.boot_us == 0 {
            BootLatency::instant()
        } else {
            BootLatency::fixed(cfg.boot_us)
        },
        net: NetModel::instant(),
        merge_fill_threshold: 0.65,
        contraction_epsilon: cfg.eps.max(1),
        window: (cfg.m > 0).then(|| WindowConfig {
            slices: cfg.m,
            alpha: cfg.alpha(),
            threshold: None,
        }),
        min_nodes: cfg.min_nodes.max(1),
        lookup_overhead_us: 0,
        seed: 7,
        warm_pool: cfg.warm,
        proactive_split_fill: (cfg.pf_pct > 0).then(|| cfg.pf_pct as f64 / 100.0),
        adaptive_window: None,
        replicate: cfg.replicate,
        overflow_tier: None,
    }
}

/// All resident primaries as `key -> payload bytes`, read without touching
/// the window, clock, or metrics.
fn resident(cache: &ElasticCache) -> BTreeMap<u64, Vec<u8>> {
    let mut out = BTreeMap::new();
    for (_, node) in cache.nodes() {
        for (&k, rec) in node.iter() {
            out.insert(k, rec.as_slice().to_vec());
        }
    }
    out
}

/// Run one elastic-family schedule to completion or first divergence.
pub fn run(s: &Schedule) -> Result<(), SimFailure> {
    let cfg = &s.cfg;
    let clock = SimClock::new();
    let mut cache = ElasticCache::with_clock(cache_config(cfg), clock.clone());
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut window = (cfg.m > 0).then(|| ModelWindow::new(cfg.m, cfg.alpha(), cfg.threshold()));
    let mut model_evictions = 0u64;
    // Flight-recorder cursor for Oracle 3 (the event stream): drained
    // incrementally so a long schedule never outruns the bounded ring.
    let mut obs_cursor = cache.obs().next_seq();

    for (step, ev) in s.events.iter().enumerate() {
        let fail = |what: String| SimFailure::at(step, what);
        match *ev {
            SimEvent::Query { key, len } => {
                let key = key % cfg.ring;
                if let Some(w) = &mut window {
                    w.note(key);
                }
                let expect_hit = model.get(&key).cloned();
                let produced = record_bytes(key, len, step);
                let errors_before = cache.metrics().insert_errors;
                let produced_for_miss = produced.clone();
                let rec = cache.query(key, SERVICE_US, move || Record::from_vec(produced_for_miss));
                match expect_hit {
                    Some(want) => {
                        if rec.as_slice() != want.as_slice() {
                            return Err(fail(format!(
                                "query({key}) should hit with {}B but served {}B \
                                 (record lost or stale)",
                                want.len(),
                                rec.len()
                            )));
                        }
                    }
                    None => {
                        if rec.as_slice() != produced.as_slice() {
                            return Err(fail(format!(
                                "query({key}) should miss and serve the fresh record \
                                 but returned different bytes (phantom hit)"
                            )));
                        }
                        let admitted =
                            len as u64 <= cfg.cap && cache.metrics().insert_errors == errors_before;
                        if admitted {
                            model.insert(key, produced);
                        }
                    }
                }
            }
            SimEvent::Insert { key, len } => {
                let key = key % cfg.ring;
                let bytes = record_bytes(key, len, step);
                // A rejected insert leaves the model unchanged.
                if cache.insert(key, Record::from_vec(bytes.clone())).is_ok() {
                    model.insert(key, bytes);
                }
            }
            SimEvent::Lookup { key } => {
                let key = key % cfg.ring;
                if let Some(w) = &mut window {
                    w.note(key);
                }
                let got = cache.lookup(key).map(|r| r.as_slice().to_vec());
                let want = model.get(&key).cloned();
                if got != want {
                    return Err(fail(format!(
                        "lookup({key}) returned {:?}B, model says {:?}B",
                        got.map(|v| v.len()),
                        want.map(|v| v.len())
                    )));
                }
            }
            SimEvent::EndStep => {
                cache.end_time_step();
                let mut removed_this_step: Vec<u64> = Vec::new();
                if let Some(w) = &mut window {
                    if let Some(expired) = w.end_slice() {
                        for k in w.victims(&expired) {
                            if model.remove(&k).is_some() {
                                model_evictions += 1;
                                removed_this_step.push(k);
                            }
                        }
                    }
                }
                // Oracle 3: the flight-recorder event stream. Drain every
                // event since the previous drain and check that (a) the
                // EvictBatch events name exactly the keys the model just
                // removed, bit-exactly, and (b) every NodeMerge pairs with
                // a NodeDealloc of the drained node in the same batch.
                let drained = cache.obs().events_since(obs_cursor);
                if let Some(&(first_seq, _)) = drained.first() {
                    if first_seq != obs_cursor {
                        return Err(fail(format!(
                            "flight recorder dropped events {obs_cursor}..{first_seq} \
                             before the oracle could drain them"
                        )));
                    }
                }
                obs_cursor = cache.obs().next_seq();
                let mut evicted_keys: Vec<u64> = Vec::new();
                let mut merged_srcs: Vec<u32> = Vec::new();
                let mut deallocs: BTreeSet<u32> = BTreeSet::new();
                for (_, ev) in &drained {
                    match ev {
                        ObsEvent::EvictBatch { keys, .. } => {
                            evicted_keys.extend_from_slice(keys);
                        }
                        ObsEvent::NodeMerge { src, .. } => merged_srcs.push(*src),
                        ObsEvent::NodeDealloc { node, .. } => {
                            deallocs.insert(*node);
                        }
                        _ => {}
                    }
                }
                evicted_keys.sort_unstable();
                removed_this_step.sort_unstable();
                if evicted_keys != removed_this_step {
                    return Err(fail(format!(
                        "EvictBatch events name keys {evicted_keys:?} but the model \
                         evicted {removed_this_step:?}"
                    )));
                }
                for src in merged_srcs {
                    if !deallocs.contains(&src) {
                        return Err(fail(format!(
                            "NodeMerge drained node {src} without a paired NodeDealloc \
                             in the same step"
                        )));
                    }
                }
            }
            SimEvent::FailNode { nth } => {
                let active: Vec<NodeId> = cache.nodes().map(|(id, _)| id).collect();
                if active.is_empty() {
                    return Err(fail("no active node to fail".into()));
                }
                let target = active[nth as usize % active.len()];
                let pre_keys: Vec<u64> = cache
                    .nodes()
                    .find(|(id, _)| *id == target)
                    .map(|(_, n)| n.iter().map(|(&k, _)| k).collect())
                    .unwrap_or_default();
                let outcome = cache.fail_node(target);
                let survivors: BTreeSet<u64> = resident(&cache).into_keys().collect();
                let recovered = pre_keys.iter().filter(|k| survivors.contains(k)).count();
                if outcome.records_recovered != recovered
                    || outcome.records_lost != pre_keys.len() - recovered
                {
                    return Err(fail(format!(
                        "fail_node({target}) reported lost={} recovered={} but the fleet \
                         actually retained {recovered} of {} resident records",
                        outcome.records_lost,
                        outcome.records_recovered,
                        pre_keys.len()
                    )));
                }
                model.retain(|k, _| survivors.contains(k));
            }
            SimEvent::AdvanceClock { us } => {
                clock.advance_us(us);
            }
            other => {
                return Err(fail(format!(
                    "event {other:?} is not part of the elastic family"
                )));
            }
        }

        // Oracle 2: the PR-1 invariant auditors, as hard assertions.
        if let Err(e) = cache.check_invariants() {
            return Err(fail(format!("invariant violated: {e}")));
        }
        // Oracle 1: full differential content sweep against the flat model.
        let actual = resident(&cache);
        if actual != model {
            return Err(fail(content_divergence(&actual, &model)));
        }
        let m = cache.metrics();
        if m.hits + m.misses != m.queries {
            return Err(fail(format!(
                "metrics out of balance: {} hits + {} misses != {} queries",
                m.hits, m.misses, m.queries
            )));
        }
        if m.evictions != model_evictions {
            return Err(fail(format!(
                "cache evicted {} records, model predicted {model_evictions}",
                m.evictions
            )));
        }
    }
    Ok(())
}

/// Human-readable summary of the first difference between the cache's
/// resident content and the model's.
pub fn content_divergence(
    actual: &BTreeMap<u64, Vec<u8>>,
    model: &BTreeMap<u64, Vec<u8>>,
) -> String {
    for (k, v) in model {
        match actual.get(k) {
            None => return format!("key {k} in model ({}B) but missing from cache", v.len()),
            Some(a) if a != v => {
                return format!(
                    "key {k} holds {}B in cache but model expects {}B (stale payload)",
                    a.len(),
                    v.len()
                )
            }
            Some(_) => {}
        }
    }
    for (k, v) in actual {
        if !model.contains_key(k) {
            return format!(
                "key {k} resident in cache ({}B) but absent from model",
                v.len()
            );
        }
    }
    "content diverged (unlocalised)".into()
}
