//! The static-family harness: drives the fixed-fleet [`StaticCache`]
//! baseline against a per-node reference LRU model ([`ModelLru`]).

use ecc_core::{Record, StaticCache};

use crate::elastic_sim::cache_config;
use crate::event::{record_bytes, Schedule, SimEvent};
use crate::model::ModelLru;
use crate::runner::SimFailure;

/// Virtual service time charged per cache miss.
const SERVICE_US: u64 = 1_000;

/// The reference fleet: one [`ModelLru`] per node at the production bucket
/// positions, plus mirrored metric counters.
struct ModelFleet {
    /// Bucket position of node `i` on the hash line.
    positions: Vec<u64>,
    nodes: Vec<ModelLru>,
    capacity: u64,
    queries: u64,
    hits: u64,
    misses: u64,
    lru_evictions: u64,
}

impl ModelFleet {
    fn new(ring: u64, cap: u64, n: usize) -> Self {
        let positions = (0..n)
            .map(|i| ((i as u64 + 1) * ring) / n as u64 - 1)
            .collect();
        Self {
            positions,
            nodes: (0..n).map(|_| ModelLru::new()).collect(),
            capacity: cap,
            queries: 0,
            hits: 0,
            misses: 0,
            lru_evictions: 0,
        }
    }

    /// Index of the node owning `key` (smallest bucket position ≥ key; the
    /// last bucket sits at `ring - 1`, so in-range keys always resolve).
    fn owner(&self, key: u64) -> usize {
        self.positions
            .iter()
            .position(|&p| p >= key)
            .unwrap_or(self.nodes.len() - 1)
    }

    /// Intended insert semantics: oversized records are skipped; otherwise
    /// the owner displaces LRU entries until the record fits — including
    /// when a replacement *grows* an existing entry past capacity.
    fn insert(&mut self, key: u64, value: Vec<u8>) {
        let size = value.len() as u64;
        if size > self.capacity {
            return;
        }
        let cap = self.capacity;
        let owner = self.owner(key);
        let node = &mut self.nodes[owner];
        if node.contains(key) {
            node.insert(key, value);
            while node.bytes() > cap {
                if node.pop_lru().is_none() {
                    break;
                }
                self.lru_evictions += 1;
            }
        } else {
            while node.bytes() + size > cap {
                if node.pop_lru().is_none() {
                    break;
                }
                self.lru_evictions += 1;
            }
            node.insert(key, value);
        }
    }

    /// Mirror of `StaticCache::lookup` (touches on hit, counts both ways).
    fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.queries += 1;
        let owner = self.owner(key);
        let node = &mut self.nodes[owner];
        match node.get(key).cloned() {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn total_records(&self) -> usize {
        self.nodes.iter().map(ModelLru::len).sum()
    }

    fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(ModelLru::bytes).sum()
    }
}

/// Run one static-family schedule to completion or first divergence.
pub fn run(s: &Schedule) -> Result<(), SimFailure> {
    let cfg = &s.cfg;
    let n = cfg.nodes.max(1);
    let mut cache = StaticCache::new(&cache_config(cfg), n);
    let mut model = ModelFleet::new(cfg.ring, cfg.cap, n);

    for (step, ev) in s.events.iter().enumerate() {
        let fail = |what: String| SimFailure::at(step, what);
        match *ev {
            SimEvent::Query { key, len } => {
                let key = key % cfg.ring;
                let expect_hit = model.lookup(key);
                let produced = record_bytes(key, len, step);
                let produced_for_miss = produced.clone();
                let rec = cache.query(key, SERVICE_US, move || Record::from_vec(produced_for_miss));
                match expect_hit {
                    Some(want) => {
                        if rec.as_slice() != want.as_slice() {
                            return Err(fail(format!(
                                "query({key}) should hit with {}B but served {}B",
                                want.len(),
                                rec.len()
                            )));
                        }
                    }
                    None => {
                        if rec.as_slice() != produced.as_slice() {
                            return Err(fail(format!(
                                "query({key}) should miss and serve fresh bytes \
                                 (phantom hit)"
                            )));
                        }
                        model.insert(key, produced);
                    }
                }
            }
            SimEvent::Insert { key, len } => {
                let key = key % cfg.ring;
                let bytes = record_bytes(key, len, step);
                cache.insert(key, Record::from_vec(bytes.clone()));
                model.insert(key, bytes);
            }
            SimEvent::Lookup { key } => {
                let key = key % cfg.ring;
                let got = cache.lookup(key).map(|r| r.as_slice().to_vec());
                let want = model.lookup(key);
                if got != want {
                    return Err(fail(format!(
                        "lookup({key}) returned {:?}B, model says {:?}B",
                        got.map(|v| v.len()),
                        want.map(|v| v.len())
                    )));
                }
            }
            other => {
                return Err(fail(format!(
                    "event {other:?} is not part of the static family"
                )));
            }
        }

        if cache.total_records() != model.total_records() {
            return Err(fail(format!(
                "cache holds {} records, model {}",
                cache.total_records(),
                model.total_records()
            )));
        }
        if cache.total_bytes() != model.total_bytes() {
            return Err(fail(format!(
                "cache holds {}B, model {}B (byte accounting or displacement bug)",
                cache.total_bytes(),
                model.total_bytes()
            )));
        }
        if cache.total_bytes() > cfg.cap * n as u64 {
            return Err(fail(format!(
                "fleet over capacity: {}B resident, {}B budget",
                cache.total_bytes(),
                cfg.cap * n as u64
            )));
        }
        let m = cache.metrics();
        if (m.queries, m.hits, m.misses, m.lru_evictions)
            != (model.queries, model.hits, model.misses, model.lru_evictions)
        {
            return Err(fail(format!(
                "metrics diverged: cache (q={}, h={}, m={}, evict={}) vs model \
                 (q={}, h={}, m={}, evict={})",
                m.queries,
                m.hits,
                m.misses,
                m.lru_evictions,
                model.queries,
                model.hits,
                model.misses,
                model.lru_evictions
            )));
        }
    }

    // Final content sweep: every record the model retains must be served
    // back byte-for-byte. Both sides touch recency identically, so the
    // sweep itself cannot introduce divergence.
    let keys: Vec<u64> = model
        .nodes
        .iter()
        .flat_map(|n| n.sorted().into_iter().map(|(k, _)| k))
        .collect();
    for key in keys {
        let got = cache.lookup(key).map(|r| r.as_slice().to_vec());
        let want = model.lookup(key);
        if got != want {
            return Err(SimFailure::end(format!(
                "final sweep: key {key} served {:?}B, model says {:?}B",
                got.map(|v| v.len()),
                want.map(|v| v.len())
            )));
        }
    }
    Ok(())
}
