//! Bounded interleaving explorer for the `ShardedNode` concurrency model
//! — a mini-loom with no dependencies.
//!
//! Real threads cannot be paused mid-instruction, so racy interleavings
//! only show up probabilistically under stress tests. This module makes
//! them deterministic instead: model threads are explicit step machines,
//! a cooperative virtual scheduler enumerates **every** schedule (thread
//! choice sequence) up to an optional preemption bound, and each schedule
//! is replayed from scratch with invariants checked after every step.
//!
//! Two exploration levels:
//!
//! * **Micro-step admission model** ([`explore_admission`]) — the
//!   CAS-reserve capacity admission of `ShardedNode::put` modeled at the
//!   granularity of individual atomic operations (load, compare-exchange,
//!   blind add). [`AdmissionImpl::CasReserve`] mirrors the real
//!   `fetch_update` loop and must never over-commit under *any*
//!   schedule; [`AdmissionImpl::CheckThenAdd`] is the classic
//!   check-then-act bug kept as a permanent self-check — the explorer
//!   must find its over-commit, or the explorer itself is broken.
//! * **Op-level differential model** ([`explore_node_ops`]) — 2–3 model
//!   threads run put/get/remove/audit sequences against a real
//!   [`ShardedNode`], every interleaving of whole operations, checked
//!   against a flat `BTreeMap` oracle at every quiescent point plus
//!   `check_invariants` after every step. Operations are linearizable
//!   (PR 5), so op-level exploration is exhaustive for cross-op effects.
//!
//! Failing schedules are delta-debug shrunk ([`crate::shrink_items`])
//! under tolerant replay: choices naming a finished thread are skipped,
//! and execution is completed round-robin, so every shrunk candidate is
//! still a valid schedule. Guarantees and bounds are documented in
//! DESIGN.md §13.

use std::collections::BTreeMap;

use ecc_core::{PutOutcome, Record, ShardedNode};

use crate::shrink::shrink_items;

/// Which admission algorithm the micro-step model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionImpl {
    /// The real algorithm: retry loop of `load` + `compare_exchange`
    /// reserving the growth before any stripe mutation. Sound: a CAS
    /// only commits if the observed value is still current.
    CasReserve,
    /// The deliberately broken variant: separate capacity check and
    /// blind `fetch_add`. Two threads can both pass the check before
    /// either adds — the over-commit the explorer must catch.
    CheckThenAdd,
}

/// Explorer tunables.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Max preemptions (switches away from a still-runnable thread).
    /// `None` explores the full schedule space.
    pub preemption_bound: Option<usize>,
    /// Hard cap on enumerated schedules; enumeration stops (and the
    /// report notes truncation) when it is hit.
    pub max_schedules: usize,
}

impl ExploreConfig {
    /// Exhaustive exploration with a generous schedule cap.
    pub fn exhaustive() -> Self {
        ExploreConfig {
            preemption_bound: None,
            max_schedules: 2_000_000,
        }
    }

    /// CI smoke profile: preemption-bounded, tight cap.
    pub fn smoke() -> Self {
        ExploreConfig {
            preemption_bound: Some(3),
            max_schedules: 200_000,
        }
    }
}

/// One failing schedule: the original choice sequence, its shrunk form,
/// and what went wrong.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// Thread choices as enumerated.
    pub choices: Vec<usize>,
    /// Delta-debug shrunk choices (tolerant replay still fails).
    pub shrunk: Vec<usize>,
    /// Human-readable description of the violated property.
    pub reason: String,
}

/// Outcome of exploring one model exhaustively.
#[derive(Debug, Clone)]
#[must_use]
pub struct ExploreReport {
    /// Which model ran (for display).
    pub model: String,
    /// Schedules executed.
    pub schedules: usize,
    /// True when enumeration hit `max_schedules` before exhausting the
    /// space — a passing truncated run is *not* a proof.
    pub truncated: bool,
    /// The preemption bound the enumeration ran under (`None` = the full
    /// schedule space). A bounded pass proves the property only for
    /// schedules within the bound.
    pub preemption_bound: Option<usize>,
    /// Schedules that violated a property (deduplicated by reason; the
    /// first witness per reason is kept).
    pub failures: Vec<ScheduleFailure>,
}

impl ExploreReport {
    /// True when the explored space contained no violation and the
    /// enumeration was not truncated.
    pub fn proven(&self) -> bool {
        self.failures.is_empty() && !self.truncated
    }
}

// ---------------------------------------------------------------------
// Schedule enumeration
// ---------------------------------------------------------------------

/// Enumerate thread-choice schedules for threads with the given step
/// counts, depth-first, up to `cfg.preemption_bound` preemptions and
/// `cfg.max_schedules` schedules. Returns `(schedules, truncated)`.
fn enumerate_schedules(steps: &[usize], cfg: &ExploreConfig) -> (Vec<Vec<usize>>, bool) {
    let mut out = Vec::new();
    let mut remaining: Vec<usize> = steps.to_vec();
    let mut prefix: Vec<usize> = Vec::new();
    let total: usize = steps.iter().sum();
    let mut truncated = false;
    dfs(
        &mut remaining,
        &mut prefix,
        None,
        0,
        total,
        cfg,
        &mut out,
        &mut truncated,
    );
    (out, truncated)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    remaining: &mut Vec<usize>,
    prefix: &mut Vec<usize>,
    last: Option<usize>,
    preemptions: usize,
    total: usize,
    cfg: &ExploreConfig,
    out: &mut Vec<Vec<usize>>,
    truncated: &mut bool,
) {
    if *truncated {
        return;
    }
    if prefix.len() == total {
        out.push(prefix.clone());
        if out.len() >= cfg.max_schedules {
            *truncated = true;
        }
        return;
    }
    for t in 0..remaining.len() {
        if remaining[t] == 0 {
            continue;
        }
        // Switching away from a thread that could have continued costs
        // one preemption.
        let is_preempt = match last {
            Some(l) => t != l && remaining[l] > 0,
            None => false,
        };
        let p = preemptions + usize::from(is_preempt);
        if let Some(bound) = cfg.preemption_bound {
            if p > bound {
                continue;
            }
        }
        remaining[t] -= 1;
        prefix.push(t);
        dfs(remaining, prefix, Some(t), p, total, cfg, out, truncated);
        prefix.pop();
        remaining[t] += 1;
    }
}

// ---------------------------------------------------------------------
// Micro-step admission model
// ---------------------------------------------------------------------

/// CAS retry attempts per thread; each attempt is two micro-steps
/// (observe, commit), so every thread consumes exactly `2 * RETRIES`
/// steps and schedule lengths stay static across interleavings.
const RETRIES: usize = 2;

/// Parameters of one admission exploration.
#[derive(Debug, Clone)]
pub struct AdmissionModel {
    /// Which algorithm to run.
    pub algo: AdmissionImpl,
    /// Number of competing threads.
    pub threads: usize,
    /// Capacity in units.
    pub capacity: u64,
    /// Units each thread tries to reserve.
    pub need: u64,
}

/// Per-thread state of the micro-step machine.
#[derive(Debug, Clone)]
struct AdmThread {
    /// Value of `used` observed by the last observe step (None before).
    observed: Option<u64>,
    /// Attempts left (CasReserve only).
    attempts: usize,
    /// Reserved successfully.
    committed: bool,
    /// Gave up (rejected); remaining steps are no-ops.
    done: bool,
}

/// Run one schedule of the admission model from scratch; returns the
/// violated property, if any.
fn run_admission(model: &AdmissionModel, choices: &[usize]) -> Result<(), String> {
    let mut used: u64 = 0;
    let mut threads: Vec<AdmThread> = (0..model.threads)
        .map(|_| AdmThread {
            observed: None,
            attempts: RETRIES,
            committed: false,
            done: false,
        })
        .collect();

    for &t in choices {
        let th = &mut threads[t];
        if th.done || th.committed {
            // Finished threads burn their remaining steps as no-ops so
            // every schedule has the same length.
            continue;
        }
        match th.observed {
            None => {
                // Observe step: read `used` (and for CheckThenAdd, decide).
                th.observed = Some(used);
            }
            Some(seen) => {
                // Commit step.
                match model.algo {
                    AdmissionImpl::CasReserve => {
                        if seen + model.need > model.capacity {
                            th.done = true; // reject: over capacity as observed
                        } else if used == seen {
                            used += model.need; // CAS success
                            th.committed = true;
                        } else {
                            // CAS failed: retry (re-observe) if attempts remain.
                            th.attempts -= 1;
                            th.observed = None;
                            if th.attempts == 0 {
                                th.done = true;
                            }
                        }
                    }
                    AdmissionImpl::CheckThenAdd => {
                        if seen + model.need > model.capacity {
                            th.done = true;
                        } else {
                            used += model.need; // blind add — no re-validation
                            th.committed = true;
                        }
                    }
                }
            }
        }
        // Safety property, checked after *every* step: reservations never
        // exceed capacity.
        if used > model.capacity {
            return Err(format!(
                "over-commit: used={used} > capacity={} after step of thread {t}",
                model.capacity
            ));
        }
    }

    // Quiescent accounting: committed reservations are exactly `used`.
    let committed: u64 = threads.iter().filter(|t| t.committed).count() as u64 * model.need;
    if committed != used {
        return Err(format!(
            "accounting drift: {committed} units committed but used={used}"
        ));
    }
    Ok(())
}

/// Tolerant replay of a (possibly shrunk) choice sequence: choices are
/// applied in order, then execution completes round-robin so that the
/// run always reaches quiescence. Used both for shrinking and replaying
/// reported schedules.
fn complete_schedule(steps: &[usize], choices: &[usize]) -> Vec<usize> {
    let mut remaining: Vec<usize> = steps.to_vec();
    let mut full = Vec::with_capacity(steps.iter().sum());
    for &t in choices {
        if t < remaining.len() && remaining[t] > 0 {
            remaining[t] -= 1;
            full.push(t);
        }
    }
    loop {
        let mut any = false;
        for (t, r) in remaining.iter_mut().enumerate() {
            if *r > 0 {
                *r -= 1;
                full.push(t);
                any = true;
            }
        }
        if !any {
            return full;
        }
    }
}

/// Exhaustively explore the admission model under `cfg`.
pub fn explore_admission(model: &AdmissionModel, cfg: &ExploreConfig) -> ExploreReport {
    let steps: Vec<usize> = vec![2 * RETRIES; model.threads];
    let (schedules, truncated) = enumerate_schedules(&steps, cfg);
    let mut failures: Vec<ScheduleFailure> = Vec::new();
    for choices in &schedules {
        if let Err(reason) = run_admission(model, choices) {
            if failures.iter().any(|f| f.reason == reason) {
                continue;
            }
            let shrunk = shrink_items(
                choices,
                |cand| {
                    let full = complete_schedule(&steps, cand);
                    run_admission(model, &full).is_err()
                },
                4096,
            );
            failures.push(ScheduleFailure {
                choices: choices.clone(),
                shrunk,
                reason,
            });
        }
    }
    ExploreReport {
        model: format!(
            "admission/{:?}/t{}/cap{}/need{}",
            model.algo, model.threads, model.capacity, model.need
        ),
        schedules: schedules.len(),
        truncated,
        preemption_bound: cfg.preemption_bound,
        failures,
    }
}

// ---------------------------------------------------------------------
// Op-level differential model over the real ShardedNode
// ---------------------------------------------------------------------

/// One whole `ShardedNode` operation (linearizable, so op-level steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelOp {
    /// `put(key, filler(len))`.
    Put {
        /// Record key.
        key: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// `get(key)` — result checked against the oracle.
    Get {
        /// Record key.
        key: u64,
    },
    /// `remove(key)` — result checked against the oracle.
    Remove {
        /// Record key.
        key: u64,
    },
    /// `check_invariants()` — the auditor as an op, racing point ops.
    Audit,
}

/// Run one op-level schedule against a fresh node + flat oracle.
fn run_node_ops(
    threads: &[Vec<ModelOp>],
    capacity: u64,
    stripes: usize,
    choices: &[usize],
) -> Result<(), String> {
    let node = ShardedNode::new(capacity, 8, stripes);
    let mut oracle: BTreeMap<u64, usize> = BTreeMap::new();
    let mut oracle_used: u64 = 0;
    let mut cursors = vec![0usize; threads.len()];

    for &t in choices {
        let Some(ops) = threads.get(t) else {
            return Err(format!("schedule names unknown thread {t}"));
        };
        let Some(&op) = ops.get(cursors[t]) else {
            continue; // finished thread: no-op step
        };
        cursors[t] += 1;
        match op {
            ModelOp::Put { key, len } => {
                // The oracle charges the same true slab footprint as the
                // engine's admission CAS — `slab::footprint` is the shared
                // pure function, so the differential stays bit-exact.
                let new_fp = ecc_core::slab::footprint(len);
                let old_fp = oracle
                    .get(&key)
                    .map(|&l| ecc_core::slab::footprint(l))
                    .unwrap_or(0);
                let growth = new_fp.saturating_sub(old_fp);
                let fits = oracle_used + growth <= capacity;
                let outcome = node.put(key, Record::filler(len));
                match (outcome, fits) {
                    (PutOutcome::Stored, true) => {
                        oracle.insert(key, len);
                    }
                    (PutOutcome::Overflow, false) => {}
                    (PutOutcome::Stored, false) => {
                        return Err(format!(
                            "put({key},{len}) stored but oracle says over capacity \
                             (used={oracle_used}, cap={capacity})"
                        ));
                    }
                    (PutOutcome::Overflow, true) => {
                        return Err(format!(
                            "put({key},{len}) overflowed but oracle says it fits \
                             (used={oracle_used}, cap={capacity})"
                        ));
                    }
                }
            }
            ModelOp::Get { key } => {
                let got = node.get(key).map(|r| r.len());
                let want = oracle.get(&key).copied();
                if got != want {
                    return Err(format!("get({key}) = {got:?}, oracle says {want:?}"));
                }
            }
            ModelOp::Remove { key } => {
                let got = node.remove(key).map(|r| r.len());
                let want = oracle.remove(&key);
                if got != want {
                    return Err(format!("remove({key}) = {got:?}, oracle says {want:?}"));
                }
            }
            ModelOp::Audit => {
                if let Err(e) = node.check_invariants() {
                    return Err(format!("mid-schedule audit failed: {e}"));
                }
            }
        }
        oracle_used = oracle.values().map(|&l| ecc_core::slab::footprint(l)).sum();
        // Global safety property after every op: accounting never exceeds
        // capacity and matches the oracle byte-for-byte.
        if node.used_bytes() != oracle_used {
            return Err(format!(
                "used_bytes {} diverged from oracle {oracle_used} after {op:?}",
                node.used_bytes()
            ));
        }
        if node.used_bytes() > capacity {
            return Err(format!(
                "capacity breached: used={} > cap={capacity}",
                node.used_bytes()
            ));
        }
    }

    // Quiescent point: full audit + content equality.
    if let Err(e) = node.check_invariants() {
        return Err(format!("quiescent audit failed: {e}"));
    }
    if node.record_count() != oracle.len() as u64 {
        return Err(format!(
            "record_count {} != oracle {}",
            node.record_count(),
            oracle.len()
        ));
    }
    for (&k, &len) in &oracle {
        if node.get(k).map(|r| r.len()) != Some(len) {
            return Err(format!("quiescent content mismatch on key {k}"));
        }
    }
    Ok(())
}

/// Explore every interleaving of the given per-thread op sequences
/// against a real `ShardedNode`, differentially checked against a flat
/// map oracle.
pub fn explore_node_ops(
    threads: &[Vec<ModelOp>],
    capacity: u64,
    stripes: usize,
    cfg: &ExploreConfig,
) -> ExploreReport {
    let steps: Vec<usize> = threads.iter().map(Vec::len).collect();
    let (schedules, truncated) = enumerate_schedules(&steps, cfg);
    let mut failures: Vec<ScheduleFailure> = Vec::new();
    for choices in &schedules {
        if let Err(reason) = run_node_ops(threads, capacity, stripes, choices) {
            if failures.iter().any(|f| f.reason == reason) {
                continue;
            }
            let shrunk = shrink_items(
                choices,
                |cand| {
                    let full = complete_schedule(&steps, cand);
                    run_node_ops(threads, capacity, stripes, &full).is_err()
                },
                4096,
            );
            failures.push(ScheduleFailure {
                choices: choices.clone(),
                shrunk,
                reason,
            });
        }
    }
    ExploreReport {
        model: format!("node-ops/t{}/cap{capacity}/stripes{stripes}", threads.len()),
        schedules: schedules.len(),
        truncated,
        preemption_bound: cfg.preemption_bound,
        failures,
    }
}

// ---------------------------------------------------------------------
// The suite behind `cargo xtask interleave`
// ---------------------------------------------------------------------

/// The standard op mix: three threads racing puts/gets/removes/audits on
/// overlapping keys near the capacity limit, where admission decisions
/// are schedule-dependent in the buggy world.
fn standard_node_threads(smoke: bool) -> Vec<Vec<ModelOp>> {
    if smoke {
        vec![
            vec![
                ModelOp::Put { key: 1, len: 40 },
                ModelOp::Put { key: 2, len: 40 },
                ModelOp::Get { key: 1 },
            ],
            vec![
                ModelOp::Put { key: 1, len: 60 },
                ModelOp::Remove { key: 2 },
                ModelOp::Audit,
            ],
        ]
    } else {
        vec![
            vec![
                ModelOp::Put { key: 1, len: 40 },
                ModelOp::Put { key: 2, len: 40 },
                ModelOp::Get { key: 1 },
            ],
            vec![
                ModelOp::Put { key: 1, len: 60 },
                ModelOp::Remove { key: 2 },
                ModelOp::Audit,
            ],
            vec![
                ModelOp::Put { key: 3, len: 30 },
                ModelOp::Audit,
                ModelOp::Get { key: 3 },
            ],
        ]
    }
}

/// Run the full explorer suite. `smoke` selects the CI profile (smaller
/// models, preemption bound 3); the full profile is exhaustive. The
/// returned reports include the deliberately broken `CheckThenAdd`
/// model, whose report **must** contain failures — the caller treats an
/// all-green broken model as an explorer bug.
pub fn run_interleave(smoke: bool) -> Vec<ExploreReport> {
    let cfg = if smoke {
        ExploreConfig::smoke()
    } else {
        ExploreConfig::exhaustive()
    };
    let threads = if smoke { 2 } else { 3 };
    let sound = AdmissionModel {
        algo: AdmissionImpl::CasReserve,
        threads,
        capacity: 1,
        need: 1,
    };
    let buggy = AdmissionModel {
        algo: AdmissionImpl::CheckThenAdd,
        threads,
        capacity: 1,
        need: 1,
    };
    // A capacity with headroom: multiple threads can commit, the order
    // decides who; CasReserve must stay exact anyway.
    let contended = AdmissionModel {
        algo: AdmissionImpl::CasReserve,
        threads,
        capacity: 2,
        need: 1,
    };
    vec![
        explore_admission(&sound, &cfg),
        explore_admission(&contended, &cfg),
        explore_admission(&buggy, &cfg),
        explore_node_ops(&standard_node_threads(smoke), 100, 4, &cfg),
    ]
}

/// True when a report is for a model that is *supposed* to fail (the
/// seeded bug demonstrating the explorer works).
pub fn is_seeded_bug(report: &ExploreReport) -> bool {
    report.model.contains("CheckThenAdd")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_counts_are_exact() {
        // Two threads, two steps each: C(4,2) = 6 interleavings.
        let (s, truncated) = enumerate_schedules(&[2, 2], &ExploreConfig::exhaustive());
        assert_eq!(s.len(), 6);
        assert!(!truncated);
        // Preemption bound 0: pure serial executions, one per thread order.
        let cfg = ExploreConfig {
            preemption_bound: Some(0),
            max_schedules: 1000,
        };
        let (s, _) = enumerate_schedules(&[2, 2, 2], &cfg);
        assert_eq!(s.len(), 6, "3! serial orders");
        // The cap truncates and reports it.
        let cfg = ExploreConfig {
            preemption_bound: None,
            max_schedules: 3,
        };
        let (s, truncated) = enumerate_schedules(&[2, 2], &cfg);
        assert_eq!(s.len(), 3);
        assert!(truncated);
    }

    #[test]
    fn cas_reserve_is_sound_under_every_schedule() {
        for threads in [2, 3] {
            for capacity in [1, 2, 3] {
                let report = explore_admission(
                    &AdmissionModel {
                        algo: AdmissionImpl::CasReserve,
                        threads,
                        capacity,
                        need: 1,
                    },
                    &ExploreConfig::exhaustive(),
                );
                assert!(
                    report.proven(),
                    "t={threads} cap={capacity}: {:?}",
                    report.failures
                );
                assert!(report.schedules > 0);
            }
        }
    }

    #[test]
    fn check_then_add_over_commits_and_shrinks_small() {
        let report = explore_admission(
            &AdmissionModel {
                algo: AdmissionImpl::CheckThenAdd,
                threads: 2,
                capacity: 1,
                need: 1,
            },
            &ExploreConfig::exhaustive(),
        );
        assert!(!report.failures.is_empty(), "the seeded bug must be caught");
        let f = &report.failures[0];
        assert!(f.reason.contains("over-commit"), "{}", f.reason);
        // The minimal witness is tiny: both threads observe before either
        // commits. Tolerant replay of the shrunk schedule still fails.
        assert!(f.shrunk.len() <= 4, "shrunk to {:?}", f.shrunk);
        let full = complete_schedule(&[2 * RETRIES; 2], &f.shrunk);
        assert!(run_admission(
            &AdmissionModel {
                algo: AdmissionImpl::CheckThenAdd,
                threads: 2,
                capacity: 1,
                need: 1,
            },
            &full
        )
        .is_err());
    }

    #[test]
    fn preemption_bound_two_still_catches_the_seeded_bug() {
        // The classic race needs exactly one preemption (switch after the
        // first thread's observe) — any bound ≥ 1 finds it.
        let report = explore_admission(
            &AdmissionModel {
                algo: AdmissionImpl::CheckThenAdd,
                threads: 2,
                capacity: 1,
                need: 1,
            },
            &ExploreConfig {
                preemption_bound: Some(1),
                max_schedules: 100_000,
            },
        );
        assert!(!report.failures.is_empty());
    }

    #[test]
    fn node_ops_differential_is_clean_exhaustively() {
        let report = explore_node_ops(
            &standard_node_threads(true),
            100,
            4,
            &ExploreConfig::exhaustive(),
        );
        assert!(report.proven(), "{:?}", report.failures);
        // C(6,3) = 20 interleavings of two 3-op threads.
        assert_eq!(report.schedules, 20);
    }

    #[test]
    fn node_ops_capacity_edge_is_schedule_independent() {
        // Capacity 100, competing replacement puts of 40/60 on one key plus
        // a 50-byte put on another: admission outcomes differ per schedule
        // but must always match the oracle's sequential view.
        let threads = vec![
            vec![ModelOp::Put { key: 1, len: 60 }, ModelOp::Audit],
            vec![
                ModelOp::Put { key: 1, len: 40 },
                ModelOp::Put { key: 9, len: 50 },
            ],
        ];
        let report = explore_node_ops(&threads, 100, 2, &ExploreConfig::exhaustive());
        assert!(report.proven(), "{:?}", report.failures);
    }

    #[test]
    fn suite_flags_only_the_seeded_bug() {
        let reports = run_interleave(true);
        assert_eq!(reports.len(), 4);
        for r in &reports {
            if is_seeded_bug(r) {
                assert!(!r.failures.is_empty(), "{}: seeded bug not caught", r.model);
            } else {
                assert!(r.failures.is_empty(), "{}: {:?}", r.model, r.failures);
            }
        }
    }
}
