//! Seeded schedule generation: `(family, seed) -> Schedule`, fully
//! deterministic — the same pair always yields the same schedule, on any
//! machine, so a bare seed number is as replayable as a SIMSEED string.

use ecc_workload::driver::Op;
use ecc_workload::keys::KeyDist;
use ecc_workload::scenario::Scenario;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::{Family, Fault, Schedule, SimConfig, SimEvent, WireOp};

/// Derive the family-specific RNG for a seed (distinct streams per family).
fn rng_for(family: Family, seed: u64) -> SmallRng {
    let tag = match family {
        Family::Elastic => 0x45u64,
        Family::Static => 0x53,
        Family::Proto => 0x50,
        Family::Live => 0x4C,
        Family::Workload => 0x57,
    };
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag)
}

/// One of the workload key distributions, chosen per schedule.
fn key_dist(rng: &mut SmallRng, space: u64) -> KeyDist {
    match rng.gen_range(0u32..3) {
        0 => KeyDist::uniform(space),
        1 => KeyDist::zipf(space, 1.0),
        _ => KeyDist::hotspot(space, (space / 16).max(1), 0.8),
    }
}

/// Generate the schedule for `(family, seed)`.
pub fn generate(family: Family, seed: u64) -> Schedule {
    let mut rng = rng_for(family, seed);
    match family {
        Family::Elastic => gen_elastic(&mut rng),
        Family::Static => gen_static(&mut rng),
        Family::Proto => gen_proto(&mut rng),
        Family::Live => gen_live(&mut rng),
        Family::Workload => gen_workload(&mut rng),
    }
}

fn gen_elastic(rng: &mut SmallRng) -> Schedule {
    let mut cfg = SimConfig::base();
    cfg.ring = 1024;
    cfg.cap = rng.gen_range(600u64..=4000);
    cfg.m = if rng.gen_bool(0.5) {
        0
    } else {
        rng.gen_range(1usize..=4)
    };
    cfg.alpha_pct = rng.gen_range(50u32..=99);
    cfg.eps = rng.gen_range(1u64..=4);
    cfg.warm = if rng.gen_bool(0.75) {
        0
    } else {
        rng.gen_range(1usize..=2)
    };
    cfg.pf_pct = if rng.gen_bool(0.7) {
        0
    } else {
        rng.gen_range(50u32..=90)
    };
    cfg.boot_us = if rng.gen_bool(0.5) {
        0
    } else {
        rng.gen_range(1_000u64..=200_000)
    };
    cfg.replicate = rng.gen_bool(0.25);

    let dist = key_dist(rng, 256);
    let n = rng.gen_range(40usize..=160);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let len = record_len(rng, cfg.cap);
        let roll = rng.gen_range(0u32..100);
        events.push(if roll < 45 {
            SimEvent::Query {
                key: dist.sample(rng),
                len,
            }
        } else if roll < 60 {
            SimEvent::Insert {
                key: dist.sample(rng),
                len,
            }
        } else if roll < 75 {
            SimEvent::Lookup {
                key: dist.sample(rng),
            }
        } else if roll < 90 {
            SimEvent::EndStep
        } else if roll < 95 {
            SimEvent::FailNode {
                nth: rng.gen_range(0u32..8),
            }
        } else {
            SimEvent::AdvanceClock {
                us: rng.gen_range(10_000u64..=500_000),
            }
        });
    }
    Schedule {
        family: Family::Elastic,
        cfg,
        events,
    }
}

/// Mostly in-range record sizes, with a 2% tail of oversized ones (larger
/// than a whole node) to exercise the rejection paths.
fn record_len(rng: &mut SmallRng, cap: u64) -> u32 {
    if rng.gen_bool(0.02) {
        rng.gen_range(cap + 1..=cap + 200) as u32
    } else {
        rng.gen_range(20u32..=300)
    }
}

/// Replay a deterministic slice of a zoo scenario's op stream through the
/// elastic event grammar: reads become full cached-service queries, writes
/// become bare inserts, scenario step boundaries close time slices. The
/// differential flat-map oracle then audits the cache under realistic
/// skew/burst shapes (shifting hot sets, flash crowds, tenant mixes) that
/// the uniform per-event rolls of `gen_elastic` never produce.
fn gen_workload(rng: &mut SmallRng) -> Schedule {
    let mut cfg = SimConfig::base();
    cfg.ring = 1024;
    cfg.cap = rng.gen_range(1_000u64..=6_000);
    cfg.m = if rng.gen_bool(0.25) {
        0
    } else {
        rng.gen_range(1usize..=4)
    };
    cfg.alpha_pct = rng.gen_range(50u32..=99);
    cfg.eps = rng.gen_range(1u64..=4);

    let scenarios = Scenario::all();
    let sc = &scenarios[rng.gen_range(0..scenarios.len())];
    let scen_seed = rng.gen::<u64>();
    let steps = rng.gen_range(2u64..=5);
    // Scenario rates run to thousands of ops per step; cap the schedule so
    // the battery stays fast and the shrinker's budget stays meaningful.
    const MAX_OPS: usize = 240;
    let mut events = Vec::new();
    let mut last_step = 0u64;
    for (step, op, key) in sc.events(scen_seed, steps).take(MAX_OPS) {
        while last_step < step {
            events.push(SimEvent::EndStep);
            last_step += 1;
        }
        let len = record_len(rng, cfg.cap);
        events.push(match op {
            Op::Read => SimEvent::Query { key, len },
            Op::Write => SimEvent::Insert { key, len },
        });
    }
    events.push(SimEvent::EndStep);
    Schedule {
        family: Family::Workload,
        cfg,
        events,
    }
}

fn gen_static(rng: &mut SmallRng) -> Schedule {
    let mut cfg = SimConfig::base();
    cfg.ring = 1024;
    cfg.cap = rng.gen_range(400u64..=2000);
    cfg.nodes = rng.gen_range(1usize..=4);

    let dist = key_dist(rng, 256);
    let n = rng.gen_range(60usize..=200);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let len = record_len(rng, cfg.cap);
        let roll = rng.gen_range(0u32..100);
        events.push(if roll < 50 {
            SimEvent::Query {
                key: dist.sample(rng),
                len,
            }
        } else if roll < 80 {
            SimEvent::Insert {
                key: dist.sample(rng),
                len,
            }
        } else {
            SimEvent::Lookup {
                key: dist.sample(rng),
            }
        });
    }
    Schedule {
        family: Family::Static,
        cfg,
        events,
    }
}

fn gen_proto(rng: &mut SmallRng) -> Schedule {
    let mut cfg = SimConfig::base();
    cfg.cap = rng.gen_range(400u64..=2000);

    let n = rng.gen_range(30usize..=80);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.gen_range(0u32..100);
        let fault = if roll < 45 {
            Fault::None
        } else if roll < 60 {
            Fault::Corrupt {
                pos: rng.gen_range(0u32..=40),
                xor: rng.gen_range(1u32..=255) as u8,
            }
        } else if roll < 70 {
            Fault::Truncate {
                len: rng.gen_range(0u32..=20),
            }
        } else if roll < 82 {
            Fault::Fragment {
                pos: rng.gen_range(0u32..=200),
            }
        } else if roll < 91 {
            Fault::Duplicate
        } else {
            Fault::Drop
        };
        let key = rng.gen_range(0u64..=64);
        let roll = rng.gen_range(0u32..100);
        let op = if roll < 30 {
            WireOp::Get { key }
        } else if roll < 70 {
            WireOp::Put {
                key,
                len: rng.gen_range(10u32..=120),
            }
        } else if roll < 80 {
            WireOp::Remove { key }
        } else if roll < 88 {
            // Bounds drawn independently: inverted ranges are fair game.
            WireOp::Sweep {
                lo: key,
                hi: rng.gen_range(0u64..=64),
            }
        } else if roll < 94 {
            WireOp::Keys {
                lo: key,
                hi: rng.gen_range(0u64..=64),
            }
        } else if roll < 98 {
            WireOp::Stats
        } else {
            WireOp::Ping
        };
        events.push(SimEvent::Frame { fault, op });
    }
    Schedule {
        family: Family::Proto,
        cfg,
        events,
    }
}

fn gen_live(rng: &mut SmallRng) -> Schedule {
    let mut cfg = SimConfig::base();
    cfg.ring = 4096;
    cfg.cap = rng.gen_range(600u64..=2000);
    cfg.m = if rng.gen_bool(0.5) {
        0
    } else {
        rng.gen_range(1usize..=3)
    };
    cfg.alpha_pct = rng.gen_range(50u32..=99);
    cfg.eps = rng.gen_range(1u64..=2);

    let dist = key_dist(rng, 128);
    let max_len = (cfg.cap / 4).min(200) as u32;
    let n = rng.gen_range(20usize..=60);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.gen_range(0u32..100);
        events.push(if roll < 45 {
            SimEvent::Put {
                key: dist.sample(rng),
                len: rng.gen_range(20u32..=max_len),
            }
        } else if roll < 85 {
            SimEvent::Get {
                key: dist.sample(rng),
            }
        } else {
            SimEvent::EndStep
        });
    }
    Schedule {
        family: Family::Live,
        cfg,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for family in Family::ALL {
            for seed in [0u64, 1, 42, u64::MAX] {
                let a = generate(family, seed);
                let b = generate(family, seed);
                assert_eq!(a, b, "{family}/{seed} not deterministic");
                assert_eq!(a.encode(), b.encode());
            }
        }
    }

    #[test]
    fn generated_schedules_roundtrip_through_simseed() {
        for family in Family::ALL {
            for seed in 0..20u64 {
                let sched = generate(family, seed);
                let enc = sched.encode();
                let dec = Schedule::decode(&enc).expect("own encoding decodes");
                assert_eq!(dec, sched, "{family}/{seed} did not roundtrip");
            }
        }
    }

    #[test]
    fn families_draw_distinct_streams() {
        let a = generate(Family::Elastic, 7);
        let b = generate(Family::Static, 7);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn workload_schedules_stay_inside_the_elastic_grammar() {
        for seed in 0..30u64 {
            let sched = generate(Family::Workload, seed);
            assert_eq!(sched.family, Family::Workload);
            assert!(
                matches!(sched.events.last(), Some(SimEvent::EndStep)),
                "seed {seed} does not close its final slice"
            );
            for ev in &sched.events {
                assert!(
                    matches!(
                        ev,
                        SimEvent::Query { .. } | SimEvent::Insert { .. } | SimEvent::EndStep
                    ),
                    "seed {seed} produced non-workload event {ev:?}"
                );
            }
        }
    }

    #[test]
    fn workload_schedules_cover_reads_and_writes() {
        // Across a handful of seeds the zoo must surface both op kinds
        // (write_heavy / multi_tenant carry writes; the rest are reads).
        let (mut reads, mut writes) = (0usize, 0usize);
        for seed in 0..40u64 {
            for ev in generate(Family::Workload, seed).events {
                match ev {
                    SimEvent::Query { .. } => reads += 1,
                    SimEvent::Insert { .. } => writes += 1,
                    _ => {}
                }
            }
        }
        assert!(reads > 0 && writes > 0, "reads={reads} writes={writes}");
    }
}
