//! Delta-debugging shrinker: reduce a failing schedule to a (locally)
//! minimal event list that still fails.
//!
//! Greedy chunk-halving: try removing runs of events, largest runs first,
//! re-running the harness on each candidate; keep any removal that still
//! fails. Terminates at a 1-minimal schedule (no single event can be
//! removed) or when the run budget is exhausted — either way the result is
//! a valid failing schedule, never worse than the input.

use crate::event::Schedule;

/// Shrink an arbitrary item list with at most `max_runs` candidate
/// executions. `still_fails` must return `true` when a candidate list
/// reproduces the failure. Greedy chunk-halving, identical to [`shrink`]
/// but usable for any sequence — the interleaving explorer shrinks
/// thread-choice schedules with it.
pub fn shrink_items<T: Clone>(
    orig: &[T],
    mut still_fails: impl FnMut(&[T]) -> bool,
    max_runs: usize,
) -> Vec<T> {
    let mut current: Vec<T> = orig.to_vec();
    let mut runs = 0usize;
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut progress = false;
        let mut start = 0usize;
        while start < current.len() {
            if runs >= max_runs {
                return current;
            }
            let end = (start + chunk).min(current.len());
            let candidate: Vec<T> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            runs += 1;
            if still_fails(&candidate) {
                current = candidate;
                progress = true;
                // Indices shifted left; retry the same start position.
            } else {
                start += chunk;
            }
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        } else if !progress {
            return current;
        }
    }
}

/// Shrink `orig` with at most `max_runs` candidate executions.
/// `still_fails` must return `true` when a candidate schedule reproduces
/// the failure.
pub fn shrink(
    orig: &Schedule,
    mut still_fails: impl FnMut(&Schedule) -> bool,
    max_runs: usize,
) -> Schedule {
    let template = orig.clone();
    let events = shrink_items(
        &orig.events,
        |candidate| {
            let sched = Schedule {
                family: template.family,
                cfg: template.cfg.clone(),
                events: candidate.to_vec(),
            };
            still_fails(&sched)
        },
        max_runs,
    );
    Schedule {
        family: template.family,
        cfg: template.cfg,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Family, SimConfig, SimEvent};

    fn sched(n: usize) -> Schedule {
        Schedule {
            family: Family::Elastic,
            cfg: SimConfig::base(),
            events: (0..n).map(|i| SimEvent::Lookup { key: i as u64 }).collect(),
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_event() {
        // "Fails" iff key 13 is present.
        let guilty = |s: &Schedule| {
            s.events
                .iter()
                .any(|e| matches!(e, SimEvent::Lookup { key: 13 }))
        };
        let out = shrink(&sched(40), guilty, 10_000);
        assert_eq!(out.events, vec![SimEvent::Lookup { key: 13 }]);
    }

    #[test]
    fn shrinks_an_ordered_pair_to_two_events() {
        // "Fails" iff key 5 appears before key 30 — order-dependent bugs
        // must keep both events, in order.
        let guilty = |s: &Schedule| {
            let a = s
                .events
                .iter()
                .position(|e| matches!(e, SimEvent::Lookup { key: 5 }));
            let b = s
                .events
                .iter()
                .position(|e| matches!(e, SimEvent::Lookup { key: 30 }));
            matches!((a, b), (Some(a), Some(b)) if a < b)
        };
        let out = shrink(&sched(40), guilty, 10_000);
        assert_eq!(
            out.events,
            vec![SimEvent::Lookup { key: 5 }, SimEvent::Lookup { key: 30 }]
        );
    }

    #[test]
    fn budget_exhaustion_still_returns_a_failing_schedule() {
        let guilty = |s: &Schedule| !s.events.is_empty();
        let out = shrink(&sched(64), guilty, 3);
        assert!(!out.events.is_empty());
        assert!(out.events.len() <= 64);
    }
}
