//! The live-family harness: drives a [`LiveCoordinator`] — real TCP cache
//! servers, real migrations over the wire — against the same flat-map +
//! window model as the elastic harness.
//!
//! Socket setup failures (bind/connect denied by the environment) are
//! reported as [`SimFailure::infra`] so the runner can distinguish an
//! environment problem from a semantic divergence.

use std::collections::BTreeMap;

use ecc_net::coordinator::LiveCoordinator;

use crate::event::{record_bytes, Schedule, SimEvent};
use crate::model::ModelWindow;
use crate::runner::SimFailure;

/// Run one live-family schedule to completion or first divergence.
pub fn run(s: &Schedule) -> Result<(), SimFailure> {
    let cfg = &s.cfg;
    let mut coord = LiveCoordinator::start(cfg.ring, cfg.cap)
        .map_err(|e| SimFailure::infra(format!("coordinator start failed: {e}")))?;
    coord.contraction_epsilon = cfg.eps.max(1);
    if cfg.m > 0 {
        coord.enable_window(cfg.m, cfg.alpha(), cfg.threshold());
    }
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut window = (cfg.m > 0).then(|| ModelWindow::new(cfg.m, cfg.alpha(), cfg.threshold()));

    for (step, ev) in s.events.iter().enumerate() {
        let fail = |what: String| SimFailure::at(step, what);
        match *ev {
            SimEvent::Put { key, len } => {
                let key = key % cfg.ring;
                let bytes = record_bytes(key, len, step);
                match coord.put(key, bytes.clone()) {
                    Ok(()) => {
                        model.insert(key, bytes);
                    }
                    Err(e) => {
                        // The generator keeps records within capacity, so
                        // every put must succeed.
                        return Err(fail(format!("put({key}, {len}B) failed: {e}")));
                    }
                }
            }
            SimEvent::Get { key } => {
                let key = key % cfg.ring;
                if let Some(w) = &mut window {
                    w.note(key);
                }
                let got = coord
                    .get(key)
                    .map_err(|e| fail(format!("get({key}) failed: {e}")))?;
                let want = model.get(&key).cloned();
                if got != want {
                    return Err(fail(format!(
                        "get({key}) returned {:?}B, model says {:?}B",
                        got.map(|v| v.len()),
                        want.map(|v| v.len())
                    )));
                }
            }
            SimEvent::EndStep => {
                coord
                    .end_time_step()
                    .map_err(|e| fail(format!("end_time_step failed: {e}")))?;
                if let Some(w) = &mut window {
                    if let Some(expired) = w.end_slice() {
                        for k in w.victims(&expired) {
                            model.remove(&k);
                        }
                    }
                }
            }
            other => {
                return Err(fail(format!(
                    "event {other:?} is not part of the live family"
                )));
            }
        }

        coord
            .check_invariants()
            .map_err(|e| fail(format!("invariant violated: {e}")))?;
        let (bytes, records) = coord
            .totals()
            .map_err(|e| fail(format!("totals failed: {e}")))?;
        let model_bytes: u64 = model.values().map(|v| v.len() as u64).sum();
        if (bytes, records) != (model_bytes, model.len() as u64) {
            return Err(fail(format!(
                "fleet holds {records} records / {bytes}B, model {} / {model_bytes}B",
                model.len()
            )));
        }
    }

    // Final content sweep: every model record served back byte-for-byte
    // through the ring.
    let keys: Vec<u64> = model.keys().copied().collect();
    for key in keys {
        let got = coord
            .get(key)
            .map_err(|e| SimFailure::end(format!("final get({key}) failed: {e}")))?;
        if got.as_deref() != model.get(&key).map(Vec::as_slice) {
            return Err(SimFailure::end(format!(
                "final sweep: key {key} lost or stale through the ring"
            )));
        }
    }
    // Observability oracle: the cluster-wide snapshot must aggregate over
    // the wire (every node's `ObsDump` decodes), the merge count recorded
    // in the event stream must match the coordinator's own counter, and
    // every recorded merge must pair with a dealloc of the drained node.
    let snap = coord
        .cluster_obs()
        .map_err(|e| SimFailure::end(format!("cluster obs dump failed: {e}")))?;
    let counts = snap.event_counts();
    if snap.dropped > 0 {
        // Ring overflow would make the exact counts below unsound; live
        // schedules are far smaller than the recorder, so treat overflow
        // itself as the failure.
        return Err(SimFailure::end(format!(
            "flight recorder overflowed ({} events dropped) on a schedule \
             that should fit the ring",
            snap.dropped
        )));
    }
    let merges_seen = counts.get("node_merge").copied().unwrap_or(0);
    if merges_seen != coord.merges as u64 {
        return Err(SimFailure::end(format!(
            "event stream records {merges_seen} NodeMerge events but the \
             coordinator performed {} merges",
            coord.merges
        )));
    }
    let deallocs_seen = counts.get("node_dealloc").copied().unwrap_or(0);
    if deallocs_seen != merges_seen {
        return Err(SimFailure::end(format!(
            "{merges_seen} NodeMerge events but {deallocs_seen} NodeDealloc \
             events: a drained node was not torn down (or torn down twice)"
        )));
    }
    let splits_seen = counts.get("bucket_split").copied().unwrap_or(0);
    if splits_seen != coord.splits as u64 {
        return Err(SimFailure::end(format!(
            "event stream records {splits_seen} BucketSplit events but the \
             coordinator performed {} splits",
            coord.splits
        )));
    }
    // Span oracle: every elastic operation traces as a root span, and the
    // merged stream must form a well-formed forest — every start ended,
    // zero orphans, acyclic parentage, child intervals nested inside their
    // parents on the shared clock.
    let span_stats = ecc_obs::verify_spans(&snap.events)
        .map_err(|e| SimFailure::end(format!("span oracle: {e}")))?;
    let elastic_ops = (coord.splits + coord.merges) as u64;
    if (span_stats.roots as u64) < elastic_ops {
        return Err(SimFailure::end(format!(
            "span oracle: {} root spans for {elastic_ops} elastic operations",
            span_stats.roots
        )));
    }
    if span_stats.roots != span_stats.traces {
        return Err(SimFailure::end(format!(
            "span oracle: {} roots but {} traces (root span ids double as \
             trace ids, so these must match)",
            span_stats.roots, span_stats.traces
        )));
    }
    coord
        .shutdown()
        .map_err(|e| SimFailure::infra(format!("shutdown failed: {e}")))?;
    Ok(())
}
