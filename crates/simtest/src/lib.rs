//! Deterministic cluster-simulation harness with fault injection and
//! differential oracles.
//!
//! Drives the elastic cache, the static baseline, the wire protocol, and
//! the live socket coordinator through seeded randomized schedules — plus
//! a `workload` family that replays slices of the zoo scenarios
//! (`ecc_workload::scenario`: shifting hot sets, flash crowds, tenant
//! mixes) through the elastic harness — and checks every step against two
//! oracles:
//!
//! 1. an independent flat model (a `BTreeMap`/reference-LRU/wire-semantics
//!    reimplementation, per family) that predicts contents, responses and
//!    metric counters exactly, and
//! 2. the PR-1 `check_invariants` auditors, promoted to hard failures
//!    after every event.
//!
//! A failing schedule is shrunk to a minimal event list and printed as a
//! replayable `SIMSEED/1/<family>/<config>/<events>` string. Run the
//! battery with `cargo xtask simtest --seeds N`; replay one case with
//! `cargo xtask simtest --replay '<SIMSEED>'`. See DESIGN.md §9.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod elastic_sim;
pub mod event;
pub mod gen;
pub mod interleave;
pub mod live_sim;
pub mod model;
pub mod proto_sim;
pub mod runner;
pub mod shrink;
pub mod static_sim;

pub use event::{Family, Fault, Schedule, SimConfig, SimEvent, WireOp, SIMSEED_VERSION};
pub use gen::generate;
pub use interleave::{
    explore_admission, explore_node_ops, is_seeded_bug, run_interleave, AdmissionImpl,
    AdmissionModel, ExploreConfig, ExploreReport, ModelOp, ScheduleFailure,
};
pub use runner::{check_seed, run_schedule, QuietPanics, SeedOutcome, SimFailure};
pub use shrink::{shrink, shrink_items};
