//! Top-level execution: run one schedule (panic-safe), run the full family
//! battery for a seed, shrink failures, and report replayable SIMSEEDs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::event::{Family, Schedule};
use crate::{elastic_sim, gen, live_sim, proto_sim, shrink, static_sim};

/// Run budget the shrinker gets per failure.
const SHRINK_BUDGET: usize = 400;

/// One recorded harness failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// Index of the event that diverged (`None`: end-of-schedule check or
    /// setup).
    pub step: Option<usize>,
    /// What went wrong.
    pub what: String,
    /// `true` when the environment (socket setup etc.), not the system
    /// under test, failed — such failures are not shrunk.
    pub infra: bool,
}

impl SimFailure {
    /// A divergence at event index `step`.
    pub fn at(step: usize, what: String) -> Self {
        Self {
            step: Some(step),
            what,
            infra: false,
        }
    }

    /// A failure during end-of-schedule checks or teardown.
    pub fn end(what: String) -> Self {
        Self {
            step: None,
            what,
            infra: false,
        }
    }

    /// An environment failure (cannot bind/connect), not a bug in the
    /// system under test.
    pub fn infra(what: String) -> Self {
        Self {
            step: None,
            what,
            infra: true,
        }
    }
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(step) => write!(f, "at event {step}: {}", self.what),
            None => write!(f, "at end of schedule: {}", self.what),
        }
    }
}

/// Extract a printable message from a panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Run one schedule under its family's harness. Panics (debug-build
/// `validate()` assertions and the like) are caught and recorded as
/// failures, so a multi-seed run survives them.
pub fn run_schedule(s: &Schedule) -> Result<(), SimFailure> {
    let res = catch_unwind(AssertUnwindSafe(|| match s.family {
        // Workload schedules use the elastic event subset, so the elastic
        // harness (and its oracles) executes them unchanged.
        Family::Elastic | Family::Workload => elastic_sim::run(s),
        Family::Static => static_sim::run(s),
        Family::Proto => proto_sim::run(s),
        Family::Live => live_sim::run(s),
    }));
    match res {
        Ok(r) => r,
        Err(p) => Err(SimFailure::end(format!("panicked: {}", panic_message(&*p)))),
    }
}

/// A failing seed, with its original and shrunken schedules.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The family that failed.
    pub family: Family,
    /// The failing seed.
    pub seed: u64,
    /// The full generated schedule.
    pub original: Schedule,
    /// The minimal schedule that still fails (equals `original` for infra
    /// failures, which are not shrunk).
    pub shrunken: Schedule,
    /// The failure the *shrunken* schedule produces.
    pub failure: SimFailure,
}

/// Run every family's schedule for one seed; failures are shrunk before
/// being returned. The live family (real sockets, ~3 orders of magnitude
/// slower) only runs when `include_live` is set — the multi-seed driver
/// enables it on a stride.
pub fn check_seed(seed: u64, include_live: bool) -> Vec<SeedOutcome> {
    let mut out = Vec::new();
    for family in Family::ALL {
        if family == Family::Live && !include_live {
            continue;
        }
        let original = gen::generate(family, seed);
        let Err(first) = run_schedule(&original) else {
            continue;
        };
        let (shrunken, failure) = if first.infra {
            (original.clone(), first)
        } else {
            let small = shrink::shrink(&original, |c| run_schedule(c).is_err(), SHRINK_BUDGET);
            match run_schedule(&small) {
                Err(f) => (small, f),
                // Flaky reproduction (should not happen with deterministic
                // harnesses): fall back to the original.
                Ok(()) => (original.clone(), first),
            }
        };
        out.push(SeedOutcome {
            family,
            seed,
            original,
            shrunken,
            failure,
        });
    }
    out
}

/// Silence the default panic hook (which prints a backtrace for every
/// caught `validate()` panic) for the lifetime of the guard; dropping it
/// reinstates the default hook.
pub struct QuietPanics(());

impl QuietPanics {
    /// Install the silent hook.
    pub fn install() -> QuietPanics {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics(())
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        // Taking the hook reinstates the default one.
        let _ = std::panic::take_hook();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SimConfig, SimEvent};

    #[test]
    fn run_schedule_catches_panics() {
        // An elastic schedule with a live-family event fails cleanly…
        let bad = Schedule {
            family: Family::Elastic,
            cfg: SimConfig::base(),
            events: vec![SimEvent::Put { key: 1, len: 10 }],
        };
        let err = run_schedule(&bad).expect_err("wrong-family event must fail");
        assert_eq!(err.step, Some(0));

        // …and a config that panics in the constructor (btree order < 4 is
        // clamped by the harness, but alpha 0 with a window is not) is
        // caught, not propagated.
        let mut cfg = SimConfig::base();
        cfg.m = 2;
        cfg.alpha_pct = 0;
        let panicky = Schedule {
            family: Family::Elastic,
            cfg,
            events: vec![],
        };
        let _guard = QuietPanics::install();
        match run_schedule(&panicky) {
            Ok(()) => {}
            Err(f) => assert!(!f.what.is_empty()),
        }
    }

    #[test]
    fn empty_schedules_pass_everywhere() {
        for family in [Family::Elastic, Family::Static, Family::Proto] {
            let s = Schedule {
                family,
                cfg: SimConfig::base(),
                events: vec![],
            };
            assert_eq!(run_schedule(&s), Ok(()), "{family}");
        }
    }
}
