//! The proto-family harness: frame-level fault injection against one real
//! [`CacheServer`] over a loopback socket, with a [`ModelServer`] oracle
//! predicting the exact response — status *and* body — for every frame.
//!
//! The trick that makes faults checkable: the oracle decodes the *mutated*
//! bytes in-process with the production [`Request::decode`], so it knows
//! precisely what the server will see (a corrupt byte may turn a `Put` into
//! a `RangeStats`, or into garbage ⇒ `BadRequest`).

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use ecc_net::protocol::{
    decode_with_trace, encode_traced, read_frame, write_frame, Request, Response, TraceContext,
};
use ecc_net::server::{CacheServer, DEFAULT_MAX_CONNECTIONS};
use ecc_obs::{ObsRegistry, TimeSource};

use crate::event::{record_bytes, Fault, Schedule, SimEvent, WireOp};
use crate::model::ModelServer;
use crate::runner::SimFailure;

/// Build the well-formed request for a wire op at schedule position `step`.
fn request_for(op: WireOp, step: usize) -> Request {
    match op {
        WireOp::Get { key } => Request::Get { key },
        WireOp::Put { key, len } => Request::Put {
            key,
            value: Bytes::from(record_bytes(key, len, step)),
        },
        WireOp::Remove { key } => Request::Remove { key },
        WireOp::Sweep { lo, hi } => Request::Sweep { lo, hi },
        WireOp::Keys { lo, hi } => Request::Keys { lo, hi },
        WireOp::Stats => Request::Stats,
        WireOp::Ping => Request::Ping,
    }
}

/// Apply a fault to an encoded payload. Returns `None` when the frame is
/// dropped entirely, otherwise the (possibly mutated) payload and how many
/// times to send it.
fn apply_fault(fault: Fault, payload: &[u8]) -> Option<(Vec<u8>, usize)> {
    match fault {
        Fault::None => Some((payload.to_vec(), 1)),
        Fault::Corrupt { pos, xor } => {
            let mut p = payload.to_vec();
            if !p.is_empty() {
                let i = pos as usize % p.len();
                p[i] ^= xor;
            }
            Some((p, 1))
        }
        Fault::Truncate { len } => {
            let mut p = payload.to_vec();
            p.truncate(len as usize);
            Some((p, 1))
        }
        Fault::Duplicate => Some((payload.to_vec(), 2)),
        Fault::Drop => None,
        // Fragmentation is a delivery-schedule fault, not a byte fault: the
        // payload reaches the server intact, just across two wakeups.
        Fault::Fragment { .. } => Some((payload.to_vec(), 1)),
    }
}

/// Send one frame's wire bytes (length prefix + payload) in two writes split
/// at `pos`, pausing in between so the reactor observes the partial frame on
/// one readiness wakeup and must hold it in its assembler until the rest
/// arrives.
fn send_fragmented(stream: &mut TcpStream, payload: &[u8], pos: u32) -> std::io::Result<()> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(payload);
    // Both halves non-empty: wire.len() >= 4, so the divisor is >= 3.
    let cut = 1 + pos as usize % (wire.len() - 1);
    stream.write_all(&wire[..cut])?;
    stream.flush()?;
    std::thread::sleep(Duration::from_micros(300));
    stream.write_all(&wire[cut..])
}

/// Run one proto-family schedule to completion or first divergence.
pub fn run(s: &Schedule) -> Result<(), SimFailure> {
    let cfg = &s.cfg;

    // Client recorder and server share one clock epoch so the final span
    // oracle can check cross-recorder interval nesting.
    let time = TimeSource::real();
    let mut server = CacheServer::spawn_clocked(
        ("127.0.0.1", 0),
        cfg.cap,
        cfg.ord.max(4),
        DEFAULT_MAX_CONNECTIONS,
        None,
        time.clone(),
        1,
    )
    .map_err(|e| SimFailure::infra(format!("server spawn failed: {e}")))?;
    let client_obs = ObsRegistry::new(time);
    client_obs.set_origin(2);
    let mut stream = TcpStream::connect(server.addr())
        .map_err(|e| SimFailure::infra(format!("connect failed: {e}")))?;
    let _ = stream.set_nodelay(true);
    let mut model = ModelServer::new(cfg.cap);
    let mut shut_down = false;
    let mut traced_sent = 0u64;

    'schedule: for (step, ev) in s.events.iter().enumerate() {
        let fail = |what: String| SimFailure::at(step, what);
        let SimEvent::Frame { fault, op } = *ev else {
            return Err(fail(format!(
                "event {ev:?} is not part of the proto family"
            )));
        };
        let req = request_for(op, step);
        let payload = req.encode();
        let Some((mutated, copies)) = apply_fault(fault, &payload) else {
            continue; // dropped frame: neither side sees anything
        };
        // Trace a deterministic subset of the intact-delivery steps: faults
        // that mutate bytes would scramble the extension's span ids into
        // unverifiable parentage, but Duplicate and Fragment deliver the
        // extension bit-exact — Fragment may even cut *inside* it, which
        // is precisely the reassembly path worth exercising.
        let traced = step % 2 == 0
            && matches!(
                fault,
                Fault::None | Fault::Duplicate | Fault::Fragment { .. }
            );
        for _ in 0..copies {
            // One root span per delivered copy, dropped once the response
            // is fully read so the server's spans nest inside it.
            let span = traced.then(|| client_obs.span_root("req"));
            let wire_bytes = match &span {
                Some(root) => {
                    traced_sent += 1;
                    let ctx = TraceContext {
                        trace_id: root.trace_id(),
                        span_id: root.id(),
                        parent_span_id: 0,
                        sampled: true,
                    };
                    encode_traced(&ctx, &req).to_vec()
                }
                None => mutated.clone(),
            };
            // The oracle sees exactly what the server will decode —
            // trace extension included.
            let decoded = decode_with_trace(Bytes::from(wire_bytes.clone())).map(|(_, r)| r);
            let is_shutdown = matches!(decoded, Some(Request::Shutdown));
            // A corrupt opcode can land on ObsDump; its body is a live
            // observability snapshot the model cannot predict, so compare
            // status only and require that the body decodes as a dump.
            let is_obs_dump = matches!(decoded, Some(Request::ObsDump));
            let want = model.respond(decoded);
            match fault {
                Fault::Fragment { pos } => send_fragmented(&mut stream, &wire_bytes, pos),
                _ => write_frame(&mut stream, &wire_bytes),
            }
            .map_err(|e| fail(format!("send failed: {e}")))?;
            let raw = read_frame(&mut stream)
                .map_err(|e| fail(format!("server stopped answering: {e}")))?;
            let got =
                Response::decode(raw).ok_or_else(|| fail("undecodable response frame".into()))?;
            if is_obs_dump {
                if got.status != want.status {
                    return Err(fail(format!(
                        "obs-dump status diverged under {fault:?}: server said {:?}, \
                         model predicts {:?}",
                        got.status, want.status
                    )));
                }
                if ecc_obs::decode_dump(&got.body).is_none() {
                    return Err(fail(format!(
                        "obs-dump body ({}B) failed to decode as a versioned snapshot",
                        got.body.len()
                    )));
                }
                continue;
            }
            if got != want {
                return Err(fail(format!(
                    "response diverged for {op:?} under {fault:?}: server said \
                     ({:?}, {}B body), model predicts ({:?}, {}B body)",
                    got.status,
                    got.body.len(),
                    want.status,
                    want.body.len()
                )));
            }
            if is_shutdown {
                // A corrupt byte turned the opcode into Shutdown: the server
                // acknowledged and is closing; nothing further can be sent.
                shut_down = true;
                break 'schedule;
            }
        }
    }

    if !shut_down {
        // Final accounting handshake on the same connection.
        let payload = Request::Stats.encode();
        let want = model.respond(Some(Request::Stats));
        write_frame(&mut stream, &payload)
            .map_err(|e| SimFailure::end(format!("final stats send failed: {e}")))?;
        let raw = read_frame(&mut stream)
            .map_err(|e| SimFailure::end(format!("final stats read failed: {e}")))?;
        let got = Response::decode(raw)
            .ok_or_else(|| SimFailure::end("undecodable final stats response".into()))?;
        if got != want {
            return Err(SimFailure::end(format!(
                "final stats diverged: server {:?}, model {:?} (used={} records={})",
                got.body,
                want.body,
                model.used(),
                model.len()
            )));
        }

        // Span oracle: dump the server's recorder, merge it with the
        // client's, and demand a well-formed forest — every start ended,
        // zero orphans, child intervals nested — with exactly one root per
        // traced frame delivered. Only sound while nothing fell out of
        // either ring.
        let payload = Request::ObsDump.encode();
        write_frame(&mut stream, &payload)
            .map_err(|e| SimFailure::end(format!("final obs dump send failed: {e}")))?;
        let raw = read_frame(&mut stream)
            .map_err(|e| SimFailure::end(format!("final obs dump read failed: {e}")))?;
        let got = Response::decode(raw)
            .ok_or_else(|| SimFailure::end("undecodable final obs dump response".into()))?;
        let server_snap = ecc_obs::decode_dump(&got.body)
            .ok_or_else(|| SimFailure::end("final obs dump body failed to decode".into()))?;
        let mut merged = client_obs.snapshot();
        merged.merge(&server_snap);
        if merged.dropped == 0 {
            let stats = ecc_obs::verify_spans(&merged.events)
                .map_err(|e| SimFailure::end(format!("span oracle: {e}")))?;
            if stats.roots as u64 != traced_sent || stats.traces as u64 != traced_sent {
                return Err(SimFailure::end(format!(
                    "span oracle: {traced_sent} traced frames delivered but the \
                     merged stream holds {} roots / {} traces",
                    stats.roots, stats.traces
                )));
            }
        }
    }
    drop(stream);
    server.stop();
    Ok(())
}
