//! The proto-family harness: frame-level fault injection against one real
//! [`CacheServer`] over a loopback socket, with a [`ModelServer`] oracle
//! predicting the exact response — status *and* body — for every frame.
//!
//! The trick that makes faults checkable: the oracle decodes the *mutated*
//! bytes in-process with the production [`Request::decode`], so it knows
//! precisely what the server will see (a corrupt byte may turn a `Put` into
//! a `RangeStats`, or into garbage ⇒ `BadRequest`).

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use ecc_net::protocol::{read_frame, write_frame, Request, Response};
use ecc_net::server::CacheServer;

use crate::event::{record_bytes, Fault, Schedule, SimEvent, WireOp};
use crate::model::ModelServer;
use crate::runner::SimFailure;

/// Build the well-formed request for a wire op at schedule position `step`.
fn request_for(op: WireOp, step: usize) -> Request {
    match op {
        WireOp::Get { key } => Request::Get { key },
        WireOp::Put { key, len } => Request::Put {
            key,
            value: Bytes::from(record_bytes(key, len, step)),
        },
        WireOp::Remove { key } => Request::Remove { key },
        WireOp::Sweep { lo, hi } => Request::Sweep { lo, hi },
        WireOp::Keys { lo, hi } => Request::Keys { lo, hi },
        WireOp::Stats => Request::Stats,
        WireOp::Ping => Request::Ping,
    }
}

/// Apply a fault to an encoded payload. Returns `None` when the frame is
/// dropped entirely, otherwise the (possibly mutated) payload and how many
/// times to send it.
fn apply_fault(fault: Fault, payload: &[u8]) -> Option<(Vec<u8>, usize)> {
    match fault {
        Fault::None => Some((payload.to_vec(), 1)),
        Fault::Corrupt { pos, xor } => {
            let mut p = payload.to_vec();
            if !p.is_empty() {
                let i = pos as usize % p.len();
                p[i] ^= xor;
            }
            Some((p, 1))
        }
        Fault::Truncate { len } => {
            let mut p = payload.to_vec();
            p.truncate(len as usize);
            Some((p, 1))
        }
        Fault::Duplicate => Some((payload.to_vec(), 2)),
        Fault::Drop => None,
        // Fragmentation is a delivery-schedule fault, not a byte fault: the
        // payload reaches the server intact, just across two wakeups.
        Fault::Fragment { .. } => Some((payload.to_vec(), 1)),
    }
}

/// Send one frame's wire bytes (length prefix + payload) in two writes split
/// at `pos`, pausing in between so the reactor observes the partial frame on
/// one readiness wakeup and must hold it in its assembler until the rest
/// arrives.
fn send_fragmented(stream: &mut TcpStream, payload: &[u8], pos: u32) -> std::io::Result<()> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(payload);
    // Both halves non-empty: wire.len() >= 4, so the divisor is >= 3.
    let cut = 1 + pos as usize % (wire.len() - 1);
    stream.write_all(&wire[..cut])?;
    stream.flush()?;
    std::thread::sleep(Duration::from_micros(300));
    stream.write_all(&wire[cut..])
}

/// Run one proto-family schedule to completion or first divergence.
pub fn run(s: &Schedule) -> Result<(), SimFailure> {
    let cfg = &s.cfg;

    let mut server = CacheServer::spawn(cfg.cap, cfg.ord.max(4))
        .map_err(|e| SimFailure::infra(format!("server spawn failed: {e}")))?;
    let mut stream = TcpStream::connect(server.addr())
        .map_err(|e| SimFailure::infra(format!("connect failed: {e}")))?;
    let _ = stream.set_nodelay(true);
    let mut model = ModelServer::new(cfg.cap);
    let mut shut_down = false;

    'schedule: for (step, ev) in s.events.iter().enumerate() {
        let fail = |what: String| SimFailure::at(step, what);
        let SimEvent::Frame { fault, op } = *ev else {
            return Err(fail(format!(
                "event {ev:?} is not part of the proto family"
            )));
        };
        let payload = request_for(op, step).encode();
        let Some((mutated, copies)) = apply_fault(fault, &payload) else {
            continue; // dropped frame: neither side sees anything
        };
        for _ in 0..copies {
            // The oracle sees exactly what the server will decode.
            let decoded = Request::decode(Bytes::from(mutated.clone()));
            let is_shutdown = matches!(decoded, Some(Request::Shutdown));
            // A corrupt opcode can land on ObsDump; its body is a live
            // observability snapshot the model cannot predict, so compare
            // status only and require that the body decodes as a dump.
            let is_obs_dump = matches!(decoded, Some(Request::ObsDump));
            let want = model.respond(decoded);
            match fault {
                Fault::Fragment { pos } => send_fragmented(&mut stream, &mutated, pos),
                _ => write_frame(&mut stream, &mutated),
            }
            .map_err(|e| fail(format!("send failed: {e}")))?;
            let raw = read_frame(&mut stream)
                .map_err(|e| fail(format!("server stopped answering: {e}")))?;
            let got =
                Response::decode(raw).ok_or_else(|| fail("undecodable response frame".into()))?;
            if is_obs_dump {
                if got.status != want.status {
                    return Err(fail(format!(
                        "obs-dump status diverged under {fault:?}: server said {:?}, \
                         model predicts {:?}",
                        got.status, want.status
                    )));
                }
                if ecc_obs::decode_dump(&got.body).is_none() {
                    return Err(fail(format!(
                        "obs-dump body ({}B) failed to decode as a versioned snapshot",
                        got.body.len()
                    )));
                }
                continue;
            }
            if got != want {
                return Err(fail(format!(
                    "response diverged for {op:?} under {fault:?}: server said \
                     ({:?}, {}B body), model predicts ({:?}, {}B body)",
                    got.status,
                    got.body.len(),
                    want.status,
                    want.body.len()
                )));
            }
            if is_shutdown {
                // A corrupt byte turned the opcode into Shutdown: the server
                // acknowledged and is closing; nothing further can be sent.
                shut_down = true;
                break 'schedule;
            }
        }
    }

    if !shut_down {
        // Final accounting handshake on the same connection.
        let payload = Request::Stats.encode();
        let want = model.respond(Some(Request::Stats));
        write_frame(&mut stream, &payload)
            .map_err(|e| SimFailure::end(format!("final stats send failed: {e}")))?;
        let raw = read_frame(&mut stream)
            .map_err(|e| SimFailure::end(format!("final stats read failed: {e}")))?;
        let got = Response::decode(raw)
            .ok_or_else(|| SimFailure::end("undecodable final stats response".into()))?;
        if got != want {
            return Err(SimFailure::end(format!(
                "final stats diverged: server {:?}, model {:?} (used={} records={})",
                got.body,
                want.body,
                model.used(),
                model.len()
            )));
        }
    }
    drop(stream);
    server.stop();
    Ok(())
}
