//! Reference models (differential oracles).
//!
//! Each model is an independent, deliberately naive reimplementation of the
//! semantics a harness checks: a flat map plus a re-derived sliding window
//! for the elastic cache, a vector-backed LRU for the static baseline, and
//! a map-with-byte-accounting for the wire protocol server. None of them
//! share code with the production structures — divergence between model and
//! cache is the bug signal.
//!
//! Float caution: [`ModelWindow`] replicates the *exact* floating-point
//! operation order of [`ecc_core::SlidingWindow`] (iteratively accumulated
//! decay powers, newest-to-oldest summation) so that eviction decisions
//! compare bit-for-bit rather than within an epsilon.

use std::collections::BTreeMap;

use bytes::Bytes;
use ecc_net::protocol::{
    encode_get_many, encode_keys, encode_range_stats, encode_records, encode_stats,
    encode_statuses, Request, Response, Status,
};

/// Independent reimplementation of the sliding-window eviction scorer.
#[derive(Debug, Clone)]
pub struct ModelWindow {
    m: usize,
    threshold: f64,
    current: BTreeMap<u64, u32>,
    /// Completed slices, index 0 = newest.
    history: Vec<BTreeMap<u64, u32>>,
    /// `α^0 … α^(m-1)`, accumulated iteratively like the production window.
    powers: Vec<f64>,
}

impl ModelWindow {
    /// A window of `m` slices with decay `alpha` and threshold `threshold`.
    pub fn new(m: usize, alpha: f64, threshold: f64) -> Self {
        let mut powers = Vec::with_capacity(m);
        let mut p = 1.0;
        for _ in 0..m {
            powers.push(p);
            p *= alpha;
        }
        Self {
            m,
            threshold,
            current: BTreeMap::new(),
            history: Vec::new(),
            powers,
        }
    }

    /// Record a query of `key` in the open slice.
    pub fn note(&mut self, key: u64) {
        *self.current.entry(key).or_insert(0) += 1;
    }

    /// Close the open slice; returns the slice that expired, if the window
    /// was already full.
    pub fn end_slice(&mut self) -> Option<BTreeMap<u64, u32>> {
        let completed = std::mem::take(&mut self.current);
        self.history.insert(0, completed);
        if self.history.len() > self.m {
            self.history.pop()
        } else {
            None
        }
    }

    /// `λ(k)` over the retained window, in the production summation order.
    pub fn lambda(&self, key: u64) -> f64 {
        self.history
            .iter()
            .enumerate()
            .map(|(i, slice)| self.powers[i] * slice.get(&key).copied().unwrap_or(0) as f64)
            .sum()
    }

    /// Keys of `expired` scoring strictly below the threshold.
    pub fn victims(&self, expired: &BTreeMap<u64, u32>) -> Vec<u64> {
        expired
            .keys()
            .copied()
            .filter(|&k| self.lambda(k) < self.threshold)
            .collect()
    }
}

/// A vector-backed LRU map (front = most recently used) with byte
/// accounting — the reference for the static baseline's per-node policy.
#[derive(Debug, Clone, Default)]
pub struct ModelLru {
    /// `(key, value)` pairs ordered most- to least-recently used.
    entries: Vec<(u64, Vec<u8>)>,
    bytes: u64,
}

impl ModelLru {
    /// An empty LRU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total stored value bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether `key` is present (no recency touch).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.iter().any(|(k, _)| *k == key)
    }

    /// Look up `key`, marking it most recently used.
    pub fn get(&mut self, key: u64) -> Option<&Vec<u8>> {
        let idx = self.entries.iter().position(|(k, _)| *k == key)?;
        let e = self.entries.remove(idx);
        self.entries.insert(0, e);
        self.entries.first().map(|(_, v)| v)
    }

    /// Insert or replace, marking the key most recently used.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) {
        if let Some(idx) = self.entries.iter().position(|(k, _)| *k == key) {
            let (_, old) = self.entries.remove(idx);
            self.bytes -= old.len() as u64;
        }
        self.bytes += value.len() as u64;
        self.entries.insert(0, (key, value));
    }

    /// Evict the least recently used entry.
    pub fn pop_lru(&mut self) -> Option<(u64, Vec<u8>)> {
        let e = self.entries.pop()?;
        self.bytes -= e.1.len() as u64;
        Some(e)
    }

    /// Entries as `(key, value)` pairs, sorted by key.
    pub fn sorted(&self) -> Vec<(u64, Vec<u8>)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

/// Reference semantics of one wire-protocol cache server: a flat map with
/// byte accounting, predicting the exact [`Response`] (status *and* body)
/// the server must produce for any decodable request. Every record is
/// charged its true slab footprint — [`ecc_core::slab::footprint`], the
/// pure size function the engine's admission CAS uses — and replacement
/// is charged only for its footprint *growth*: a put is accepted iff
/// `used - old_footprint + new_footprint <= capacity`.
#[derive(Debug, Clone)]
pub struct ModelServer {
    map: BTreeMap<u64, Vec<u8>>,
    used: u64,
    capacity: u64,
}

impl ModelServer {
    /// An empty server of the given capacity.
    pub fn new(capacity: u64) -> Self {
        Self {
            map: BTreeMap::new(),
            used: 0,
            capacity,
        }
    }

    /// Resident bytes.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Resident records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The exact response the server must produce for a frame that decoded
    /// to `req` (`None` = undecodable ⇒ `BadRequest`), applying the
    /// request's effects to the model.
    pub fn respond(&mut self, req: Option<Request>) -> Response {
        let Some(req) = req else {
            return Response::status(Status::BadRequest);
        };
        match req {
            Request::Get { key } => match self.map.get(&key) {
                Some(v) => Response::ok(Bytes::copy_from_slice(v)),
                None => Response::status(Status::NotFound),
            },
            Request::Put { key, value } => {
                let size = ecc_core::slab::footprint(value.len());
                let old = self
                    .map
                    .get(&key)
                    .map(|v| ecc_core::slab::footprint(v.len()))
                    .unwrap_or(0);
                if self.used - old + size > self.capacity {
                    return Response::status(Status::Overflow);
                }
                self.used = self.used - old + size;
                self.map.insert(key, value.to_vec());
                Response::status(Status::Ok)
            }
            Request::Remove { key } => match self.map.remove(&key) {
                Some(v) => {
                    self.used -= ecc_core::slab::footprint(v.len());
                    Response::status(Status::Ok)
                }
                None => Response::status(Status::NotFound),
            },
            Request::Sweep { lo, hi } => {
                let drained: Vec<(u64, Vec<u8>)> = if lo > hi {
                    Vec::new()
                } else {
                    let keys: Vec<u64> = self.map.range(lo..=hi).map(|(k, _)| *k).collect();
                    keys.iter()
                        .filter_map(|k| self.map.remove(k).map(|v| (*k, v)))
                        .collect()
                };
                for (_, v) in &drained {
                    self.used -= ecc_core::slab::footprint(v.len());
                }
                Response::ok(encode_records(&drained))
            }
            Request::Keys { lo, hi } => {
                let keys: Vec<u64> = if lo > hi {
                    Vec::new()
                } else {
                    self.map.range(lo..=hi).map(|(k, _)| *k).collect()
                };
                Response::ok(encode_keys(&keys))
            }
            Request::RangeStats { lo, hi } => {
                let (mut bytes, mut records) = (0u64, 0u64);
                if lo <= hi {
                    for (_, v) in self.map.range(lo..=hi) {
                        bytes += ecc_core::slab::footprint(v.len());
                        records += 1;
                    }
                }
                Response::ok(encode_range_stats(bytes, records))
            }
            Request::Stats => Response::ok(encode_stats(
                self.used,
                self.map.len() as u64,
                self.capacity,
            )),
            Request::PutMany { items } => {
                // Per-item verdicts with the same growth-charged capacity
                // rule as a single Put; a refused item never aborts the
                // batch.
                let statuses: Vec<Status> = items
                    .into_iter()
                    .map(|(key, value)| {
                        let size = ecc_core::slab::footprint(value.len());
                        let old = self
                            .map
                            .get(&key)
                            .map(|v| ecc_core::slab::footprint(v.len()))
                            .unwrap_or(0);
                        if self.used - old + size > self.capacity {
                            return Status::Overflow;
                        }
                        self.used = self.used - old + size;
                        self.map.insert(key, value.to_vec());
                        Status::Ok
                    })
                    .collect();
                Response::ok(encode_statuses(&statuses))
            }
            Request::GetMany { keys } => {
                let entries: Vec<Option<Vec<u8>>> =
                    keys.iter().map(|k| self.map.get(k).cloned()).collect();
                Response::ok(encode_get_many(&entries))
            }
            Request::EvictMany { keys } => {
                let statuses: Vec<Status> = keys
                    .iter()
                    .map(|k| match self.map.remove(k) {
                        Some(v) => {
                            self.used -= v.len() as u64;
                            Status::Ok
                        }
                        None => Status::NotFound,
                    })
                    .collect();
                Response::ok(encode_statuses(&statuses))
            }
            Request::Ping => Response::status(Status::Ok),
            // The dump body is dynamic (live histograms + events), so the
            // model predicts status only; harnesses that compare bodies
            // must special-case ObsDump and validate the body by decoding
            // it with `ecc_obs::decode_dump` instead.
            Request::ObsDump => Response::status(Status::Ok),
            Request::Shutdown => Response::status(Status::Ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_window_matches_production_window() {
        use ecc_core::SlidingWindow;
        let (m, alpha) = (3usize, 0.93f64);
        let threshold = alpha.powi(m as i32 - 1);
        let mut real = SlidingWindow::new(m, alpha, threshold);
        let mut model = ModelWindow::new(m, alpha, threshold);
        for round in 0..20u64 {
            for j in 0..(round % 5) {
                real.note_query(round * 7 % 11 + j);
                model.note(round * 7 % 11 + j);
            }
            let e_real = real.end_slice();
            let e_model = model.end_slice();
            assert_eq!(e_real, e_model, "round {round}");
            if let (Some(er), Some(em)) = (&e_real, &e_model) {
                assert_eq!(real.victims(er), model.victims(em), "round {round}");
            }
            for k in 0..12 {
                // Bit-exact, not epsilon: identical operation order.
                assert_eq!(real.lambda(k).to_bits(), model.lambda(k).to_bits());
            }
        }
    }

    #[test]
    fn model_lru_orders_by_recency() {
        let mut l = ModelLru::new();
        l.insert(1, vec![0; 10]);
        l.insert(2, vec![0; 20]);
        l.insert(3, vec![0; 30]);
        assert_eq!(l.bytes(), 60);
        l.get(1);
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(2));
        l.insert(3, vec![0; 5]); // replace shrinks bytes, touches
        assert_eq!(l.bytes(), 15);
        assert_eq!(l.pop_lru().map(|(k, _)| k), Some(1));
        assert!(l.contains(3));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn model_server_charges_replacement_growth_only() {
        let mut s = ModelServer::new(100);
        assert_eq!(
            s.respond(Some(Request::Put {
                key: 1,
                value: Bytes::from(vec![0; 60]),
            }))
            .status,
            Status::Ok
        );
        // Replacement within budget: 60 -> 90.
        assert_eq!(
            s.respond(Some(Request::Put {
                key: 1,
                value: Bytes::from(vec![0; 90]),
            }))
            .status,
            Status::Ok
        );
        // Growth past capacity must overflow, even though the key exists.
        assert_eq!(
            s.respond(Some(Request::Put {
                key: 1,
                value: Bytes::from(vec![0; 101]),
            }))
            .status,
            Status::Overflow
        );
        assert_eq!(s.used(), 90);
    }

    #[test]
    fn model_server_sweep_and_keys_handle_inverted_ranges() {
        let mut s = ModelServer::new(1000);
        for k in 0..5u64 {
            let _ = s.respond(Some(Request::Put {
                key: k,
                value: Bytes::from(vec![k as u8; 4]),
            }));
        }
        let r = s.respond(Some(Request::Keys { lo: 9, hi: 1 }));
        assert_eq!(r, Response::ok(encode_keys(&[])));
        let r = s.respond(Some(Request::Sweep { lo: 1, hi: 3 }));
        assert_eq!(
            r,
            Response::ok(encode_records(&[
                (1, vec![1; 4]),
                (2, vec![2; 4]),
                (3, vec![3; 4]),
            ]))
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.used(), 8);
        let r = s.respond(None);
        assert_eq!(r.status, Status::BadRequest);
    }
}
