//! Property tests for the cloud substrate: billing, storage metering and
//! the network model must be conservative and total.

use ecc_cloudsim::{
    BootLatency, InstanceType, NetModel, PersistentStore, SimClock, SimCloud, StorageTier,
    US_PER_SEC,
};
use proptest::prelude::*;

proptest! {
    /// Node-seconds integrate exactly: for any interleaving of allocations,
    /// waits and deallocations, the integral equals the sum of instance
    /// lifetimes.
    #[test]
    fn billing_node_seconds_are_exact(
        ops in proptest::collection::vec((any::<bool>(), 1u64..10_000), 1..60),
    ) {
        let clock = SimClock::new();
        let mut cloud = SimCloud::new(clock.clone(), 1, BootLatency::instant());
        let mut live: Vec<ecc_cloudsim::InstanceId> = Vec::new();
        let mut expected_us: u64 = 0;
        let mut last_t = 0u64;
        let settle = |now: u64, live: &Vec<ecc_cloudsim::InstanceId>, last: &mut u64, acc: &mut u64| {
            *acc += (now - *last) * live.len() as u64;
            *last = now;
        };
        for (alloc, dt_us) in ops {
            let now = clock.advance_us(dt_us);
            settle(now, &live, &mut last_t, &mut expected_us);
            if alloc || live.is_empty() {
                live.push(cloud.allocate(InstanceType::ec2_small()).id);
            } else {
                let id = live.swap_remove(0);
                cloud.deallocate(id);
            }
        }
        let now = clock.advance_us(1000);
        settle(now, &live, &mut last_t, &mut expected_us);
        prop_assert_eq!(cloud.billing().node_us, expected_us);
    }

    /// Billing is monotone in time: waiting longer never reduces the bill.
    #[test]
    fn billing_is_monotone(waits in proptest::collection::vec(1u64..3600, 1..20)) {
        let clock = SimClock::new();
        let mut cloud = SimCloud::new(clock.clone(), 2, BootLatency::instant());
        let _ = cloud.allocate(InstanceType::ec2_small());
        let _ = cloud.allocate(InstanceType::ec2_large());
        let mut last = 0;
        for w in waits {
            clock.advance_us(w * US_PER_SEC);
            let cost = cloud.billing().microdollars;
            prop_assert!(cost >= last);
            last = cost;
        }
    }

    /// Transfer time is monotone in payload size and additive-dominant:
    /// shipping two payloads separately never beats one combined transfer
    /// by more than the extra latency.
    #[test]
    fn net_model_is_monotone_and_subadditive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        for net in [NetModel::lan(), NetModel::wan()] {
            prop_assert!(net.transfer_us(a.max(b)) >= net.transfer_us(a.min(b)));
            let combined = net.transfer_us(a + b);
            let separate = net.transfer_us(a) + net.transfer_us(b);
            prop_assert!(separate + 2 >= combined, "{separate} vs {combined}");
        }
    }

    /// The store's byte counter always equals the sum of resident object
    /// sizes, under arbitrary put/delete interleavings.
    #[test]
    fn persistent_store_bytes_are_conserved(
        ops in proptest::collection::vec((any::<u8>(), 0usize..200, any::<bool>()), 1..100),
    ) {
        let mut store = PersistentStore::new(StorageTier::s3_2010());
        let mut oracle: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut t = 0u64;
        for (key, size, is_put) in ops {
            t += 7;
            let key = key as u64 % 32;
            if is_put {
                store.put(t, key, vec![0; size]);
                oracle.insert(key, size);
            } else {
                let existed = store.delete(t, key);
                prop_assert_eq!(existed, oracle.remove(&key).is_some());
            }
        }
        let expect: u64 = oracle.values().map(|&s| s as u64).sum();
        prop_assert_eq!(store.bytes(), expect);
        prop_assert_eq!(store.len(), oracle.len());
        for (k, size) in oracle {
            let (got, _) = store.get(t, k);
            prop_assert_eq!(got.map(|v| v.len()), Some(size));
        }
    }

    /// Storage cost is monotone in time and in activity.
    #[test]
    fn storage_cost_is_monotone(sizes in proptest::collection::vec(1usize..4096, 1..40)) {
        let mut store = PersistentStore::new(StorageTier::ebs_2010());
        let mut t = 0u64;
        let mut last_cost = 0u64;
        for (i, size) in sizes.into_iter().enumerate() {
            t += 3600 * US_PER_SEC;
            store.put(t, i as u64, vec![0; size]);
            let cost = store.cost_microdollars(t);
            prop_assert!(cost >= last_cost, "cost went down: {last_cost} -> {cost}");
            last_cost = cost;
        }
    }
}
