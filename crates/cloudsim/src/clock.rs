//! The shared virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::US_PER_SEC;

/// A monotonically advancing virtual clock, shared by cloning.
///
/// The clock only moves when a component explicitly charges time against it
/// (`advance_*`), which makes experiments deterministic and lets a
/// laptop-scale run cover weeks of simulated EC2 time. Internally an
/// `Arc<AtomicU64>` of microseconds: cheap to clone into every subsystem and
/// safe to share with the threaded TCP layer.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A fresh clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in microseconds.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Current virtual time in (fractional) seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_us() as f64 / US_PER_SEC as f64
    }

    /// Advance by `us` microseconds, returning the new time.
    #[inline]
    pub fn advance_us(&self, us: u64) -> u64 {
        self.micros.fetch_add(us, Ordering::Relaxed) + us
    }

    /// Advance by (fractional, non-negative) seconds.
    pub fn advance_secs(&self, secs: f64) -> u64 {
        assert!(secs >= 0.0 && secs.is_finite(), "cannot rewind the clock");
        self.advance_us((secs * US_PER_SEC as f64).round() as u64)
    }

    /// Move the clock forward to `target_us` if it is ahead of now; no-op
    /// otherwise. Returns the new time.
    pub fn advance_to_us(&self, target_us: u64) -> u64 {
        let mut cur = self.now_us();
        while target_us > cur {
            match self.micros.compare_exchange_weak(
                cur,
                target_us,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return target_us,
                Err(seen) => cur = seen,
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.advance_us(5), 5);
        assert_eq!(c.now_us(), 5);
        c.advance_secs(1.5);
        assert_eq!(c.now_us(), 5 + 1_500_000);
        assert!((c.now_secs() - 1.500005).abs() < 1e-9);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_us(100);
        assert_eq!(b.now_us(), 100);
        b.advance_us(1);
        assert_eq!(a.now_us(), 101);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance_us(50);
        assert_eq!(c.advance_to_us(40), 50);
        assert_eq!(c.advance_to_us(60), 60);
        assert_eq!(c.now_us(), 60);
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn negative_seconds_rejected() {
        SimClock::new().advance_secs(-1.0);
    }

    #[test]
    fn is_shareable_across_threads() {
        let c = SimClock::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                c2.advance_us(1);
            }
        });
        for _ in 0..1000 {
            c.advance_us(1);
        }
        h.join().unwrap();
        assert_eq!(c.now_us(), 2000);
    }
}
