//! The merged event timeline consumed by figure harnesses.

use serde::{Deserialize, Serialize};

use crate::cloud::InstanceId;

/// Something that happened at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// An instance allocation was requested; it becomes usable `boot_us`
    /// later.
    Allocated {
        /// Virtual time of the request.
        at_us: u64,
        /// The new instance.
        id: InstanceId,
        /// Sampled boot latency.
        boot_us: u64,
    },
    /// An instance was terminated.
    Deallocated {
        /// Virtual time of termination.
        at_us: u64,
        /// The terminated instance.
        id: InstanceId,
    },
    /// A bucket split migrated records between nodes (cache-side event;
    /// Figure 4's per-split overhead combines this with any `Allocated`
    /// event of the same split).
    Migration {
        /// Virtual time the migration started.
        at_us: u64,
        /// Records moved.
        records: u64,
        /// Payload bytes moved.
        bytes: u64,
        /// Modelled duration of the move.
        duration_us: u64,
        /// Whether this migration had to allocate a brand-new node.
        allocated_node: bool,
    },
    /// Two lightly loaded nodes were merged during contraction.
    Merge {
        /// Virtual time of the merge.
        at_us: u64,
        /// Records moved into the surviving node.
        records: u64,
        /// Modelled duration of the move.
        duration_us: u64,
    },
}

impl Event {
    /// The virtual timestamp of the event.
    pub fn at_us(&self) -> u64 {
        match *self {
            Event::Allocated { at_us, .. }
            | Event::Deallocated { at_us, .. }
            | Event::Migration { at_us, .. }
            | Event::Merge { at_us, .. } => at_us,
        }
    }
}

/// An append-only, time-ordered event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventTrace {
    events: Vec<Event>,
}

impl EventTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events, in insertion (= time) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All allocation events.
    pub fn allocations(&self) -> impl Iterator<Item = (u64, InstanceId, u64)> + '_ {
        self.events.iter().filter_map(|e| match *e {
            Event::Allocated { at_us, id, boot_us } => Some((at_us, id, boot_us)),
            _ => None,
        })
    }

    /// All migration events.
    pub fn migrations(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Migration { .. }))
    }

    /// Reconstruct the active-node-count step function as
    /// `(time_us, count)` change points, starting at `(0, 0)`.
    pub fn node_count_series(&self) -> Vec<(u64, usize)> {
        let mut series = vec![(0u64, 0usize)];
        let mut count = 0usize;
        for e in &self.events {
            match e {
                Event::Allocated { at_us, .. } => {
                    count += 1;
                    series.push((*at_us, count));
                }
                Event::Deallocated { at_us, .. } => {
                    count = count.saturating_sub(1);
                    series.push((*at_us, count));
                }
                _ => {}
            }
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_series_steps_up_and_down() {
        let mut t = EventTrace::new();
        t.push(Event::Allocated {
            at_us: 10,
            id: InstanceId(0),
            boot_us: 5,
        });
        t.push(Event::Allocated {
            at_us: 20,
            id: InstanceId(1),
            boot_us: 5,
        });
        t.push(Event::Deallocated {
            at_us: 30,
            id: InstanceId(0),
        });
        assert_eq!(
            t.node_count_series(),
            vec![(0, 0), (10, 1), (20, 2), (30, 1)]
        );
    }

    #[test]
    fn filters_select_event_kinds() {
        let mut t = EventTrace::new();
        t.push(Event::Allocated {
            at_us: 1,
            id: InstanceId(0),
            boot_us: 2,
        });
        t.push(Event::Migration {
            at_us: 3,
            records: 10,
            bytes: 100,
            duration_us: 7,
            allocated_node: true,
        });
        t.push(Event::Merge {
            at_us: 9,
            records: 4,
            duration_us: 2,
        });
        assert_eq!(t.allocations().count(), 1);
        assert_eq!(t.migrations().count(), 1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[2].at_us(), 9);
    }
}
