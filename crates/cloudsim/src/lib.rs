//! A discrete-event IaaS cloud substrate standing in for Amazon EC2.
//!
//! The paper evaluates its cache on real EC2 *Small* instances. This crate
//! replaces that testbed with a deterministic simulator exposing exactly the
//! knobs the paper's results depend on:
//!
//! * a **virtual clock** ([`SimClock`]) in microseconds — every cache
//!   operation charges a modelled duration against it,
//! * **instance allocation** with EC2-boot-scale latency ([`SimCloud`]),
//!   the dominant term of the paper's node-split overhead (Figure 4),
//! * **billing** per started instance-hour, EC2's 2010 pricing model
//!   ([`Billing`]), plus the node-seconds integral used to report "average
//!   nodes allocated over the lifespan of the experiment",
//! * a **network model** ([`NetModel`]) giving the per-record transfer time
//!   `T_net` that the paper's complexity analysis is expressed in, and
//! * an **event trace** ([`EventTrace`]) from which the figure harnesses
//!   reconstruct allocation/migration overhead series.
//!
//! Everything stochastic (boot-latency jitter) is seeded, so a given seed
//! reproduces an experiment bit-for-bit.
//!
//! # Example
//!
//! ```
//! use ecc_cloudsim::{BootLatency, InstanceType, NetModel, SimClock, SimCloud};
//!
//! let clock = SimClock::new();
//! let mut cloud = SimCloud::new(clock.clone(), 42, BootLatency::ec2_like());
//! let receipt = cloud.allocate(InstanceType::ec2_small());
//! // The caller decides whether the boot blocks the critical path:
//! clock.advance_us(receipt.boot_us);
//!
//! let net = NetModel::lan();
//! clock.advance_us(net.transfer_us(1024)); // ship a 1 KiB record
//!
//! cloud.deallocate(receipt.id);
//! assert_eq!(cloud.active_count(), 0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod billing;
mod clock;
mod cloud;
mod netmodel;
mod storage;
mod trace;

pub use billing::Billing;
pub use clock::SimClock;
pub use cloud::{AllocationReceipt, BootLatency, Instance, InstanceId, InstanceType, SimCloud};
pub use netmodel::NetModel;
pub use storage::{PersistentStore, StorageTier};
pub use trace::{Event, EventTrace};

/// Microseconds per second, the clock's base unit.
pub const US_PER_SEC: u64 = 1_000_000;
