//! The network cost model (`T_net` in the paper's analysis).

use serde::{Deserialize, Serialize};

use crate::US_PER_SEC;

/// A latency + bandwidth pipe: transferring `b` bytes costs
/// `latency_us + b / bandwidth`. One such pipe connects the coordinator to
/// every cache node, and cache nodes to each other (EC2 intra-region
/// networking is flat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetModel {
    /// One-way message latency in microseconds.
    pub latency_us: u64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: u64,
}

impl NetModel {
    /// EC2-intra-region-like: 0.5 ms latency, ~100 MB/s.
    pub fn lan() -> Self {
        Self {
            latency_us: 500,
            bandwidth_bps: 100 * 1024 * 1024,
        }
    }

    /// A slower WAN-ish pipe for sensitivity experiments.
    pub fn wan() -> Self {
        Self {
            latency_us: 40_000,
            bandwidth_bps: 10 * 1024 * 1024,
        }
    }

    /// An infinitely fast network (isolates compute effects in ablations).
    pub fn instant() -> Self {
        Self {
            latency_us: 0,
            bandwidth_bps: u64::MAX,
        }
    }

    /// Time to push `bytes` through the pipe, in microseconds.
    pub fn transfer_us(&self, bytes: u64) -> u64 {
        let serialization = if self.bandwidth_bps == u64::MAX {
            0
        } else {
            // Round up: a partial byte-time still takes a tick.
            (bytes * US_PER_SEC).div_ceil(self.bandwidth_bps)
        };
        self.latency_us + serialization
    }

    /// A full request/response exchange carrying `req` and `resp` payload
    /// bytes (two latencies, both serializations).
    pub fn rtt_us(&self, req_bytes: u64, resp_bytes: u64) -> u64 {
        self.transfer_us(req_bytes) + self.transfer_us(resp_bytes)
    }

    /// The paper's `T_net`: time to move one cached record of `record_bytes`
    /// between nodes. Batched migration pays one latency per record batch in
    /// practice; we keep the conservative per-record figure the analysis
    /// uses.
    pub fn t_net_us(&self, record_bytes: u64) -> u64 {
        self.transfer_us(record_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_latency_plus_serialization() {
        let n = NetModel {
            latency_us: 100,
            bandwidth_bps: 1_000_000, // 1 MB/s = 1 byte/us
        };
        assert_eq!(n.transfer_us(0), 100);
        assert_eq!(n.transfer_us(1000), 1100);
    }

    #[test]
    fn serialization_rounds_up() {
        let n = NetModel {
            latency_us: 0,
            bandwidth_bps: 3 * US_PER_SEC, // 3 bytes/us
        };
        assert_eq!(n.transfer_us(1), 1);
        assert_eq!(n.transfer_us(3), 1);
        assert_eq!(n.transfer_us(4), 2);
    }

    #[test]
    fn rtt_doubles_latency() {
        let n = NetModel::lan();
        assert_eq!(n.rtt_us(0, 0), 2 * n.latency_us);
        assert!(n.rtt_us(100, 1000) > n.rtt_us(0, 0));
    }

    #[test]
    fn instant_network_is_free() {
        let n = NetModel::instant();
        assert_eq!(n.transfer_us(u64::MAX / US_PER_SEC), 0);
        assert_eq!(n.rtt_us(1 << 30, 1 << 30), 0);
    }

    #[test]
    fn lan_moves_small_records_in_sub_millisecond() {
        // A shoreline result (< 1 KB) ships in well under a millisecond —
        // the hit path must be ~4 orders faster than the 23 s service.
        let n = NetModel::lan();
        assert!(n.t_net_us(1024) < 1000);
    }
}
