//! Persistent cloud storage services (S3 / EBS class).
//!
//! Paper §IV-D: "We have also assessed the various cost aspects of the
//! Cloud's persistent storage, such as Amazon S3 and Elastic Block Storage
//! (EBS) … the cost varies among the added benefits of data persistence
//! and machine instances with higher bandwidth and memory." The detailed
//! study went to a companion paper; this module provides the substrate to
//! run that comparison here: storage tiers with 2010-era pricing
//! (capacity per GB-month plus per-request fees) and latency/bandwidth
//! models, and a [`PersistentStore`] that meters byte-hours and requests
//! for billing.

use std::collections::HashMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::US_PER_SEC;

/// Pricing and performance model of one storage service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageTier {
    /// Service name (e.g. `s3`).
    pub name: String,
    /// Capacity price in micro-dollars per GB-month.
    pub microdollars_per_gb_month: u64,
    /// Micro-dollars per 1 000 write requests.
    pub put_microdollars_per_1k: u64,
    /// Micro-dollars per 1 000 read requests.
    pub get_microdollars_per_1k: u64,
    /// First-byte read latency in microseconds.
    pub read_latency_us: u64,
    /// First-byte write latency in microseconds.
    pub write_latency_us: u64,
    /// Sustained throughput in bytes per second.
    pub bandwidth_bps: u64,
}

impl StorageTier {
    /// Amazon S3, 2010 us-east: $0.15/GB-month, $0.01/1k PUT, $0.001/1k
    /// GET; object-store latency (~tens of ms).
    pub fn s3_2010() -> Self {
        Self {
            name: "s3".into(),
            microdollars_per_gb_month: 150_000,
            put_microdollars_per_1k: 10_000,
            get_microdollars_per_1k: 1_000,
            read_latency_us: 60_000,
            write_latency_us: 80_000,
            bandwidth_bps: 25 * 1024 * 1024,
        }
    }

    /// Amazon EBS, 2010: $0.10/GB-month plus $0.10 per million I/O
    /// requests; block-device latency (~ms).
    pub fn ebs_2010() -> Self {
        Self {
            name: "ebs".into(),
            microdollars_per_gb_month: 100_000,
            put_microdollars_per_1k: 100,
            get_microdollars_per_1k: 100,
            read_latency_us: 2_000,
            write_latency_us: 3_000,
            bandwidth_bps: 60 * 1024 * 1024,
        }
    }

    /// Time to read an object of `bytes`, in microseconds.
    pub fn read_us(&self, bytes: u64) -> u64 {
        self.read_latency_us + (bytes * US_PER_SEC).div_ceil(self.bandwidth_bps)
    }

    /// Time to write an object of `bytes`, in microseconds.
    pub fn write_us(&self, bytes: u64) -> u64 {
        self.write_latency_us + (bytes * US_PER_SEC).div_ceil(self.bandwidth_bps)
    }
}

/// A metered key-value store on one storage tier.
///
/// The store tracks a byte-hours integral (for GB-month capacity billing)
/// and request counts. It does not advance any clock itself — operations
/// return their modelled duration and the caller charges it, consistent
/// with the rest of the simulator.
#[derive(Debug)]
pub struct PersistentStore {
    tier: StorageTier,
    objects: HashMap<u64, Bytes>,
    bytes: u64,
    /// `∫ bytes dt` in byte-microseconds, up to `last_change_us`.
    byte_us: u128,
    last_change_us: u64,
    puts: u64,
    gets: u64,
}

impl PersistentStore {
    /// An empty store on `tier`.
    pub fn new(tier: StorageTier) -> Self {
        Self {
            tier,
            objects: HashMap::new(),
            bytes: 0,
            byte_us: 0,
            last_change_us: 0,
            puts: 0,
            gets: 0,
        }
    }

    /// The tier model.
    pub fn tier(&self) -> &StorageTier {
        &self.tier
    }

    /// Objects currently stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Bytes currently stored.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total write requests issued.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Total read requests issued.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    fn settle(&mut self, now_us: u64) {
        let dt = now_us.saturating_sub(self.last_change_us);
        self.byte_us += self.bytes as u128 * dt as u128;
        self.last_change_us = now_us;
    }

    /// Write an object at virtual time `now_us`; returns the modelled
    /// duration for the caller to charge. The payload is taken as
    /// refcounted [`Bytes`], so the cache's write-behind eviction path
    /// shares the record allocation instead of copying it.
    pub fn put(&mut self, now_us: u64, key: u64, value: impl Into<Bytes>) -> u64 {
        self.settle(now_us);
        let value = value.into();
        let new_len = value.len() as u64;
        if let Some(old) = self.objects.insert(key, value) {
            self.bytes -= old.len() as u64;
        }
        self.bytes += new_len;
        self.puts += 1;
        self.tier.write_us(new_len)
    }

    /// Read an object at virtual time `now_us`; returns the payload (if
    /// present, as a refcount-bump clone) and the modelled duration.
    pub fn get(&mut self, now_us: u64, key: u64) -> (Option<Bytes>, u64) {
        self.gets += 1;
        let found = self.objects.get(&key).cloned();
        let bytes = found.as_ref().map(|v| v.len() as u64).unwrap_or(0);
        let _ = now_us; // reads do not change the capacity integral
        (found, self.tier.read_us(bytes))
    }

    /// Delete an object at virtual time `now_us` (no request fee is
    /// modelled for deletes, matching 2010 S3 pricing).
    pub fn delete(&mut self, now_us: u64, key: u64) -> bool {
        self.settle(now_us);
        match self.objects.remove(&key) {
            Some(v) => {
                self.bytes -= v.len() as u64;
                true
            }
            None => false,
        }
    }

    /// Total cost in micro-dollars as of `now_us`: capacity (GB-months,
    /// prorated) plus request fees.
    pub fn cost_microdollars(&self, now_us: u64) -> u64 {
        let dt = now_us.saturating_sub(self.last_change_us);
        let byte_us = self.byte_us + self.bytes as u128 * dt as u128;
        // GB-month = 2^30 bytes * (30 days of microseconds).
        let gb_month_us: u128 = (1u128 << 30) * 30 * 24 * 3600 * US_PER_SEC as u128;
        let capacity = (byte_us * self.tier.microdollars_per_gb_month as u128 / gb_month_us) as u64;
        let requests = self.puts * self.tier.put_microdollars_per_1k / 1000
            + self.gets * self.tier.get_microdollars_per_1k / 1000;
        capacity + requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR_US: u64 = 3600 * US_PER_SEC;

    #[test]
    fn put_get_delete_roundtrip() {
        let mut s = PersistentStore::new(StorageTier::ebs_2010());
        let d = s.put(0, 7, vec![1, 2, 3]);
        assert!(d >= 3_000);
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes(), 3);
        let (got, d) = s.get(10, 7);
        assert_eq!(got.as_deref(), Some(&[1u8, 2, 3][..]));
        assert!(d >= 2_000);
        assert!(s.delete(20, 7));
        assert!(!s.delete(21, 7));
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn replacement_adjusts_bytes() {
        let mut s = PersistentStore::new(StorageTier::s3_2010());
        s.put(0, 1, vec![0; 100]);
        s.put(0, 1, vec![0; 10]);
        assert_eq!(s.bytes(), 10);
        assert_eq!(s.puts(), 2);
    }

    #[test]
    fn capacity_billing_integrates_byte_hours() {
        let mut s = PersistentStore::new(StorageTier::s3_2010());
        // 1 GiB for one 30-day month = exactly the GB-month rate.
        s.put(0, 1, vec![0; 1 << 30]);
        let month_us = 30 * 24 * HOUR_US;
        let cost = s.cost_microdollars(month_us);
        let expect = 150_000 + 10; // capacity + one PUT fee (10 µ$)
        assert!(
            (cost as i64 - expect as i64).abs() <= 1,
            "cost {cost}, expected ~{expect}"
        );
    }

    #[test]
    fn request_fees_accumulate() {
        let mut s = PersistentStore::new(StorageTier::s3_2010());
        for k in 0..1000u64 {
            s.put(0, k, vec![0; 8]);
        }
        for k in 0..2000u64 {
            s.get(0, k % 1000);
        }
        // 1000 PUTs = $0.01 = 10 000 µ$; 2000 GETs = $0.002 = 2 000 µ$.
        let cost = s.cost_microdollars(0);
        assert_eq!(cost, 12_000);
    }

    #[test]
    fn deleting_stops_capacity_accrual() {
        let mut s = PersistentStore::new(StorageTier::ebs_2010());
        s.put(0, 1, vec![0; 1 << 30]);
        s.delete(10 * HOUR_US, 1);
        let at_10h = s.cost_microdollars(10 * HOUR_US);
        let at_1000h = s.cost_microdollars(1000 * HOUR_US);
        assert_eq!(at_10h, at_1000h, "empty store must stop accruing");
    }

    #[test]
    fn s3_reads_are_slower_but_cheaper_to_keep_than_ebs_is_to_request() {
        let s3 = StorageTier::s3_2010();
        let ebs = StorageTier::ebs_2010();
        assert!(s3.read_us(1024) > ebs.read_us(1024));
        assert!(s3.get_microdollars_per_1k > ebs.get_microdollars_per_1k);
        assert!(s3.microdollars_per_gb_month > ebs.microdollars_per_gb_month);
    }

    #[test]
    fn missing_objects_read_fast_and_empty() {
        let mut s = PersistentStore::new(StorageTier::s3_2010());
        let (got, d) = s.get(0, 404);
        assert_eq!(got, None);
        assert_eq!(d, s.tier().read_latency_us);
        assert_eq!(s.gets(), 1);
    }
}
