//! Cost accounting in EC2's 2010 billing model.

use serde::{Deserialize, Serialize};

use crate::cloud::Instance;
use crate::US_PER_SEC;

/// A billing snapshot over a set of instances at a point in virtual time.
///
/// Two views are provided, because the paper argues about both:
///
/// * **dollars** — EC2 billed every *started* hour in 2010
///   (`ceil(runtime_hours) × rate`, minimum one hour), which is what "GBA is
///   cheaper than static allocation" is measured in, and
/// * **node-seconds** — the integral `∫ active_nodes dt`, whose average the
///   paper reports as e.g. "⌈12.6⌉ = 13 nodes … averaged over the lifespan
///   of this experiment".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct Billing {
    /// Total cost in micro-dollars (per-started-hour rounding).
    pub microdollars: u64,
    /// `∫ active_nodes dt` in node-microseconds.
    pub node_us: u64,
    /// Instances launched.
    pub launched: usize,
    /// Instances still running at the snapshot time.
    pub active: usize,
}

impl Billing {
    /// Compute a snapshot at `now_us`. Instances not yet terminated are
    /// billed through `now_us`.
    pub fn compute(instances: &[Instance], now_us: u64) -> Self {
        let mut microdollars = 0u64;
        let mut node_us = 0u64;
        let mut active = 0usize;
        for inst in instances {
            let end = inst
                .terminated_at_us
                .unwrap_or(now_us)
                .max(inst.launched_at_us);
            let run_us = end - inst.launched_at_us;
            node_us += run_us;
            let hours = run_us.div_ceil(3600 * US_PER_SEC).max(1);
            microdollars += hours * inst.itype.microdollars_per_hour;
            if inst.terminated_at_us.is_none() {
                active += 1;
            }
        }
        Self {
            microdollars,
            node_us,
            launched: instances.len(),
            active,
        }
    }

    /// Cost in dollars.
    pub fn dollars(&self) -> f64 {
        self.microdollars as f64 / 1e6
    }

    /// Average number of simultaneously active nodes over `[0, now_us]`.
    pub fn avg_nodes(&self, now_us: u64) -> f64 {
        if now_us == 0 {
            0.0
        } else {
            self.node_us as f64 / now_us as f64
        }
    }

    /// Node-hours consumed.
    pub fn node_hours(&self) -> f64 {
        self.node_us as f64 / (3600.0 * US_PER_SEC as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{InstanceId, InstanceType};

    fn inst(id: u32, launched_s: u64, terminated_s: Option<u64>) -> Instance {
        Instance {
            id: InstanceId(id),
            itype: InstanceType::ec2_small(),
            launched_at_us: launched_s * US_PER_SEC,
            ready_at_us: launched_s * US_PER_SEC,
            terminated_at_us: terminated_s.map(|s| s * US_PER_SEC),
        }
    }

    #[test]
    fn started_hours_round_up() {
        // 1 second of runtime bills one full hour.
        let b = Billing::compute(&[inst(0, 0, Some(1))], 10 * US_PER_SEC);
        assert_eq!(b.microdollars, 85_000);
        // 3601 seconds bills two hours.
        let b = Billing::compute(&[inst(0, 0, Some(3601))], 4000 * US_PER_SEC);
        assert_eq!(b.microdollars, 2 * 85_000);
        // Exactly one hour bills one hour.
        let b = Billing::compute(&[inst(0, 0, Some(3600))], 4000 * US_PER_SEC);
        assert_eq!(b.microdollars, 85_000);
    }

    #[test]
    fn running_instances_bill_through_now() {
        let b = Billing::compute(&[inst(0, 0, None)], 7200 * US_PER_SEC);
        assert_eq!(b.microdollars, 2 * 85_000);
        assert_eq!(b.active, 1);
    }

    #[test]
    fn zero_runtime_still_bills_minimum_hour() {
        let b = Billing::compute(&[inst(0, 5, Some(5))], 5 * US_PER_SEC);
        assert_eq!(b.microdollars, 85_000);
    }

    #[test]
    fn node_seconds_integrate_overlapping_instances() {
        // Two instances: [0, 100] and [50, 150] -> 200 node-seconds.
        let insts = [inst(0, 0, Some(100)), inst(1, 50, Some(150))];
        let b = Billing::compute(&insts, 200 * US_PER_SEC);
        assert_eq!(b.node_us, 200 * US_PER_SEC);
        assert!((b.avg_nodes(200 * US_PER_SEC) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_nodes_matches_hand_computation() {
        // One node for the whole window, a second for half of it.
        let insts = [inst(0, 0, None), inst(1, 0, Some(50))];
        let b = Billing::compute(&insts, 100 * US_PER_SEC);
        assert!((b.avg_nodes(100 * US_PER_SEC) - 1.5).abs() < 1e-12);
        assert!((b.node_hours() - 150.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn dollars_converts_microdollars() {
        let b = Billing::compute(&[inst(0, 0, Some(1))], US_PER_SEC);
        assert!((b.dollars() - 0.085).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_costs_nothing() {
        let b = Billing::compute(&[], 1000);
        assert_eq!(b.microdollars, 0);
        assert_eq!(b.node_us, 0);
        assert_eq!(b.avg_nodes(0), 0.0);
    }
}
