//! Instance lifecycle management with modelled allocation latency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::billing::Billing;
use crate::clock::SimClock;
use crate::trace::{Event, EventTrace};
use crate::US_PER_SEC;

/// Opaque identifier of a (possibly terminated) instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i-{:05}", self.0)
    }
}

/// A machine-type definition: memory capacity and hourly price.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Human-readable type name (e.g. `m1.small`).
    pub name: String,
    /// Usable main memory in bytes — the cache-capacity bound `⌈n⌉`.
    pub mem_bytes: u64,
    /// Price in micro-dollars per (started) hour.
    pub microdollars_per_hour: u64,
}

impl InstanceType {
    /// The paper's testbed machine: EC2 Small — 1.7 GB memory, one virtual
    /// core, $0.085/hour (2010 us-east pricing).
    pub fn ec2_small() -> Self {
        Self {
            name: "m1.small".into(),
            mem_bytes: 1_700 * 1024 * 1024,
            microdollars_per_hour: 85_000,
        }
    }

    /// EC2 Large: 7.5 GB, $0.34/hour — used in the paper's storage-cost
    /// discussion (§IV-D).
    pub fn ec2_large() -> Self {
        Self {
            name: "m1.large".into(),
            mem_bytes: 7_680 * 1024 * 1024,
            microdollars_per_hour: 340_000,
        }
    }

    /// A custom type; handy for experiments that reason in records rather
    /// than bytes.
    pub fn custom(name: &str, mem_bytes: u64, microdollars_per_hour: u64) -> Self {
        Self {
            name: name.into(),
            mem_bytes,
            microdollars_per_hour,
        }
    }
}

/// Boot latency model: uniform over `[base_us, base_us + jitter_us]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootLatency {
    /// Minimum boot time in microseconds.
    pub base_us: u64,
    /// Width of the uniform jitter window in microseconds.
    pub jitter_us: u64,
}

impl BootLatency {
    /// EC2-2010-like boot: 70–110 s (instance request, image fetch, boot,
    /// cache-server start — the overhead Figure 4 attributes node splits to).
    pub fn ec2_like() -> Self {
        Self {
            base_us: 70 * US_PER_SEC,
            jitter_us: 40 * US_PER_SEC,
        }
    }

    /// Constant latency (no jitter) — used by ablations.
    pub fn fixed(us: u64) -> Self {
        Self {
            base_us: us,
            jitter_us: 0,
        }
    }

    /// Instantaneous boot — the "asynchronous preloading / instant VM"
    /// future-work scenario of §VI.
    pub fn instant() -> Self {
        Self::fixed(0)
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.jitter_us == 0 {
            self.base_us
        } else {
            self.base_us + rng.gen_range(0..=self.jitter_us)
        }
    }
}

/// One allocated (or by-now terminated) machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Identifier, dense from zero.
    pub id: InstanceId,
    /// The machine type it was launched as.
    pub itype: InstanceType,
    /// Virtual time the allocation was requested (billing starts here).
    pub launched_at_us: u64,
    /// Virtual time the machine became usable (`launched_at + boot`).
    pub ready_at_us: u64,
    /// Virtual time of termination, if terminated.
    pub terminated_at_us: Option<u64>,
}

impl Instance {
    /// Whether the instance is still running.
    pub fn is_active(&self) -> bool {
        self.terminated_at_us.is_none()
    }
}

/// What [`SimCloud::allocate`] hands back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct AllocationReceipt {
    /// The new instance's id.
    pub id: InstanceId,
    /// Sampled boot latency. The *caller* decides whether this blocks the
    /// critical path (`clock.advance_us(boot_us)`) — GBA blocks on it, an
    /// asynchronous-preloading variant would not.
    pub boot_us: u64,
    /// `launched_at + boot_us`.
    pub ready_at_us: u64,
}

/// The simulated provider: owns the instance table, boot-latency sampler,
/// and event trace. All randomness comes from the seed given at
/// construction.
#[derive(Debug)]
pub struct SimCloud {
    clock: SimClock,
    rng: SmallRng,
    boot: BootLatency,
    instances: Vec<Instance>,
    trace: EventTrace,
}

impl SimCloud {
    /// Create a provider bound to `clock`, with deterministic jitter from
    /// `seed` and the given boot-latency model.
    pub fn new(clock: SimClock, seed: u64, boot: BootLatency) -> Self {
        Self {
            clock,
            rng: SmallRng::seed_from_u64(seed),
            boot,
            instances: Vec::new(),
            trace: EventTrace::new(),
        }
    }

    /// The clock this provider charges time against.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Replace the boot-latency model (ablation harnesses).
    pub fn set_boot_latency(&mut self, boot: BootLatency) {
        self.boot = boot;
    }

    /// Request a new machine. Does **not** advance the clock — see
    /// [`AllocationReceipt::boot_us`].
    pub fn allocate(&mut self, itype: InstanceType) -> AllocationReceipt {
        let now = self.clock.now_us();
        let boot_us = self.boot.sample(&mut self.rng);
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(Instance {
            id,
            itype,
            launched_at_us: now,
            ready_at_us: now + boot_us,
            terminated_at_us: None,
        });
        self.trace.push(Event::Allocated {
            at_us: now,
            id,
            boot_us,
        });
        AllocationReceipt {
            id,
            boot_us,
            ready_at_us: now + boot_us,
        }
    }

    /// Terminate a machine. Idempotent: terminating twice keeps the first
    /// termination time.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn deallocate(&mut self, id: InstanceId) {
        let now = self.clock.now_us();
        let inst = &mut self.instances[id.0 as usize];
        if inst.terminated_at_us.is_none() {
            inst.terminated_at_us = Some(now);
            self.trace.push(Event::Deallocated { at_us: now, id });
        }
    }

    /// Look up an instance record.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// All instances ever launched, in launch order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of currently running instances.
    pub fn active_count(&self) -> usize {
        self.instances.iter().filter(|i| i.is_active()).count()
    }

    /// Total instances ever launched.
    pub fn total_launched(&self) -> usize {
        self.instances.len()
    }

    /// Billing snapshot as of the current virtual time.
    pub fn billing(&self) -> Billing {
        Billing::compute(&self.instances, self.clock.now_us())
    }

    /// The provider-side event trace.
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }

    /// Record a caller-side event (e.g. a migration) in the shared trace so
    /// figure harnesses see one merged timeline.
    pub fn record(&mut self, event: Event) {
        self.trace.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> (SimClock, SimCloud) {
        let clock = SimClock::new();
        let cloud = SimCloud::new(clock.clone(), 7, BootLatency::fixed(80 * US_PER_SEC));
        (clock, cloud)
    }

    #[test]
    fn allocation_assigns_dense_ids_and_boot_latency() {
        let (clock, mut cloud) = cloud();
        let a = cloud.allocate(InstanceType::ec2_small());
        assert_eq!(a.id, InstanceId(0));
        assert_eq!(a.boot_us, 80 * US_PER_SEC);
        assert_eq!(a.ready_at_us, 80 * US_PER_SEC);
        clock.advance_us(a.boot_us);
        let b = cloud.allocate(InstanceType::ec2_small());
        assert_eq!(b.id, InstanceId(1));
        assert_eq!(cloud.active_count(), 2);
        assert_eq!(cloud.total_launched(), 2);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = |seed| {
            let clock = SimClock::new();
            let mut c = SimCloud::new(clock, seed, BootLatency::ec2_like());
            (0..10)
                .map(|_| c.allocate(InstanceType::ec2_small()).boot_us)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
        for b in mk(3) {
            assert!((70 * US_PER_SEC..=110 * US_PER_SEC).contains(&b));
        }
    }

    #[test]
    fn deallocate_is_idempotent_and_stops_activity() {
        let (clock, mut cloud) = cloud();
        let a = cloud.allocate(InstanceType::ec2_small());
        clock.advance_secs(100.0);
        cloud.deallocate(a.id);
        let t1 = cloud.instance(a.id).terminated_at_us;
        clock.advance_secs(50.0);
        cloud.deallocate(a.id);
        assert_eq!(cloud.instance(a.id).terminated_at_us, t1);
        assert_eq!(cloud.active_count(), 0);
    }

    #[test]
    fn trace_records_lifecycle() {
        let (clock, mut cloud) = cloud();
        let a = cloud.allocate(InstanceType::ec2_small());
        clock.advance_secs(10.0);
        cloud.deallocate(a.id);
        let events = cloud.trace().events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Allocated { id, .. } if id == a.id));
        assert!(matches!(events[1], Event::Deallocated { id, .. } if id == a.id));
    }

    #[test]
    fn instance_types_expose_paper_constants() {
        let small = InstanceType::ec2_small();
        assert_eq!(small.mem_bytes, 1_700 * 1024 * 1024);
        assert_eq!(small.microdollars_per_hour, 85_000);
        assert!(InstanceType::ec2_large().mem_bytes > small.mem_bytes);
    }

    #[test]
    fn instant_boot_for_ablations() {
        let clock = SimClock::new();
        let mut cloud = SimCloud::new(clock, 0, BootLatency::instant());
        assert_eq!(cloud.allocate(InstanceType::ec2_small()).boot_us, 0);
    }
}
