//! Property tests for the key distributions and the trace pipeline
//! (ISSUE 7 satellite a): Zipf's CDF must be a true probability law, the
//! empirical rank frequencies must track the analytic form across skews,
//! hotspot hit fractions must honour `hot_prob`, and same-seed streams
//! must survive trace capture/replay byte-identically.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::scenario::Scenario;
use ecc_workload::schedule::RateSchedule;
use ecc_workload::trace::Trace;

/// The analytic Zipf pmf: P(rank i) = (1/i^s) / H(space, s), ranks 1-based.
fn zipf_pmf(space: u64, s: f64) -> Vec<f64> {
    let h: f64 = (1..=space).map(|i| 1.0 / (i as f64).powf(s)).sum();
    (1..=space).map(|i| 1.0 / (i as f64).powf(s) / h).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipf_cdf_is_monotone_and_sums_to_one(
        space in 1u64..4000,
        s_milli in 0u64..3000,
    ) {
        let s = s_milli as f64 / 1000.0;
        let d = KeyDist::zipf(space, s);
        let KeyDist::Zipf { cdf, .. } = &d else {
            panic!("zipf constructor built a non-Zipf dist");
        };
        prop_assert_eq!(cdf.len() as u64, space);
        prop_assert!(
            cdf.windows(2).all(|w| w[0] <= w[1]),
            "CDF not monotone at s={s}"
        );
        prop_assert!(cdf.iter().all(|&c| (0.0..=1.0 + 1e-12).contains(&c)));
        let last = *cdf.last().unwrap();
        prop_assert!(
            (last - 1.0).abs() < 1e-9,
            "CDF sums to {last}, not 1 (s={s}, space={space})"
        );
    }

    #[test]
    fn hotspot_hit_fraction_tracks_hot_prob(
        seed in any::<u64>(),
        hot_prob_pct in 5u64..96,
    ) {
        let hot_prob = hot_prob_pct as f64 / 100.0;
        let space = 100_000u64;
        let hot_keys = 500u64;
        let d = KeyDist::hotspot(space, hot_keys, hot_prob);
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 30_000u64;
        let hits = (0..n).filter(|_| d.sample(&mut rng) < hot_keys).count();
        let frac = hits as f64 / n as f64;
        // Expected = hot_prob + (1 - hot_prob) * hot_keys/space (cold draws
        // can land in the hot range too). Tolerance ~5 sigma of a binomial.
        let expect = hot_prob + (1.0 - hot_prob) * hot_keys as f64 / space as f64;
        let sigma = (expect * (1.0 - expect) / n as f64).sqrt();
        prop_assert!(
            (frac - expect).abs() < 5.0 * sigma + 0.005,
            "hot fraction {frac} vs expected {expect} (p={hot_prob})"
        );
    }

    #[test]
    fn same_seed_streams_are_byte_identical_through_trace_replay(
        seed in any::<u64>(),
        rate in 1u64..40,
        steps in 1u64..30,
        write_pct in 0u64..101,
    ) {
        let stream = QueryStream::new(
            RateSchedule::constant(rate),
            KeyDist::zipf(1 << 12, 1.1),
            seed,
        )
        .with_write_ratio(write_pct as f64 / 100.0);

        let t = Trace::capture_ops(stream.take_steps_ops(steps));
        let mut bytes_a = Vec::new();
        t.write_to(&mut bytes_a).unwrap();

        // A second capture from the same seed serializes to the same bytes…
        let t2 = Trace::capture_ops(stream.take_steps_ops(steps));
        let mut bytes_b = Vec::new();
        t2.write_to(&mut bytes_b).unwrap();
        prop_assert_eq!(&bytes_a, &bytes_b, "same-seed capture bytes differ");

        // …and replaying the bytes reproduces the original event stream.
        let back = Trace::read_from(&bytes_a[..]).unwrap();
        let replayed: Vec<_> = back.iter_ops().collect();
        let fresh: Vec<_> = stream.take_steps_ops(steps).collect();
        prop_assert_eq!(replayed, fresh, "trace replay diverged from stream");
    }

    #[test]
    fn scenario_streams_replay_from_their_seed(
        seed in any::<u64>(),
        which in 0usize..7,
    ) {
        let all = Scenario::all();
        let sc = &all[which % all.len()];
        let a: Vec<_> = sc.events(seed, 4).collect();
        let b: Vec<_> = sc.events(seed, 4).collect();
        prop_assert_eq!(a, b, "{} not seed-deterministic", sc.name());
    }
}

/// Empirical rank frequencies within tolerance of the analytic Zipf law at
/// the skews named in the issue: s ∈ {0.9, 1.1, 1.3}.
#[test]
fn zipf_empirical_ranks_match_the_analytic_law() {
    let space = 1024u64;
    let n = 200_000u64;
    for (si, &s) in [0.9f64, 1.1, 1.3].iter().enumerate() {
        let d = KeyDist::zipf(space, s);
        let pmf = zipf_pmf(space, s);
        let mut rng = SmallRng::seed_from_u64(1000 + si as u64);
        let mut counts = vec![0u64; space as usize];
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        // Check the head ranks individually (they carry the mass the
        // placement policies care about)…
        for rank in 0..20usize {
            let emp = counts[rank] as f64 / n as f64;
            let expect = pmf[rank];
            let sigma = (expect * (1.0 - expect) / n as f64).sqrt();
            assert!(
                (emp - expect).abs() < 6.0 * sigma + 1e-4,
                "s={s} rank {rank}: empirical {emp:.5} vs analytic {expect:.5}"
            );
        }
        // …and the tail in aggregate.
        let tail_emp: f64 = counts[100..].iter().sum::<u64>() as f64 / n as f64;
        let tail_expect: f64 = pmf[100..].iter().sum();
        assert!(
            (tail_emp - tail_expect).abs() < 0.01,
            "s={s} tail mass: empirical {tail_emp:.4} vs analytic {tail_expect:.4}"
        );
        // Frequencies must be (statistically) rank-decreasing: compare
        // coarse buckets rather than adjacent ranks to absorb noise.
        let head: u64 = counts[..8].iter().sum();
        let mid: u64 = counts[8..64].iter().sum::<u64>() / 7;
        assert!(
            head > mid,
            "s={s}: head ranks not hotter than mid ranks ({head} vs {mid})"
        );
    }
}
