//! The scenario zoo: named, seeded workload configurations.
//!
//! A [`Scenario`] bundles a rate schedule, a key distribution, a read/write
//! mix and a default horizon under a stable name, so the same workload can
//! be driven through cloudsim (virtual time), the live `loadgen` binary
//! (`--scenario <name>`) and the simtest oracle — all byte-identical from
//! one seed. The registry is the single source of truth: everything that
//! accepts a scenario name resolves it through [`Scenario::by_name`].

use crate::driver::{Op, QueryStream};
use crate::keys::KeyDist;
use crate::schedule::{RateSchedule, Spike};
use crate::trace::Trace;

/// A named workload configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: &'static str,
    summary: &'static str,
    schedule: RateSchedule,
    dist: KeyDist,
    write_ratio: f64,
    default_steps: u64,
}

impl Scenario {
    /// The registry: every zoo scenario, in stable order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "paper_shoreline",
                summary: "paper §IV-C eviction phases, uniform 32K keys (50/250/50 q/step)",
                schedule: RateSchedule::paper_eviction_phases(),
                dist: KeyDist::uniform(32 * 1024),
                write_ratio: 0.0,
                default_steps: 500,
            },
            Scenario {
                name: "zipf_hot",
                summary: "flat 200 q/step, Zipf s=1.1 over 64K keys (skewed hot ranks)",
                schedule: RateSchedule::constant(200),
                dist: KeyDist::zipf(64 * 1024, 1.1),
                write_ratio: 0.0,
                default_steps: 400,
            },
            Scenario {
                name: "shifting_hotset",
                summary: "flat 200 q/step, 512-key hot set (p=0.9) rotating every 50 steps",
                schedule: RateSchedule::constant(200),
                dist: KeyDist::shifting_hotspot(64 * 1024, 512, 0.9, 50),
                write_ratio: 0.0,
                default_steps: 400,
            },
            Scenario {
                name: "diurnal",
                summary: "sine load 150±120 q/step over a 200-step day, Zipf s=0.9 keys",
                schedule: RateSchedule::diurnal(150, 120, 200),
                dist: KeyDist::zipf(32 * 1024, 0.9),
                write_ratio: 0.0,
                default_steps: 600,
            },
            Scenario {
                name: "flash_crowd",
                summary: "baseline 40 q/step with a ×50 spike at steps 200..220, hotspot keys",
                schedule: RateSchedule::constant(40).with_flash_crowds(vec![Spike {
                    at: 200,
                    len: 20,
                    mult: 50,
                }]),
                dist: KeyDist::hotspot(64 * 1024, 256, 0.8),
                write_ratio: 0.0,
                default_steps: 400,
            },
            Scenario {
                name: "multi_tenant",
                summary: "three tenants (weights 5/3/1: Zipf, hotspot, uniform), 10% writes",
                schedule: RateSchedule::constant(150),
                dist: KeyDist::multi_tenant(vec![
                    (5.0, KeyDist::zipf(16 * 1024, 1.0)),
                    (3.0, KeyDist::hotspot(16 * 1024, 128, 0.9)),
                    (1.0, KeyDist::uniform(16 * 1024)),
                ]),
                write_ratio: 0.1,
                default_steps: 400,
            },
            Scenario {
                name: "write_heavy",
                summary: "flat 150 q/step, uniform 32K keys, 50% writes",
                schedule: RateSchedule::constant(150),
                dist: KeyDist::uniform(32 * 1024),
                write_ratio: 0.5,
                default_steps: 300,
            },
        ]
    }

    /// All scenario names, in registry order.
    pub fn names() -> Vec<&'static str> {
        Self::all().iter().map(|s| s.name).collect()
    }

    /// Look a scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Self::all().into_iter().find(|s| s.name == name)
    }

    /// The scenario's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// A one-line human description.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// The rate schedule.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// The key distribution.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// The write fraction.
    pub fn write_ratio(&self) -> f64 {
        self.write_ratio
    }

    /// The horizon a full run uses when the caller does not override it.
    pub fn default_steps(&self) -> u64 {
        self.default_steps
    }

    /// The deterministic query stream for this scenario at `seed`.
    pub fn stream(&self, seed: u64) -> QueryStream {
        QueryStream::new(self.schedule.clone(), self.dist.clone(), seed)
            .with_write_ratio(self.write_ratio)
    }

    /// Generate the first `steps` time steps as `(step, op, key)` events.
    pub fn events(&self, seed: u64, steps: u64) -> impl Iterator<Item = (u64, Op, u64)> {
        self.stream(seed).take_steps_ops(steps)
    }

    /// Capture the first `steps` time steps as a replayable [`Trace`].
    pub fn capture(&self, seed: u64, steps: u64) -> Trace {
        Trace::capture_ops(self.events(seed, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = Scenario::names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate scenario name {n}");
            assert!(Scenario::by_name(n).is_some());
        }
        assert!(Scenario::by_name("no_such_scenario").is_none());
        assert!(names.contains(&"paper_shoreline"));
        assert!(names.contains(&"flash_crowd"));
    }

    #[test]
    fn every_scenario_is_deterministic_from_its_seed() {
        for sc in Scenario::all() {
            let a: Vec<_> = sc.events(42, 8).collect();
            let b: Vec<_> = sc.events(42, 8).collect();
            assert_eq!(a, b, "{} not deterministic", sc.name());
            let c: Vec<_> = sc.events(43, 8).collect();
            assert_ne!(a, c, "{} ignores its seed", sc.name());
        }
    }

    #[test]
    fn every_scenario_replays_byte_identically_through_a_trace() {
        for sc in Scenario::all() {
            let t = sc.capture(7, 6);
            let mut buf = Vec::new();
            t.write_to(&mut buf).unwrap();
            let back = Trace::read_from(&buf[..]).unwrap();
            let replayed: Vec<_> = back.iter_ops().collect();
            let fresh: Vec<_> = sc.events(7, 6).collect();
            assert_eq!(replayed, fresh, "{} trace replay diverged", sc.name());
        }
    }

    #[test]
    fn keys_stay_inside_each_scenario_space() {
        for sc in Scenario::all() {
            let space = sc.dist().space();
            for (_, _, k) in sc.events(3, 5) {
                assert!(k < space, "{} drew {k} ≥ space {space}", sc.name());
            }
        }
    }

    #[test]
    fn write_ratios_show_up_in_the_stream() {
        let wh = Scenario::by_name("write_heavy").unwrap();
        let events: Vec<_> = wh.events(11, 40).collect();
        let writes = events.iter().filter(|(_, op, _)| *op == Op::Write).count();
        let frac = writes as f64 / events.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "write fraction {frac}");

        let ro = Scenario::by_name("paper_shoreline").unwrap();
        assert!(ro.events(11, 5).all(|(_, op, _)| op == Op::Read));
    }

    #[test]
    fn flash_crowd_spikes_the_rate() {
        let sc = Scenario::by_name("flash_crowd").unwrap();
        assert_eq!(sc.schedule().rate_at(199), 40);
        assert_eq!(sc.schedule().rate_at(200), 2000);
        assert_eq!(sc.schedule().rate_at(219), 2000);
        assert_eq!(sc.schedule().rate_at(220), 40);
    }
}
