//! Query-trace capture and replay.
//!
//! Figure runs are reproducible from seeds, but debugging a divergence (or
//! comparing cache policies on byte-identical inputs across machines and
//! versions) wants the actual query sequence on disk. A trace is the flat
//! `(time_step, key)` stream; the format is line-oriented
//! (`step,key`, `#`-comments allowed) so it can be inspected, diffed and
//! edited by hand.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// An in-memory query trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<(u64, u64)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture a trace from any `(step, key)` iterator (e.g.
    /// [`crate::driver::QueryStream::take_steps`]).
    ///
    /// # Panics
    ///
    /// Panics if steps are not non-decreasing — a trace must replay in the
    /// order the workload produced it.
    pub fn capture(events: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let events: Vec<(u64, u64)> = events.into_iter().collect();
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace steps must be non-decreasing"
        );
        Self { events }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no queries.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last time step (0 if empty).
    pub fn steps(&self) -> u64 {
        self.events.last().map(|&(s, _)| s + 1).unwrap_or(0)
    }

    /// Iterate over `(step, key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.events.iter().copied()
    }

    /// Serialize as `step,key` lines.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "# elastic-cloud-cache query trace v1")?;
        writeln!(
            w,
            "# {} queries over {} time steps",
            self.len(),
            self.steps()
        )?;
        for &(step, key) in &self.events {
            writeln!(w, "{step},{key}")?;
        }
        w.flush()
    }

    /// Parse the [`Trace::write_to`] format. Blank lines and `#` comments
    /// are skipped; malformed lines and step regressions are errors.
    pub fn read_from<R: Read>(r: R) -> io::Result<Trace> {
        let mut events = Vec::new();
        let mut last_step = 0u64;
        for (no, line) in BufReader::new(r).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |msg: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {msg}: {line:?}", no + 1),
                )
            };
            let (s, k) = line
                .split_once(',')
                .ok_or_else(|| bad("expected step,key"))?;
            let step: u64 = s.trim().parse().map_err(|_| bad("bad step"))?;
            let key: u64 = k.trim().parse().map_err(|_| bad("bad key"))?;
            if step < last_step {
                return Err(bad("steps went backwards"));
            }
            last_step = step;
            events.push((step, key));
        }
        Ok(Trace { events })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> io::Result<Trace> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::QueryStream;
    use crate::keys::KeyDist;
    use crate::schedule::RateSchedule;

    #[test]
    fn capture_and_iterate() {
        let stream = QueryStream::new(RateSchedule::constant(3), KeyDist::uniform(100), 5);
        let t = Trace::capture(stream.take_steps(4));
        assert_eq!(t.len(), 12);
        assert_eq!(t.steps(), 4);
        let replayed: Vec<(u64, u64)> = t.iter().collect();
        let original: Vec<(u64, u64)> = stream.take_steps(4).collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn roundtrips_through_the_text_format() {
        let stream = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(1 << 15),
            9,
        );
        let t = Trace::capture(stream.take_steps(20));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn parser_skips_comments_and_rejects_garbage() {
        let good = "# header\n\n0,5\n0,7\n2,9\n";
        let t = Trace::read_from(good.as_bytes()).unwrap();
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 5), (0, 7), (2, 9)]);

        for bad in ["0;5\n", "x,1\n", "1,y\n", "5,1\n2,2\n"] {
            assert!(
                Trace::read_from(bad.as_bytes()).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ecc-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let t = Trace::capture(vec![(0, 1), (0, 2), (1, 3)]);
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn capture_rejects_unordered_steps() {
        Trace::capture(vec![(3, 1), (1, 2)]);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.steps(), 0);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(Trace::read_from(&buf[..]).unwrap(), t);
    }
}
